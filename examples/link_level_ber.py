#!/usr/bin/env python3
"""Link-level BER study of the PHY substrate (standalone usage).

Sweeps SNR for each modulation over the full TX → MIMO channel → RX chain
(channel estimation, MMSE combining, SC-FDMA despreading, soft demapping)
and, as the extension of DESIGN.md §5, shows the optional real turbo codec
beating the paper's pass-through stub at low SNR.

Run:  python examples/link_level_ber.py
"""

import numpy as np

from repro.phy import (
    ChannelModel,
    Modulation,
    TurboCodec,
    UserAllocation,
    process_user,
    random_payload,
    transmit_subframe,
)


def measure_ber(modulation, snr_db, codec=None, trials=3, seed=0, num_prb=16):
    """Average BER over a few fading realizations."""
    rng = np.random.default_rng(seed)
    errors = 0
    bits = 0
    for _ in range(trials):
        alloc = UserAllocation(num_prb=num_prb, layers=2, modulation=modulation)
        payload = random_payload(alloc, rng, codec)
        tx = transmit_subframe(alloc, payload, rng, codec=codec)
        channel = ChannelModel(num_rx_antennas=4, num_taps=3, snr_db=snr_db)
        realization = channel.realize(alloc.layers, alloc.num_subcarriers, rng)
        received = realization.apply(tx.grid, rng)
        result = process_user(alloc, received, codec=codec)
        errors += int(np.count_nonzero(result.payload != payload))
        bits += payload.size
    return errors / bits


def main() -> None:
    print("BER vs SNR, 2 layers, 16 PRBs, 4 RX antennas, pass-through turbo")
    print(f"{'SNR (dB)':>9} {'QPSK':>10} {'16QAM':>10} {'64QAM':>10}")
    for snr in (5, 10, 15, 20, 25, 30, 35):
        row = [measure_ber(mod, snr) for mod in
               (Modulation.QPSK, Modulation.QAM16, Modulation.QAM64)]
        print(f"{snr:>9} " + " ".join(f"{ber:>10.2e}" for ber in row))

    print()
    print("extension: real rate-1/3 turbo codec vs pass-through (16QAM)")
    print(f"{'SNR (dB)':>9} {'pass-through':>13} {'turbo':>10}")
    # Small allocation: the pure-Python BCJR decoder is the bottleneck.
    for snr in (8, 10, 12, 14):
        passthrough = measure_ber(Modulation.QAM16, snr, trials=1, num_prb=4)
        turbo = measure_ber(
            Modulation.QAM16, snr, codec=TurboCodec(iterations=4), trials=1, num_prb=4
        )
        print(f"{snr:>9} {passthrough:>13.2e} {turbo:>10.2e}")


if __name__ == "__main__":
    main()
