#!/usr/bin/env python3
"""Subframe workload estimation (Section VI-A, Figs. 11-12).

Calibrates the per-(layers, modulation) slopes ``k_LM`` the paper fits
from steady-state runs, then compares estimated against measured activity
over the randomized workload and reports the error statistics.

Run:  python examples/workload_estimation.py
"""

from repro.experiments import format_calibration, format_estimation, run_estimation_experiment
from repro.power import calibrate_from_simulation
from repro.sim import CostModel


def main() -> None:
    cost = CostModel()

    print("calibrating k_LM from steady-state simulator sweeps (Fig. 11)...")
    estimator, sweeps = calibrate_from_simulation(
        cost,
        prb_values=[2, 50, 100, 150, 200],
        settle_subframes=20,
        measure_subframes=60,
    )
    print(format_calibration(sweeps, estimator.slopes))

    print()
    print("running the randomized workload under NONAP to measure activity...")
    result = run_estimation_experiment(
        num_subframes=2_000, cost=cost, estimator=estimator
    )
    print(format_estimation(result))

    print()
    print(
        "The estimator feeds Eq. 5 (active cores = activity x 62 + 2), the"
        " basis of the NAP and NAP+IDLE policies and of power gating."
    )


if __name__ == "__main__":
    main()
