#!/usr/bin/env python3
"""A base station's day: diurnal load and what power management saves.

The paper motivates the whole study with the diurnal cycle (Section I:
rush hours vs late nights) and argues its 50 %-average evaluation is
pessimistic (Section VIII: typical load is ~25 % with long low-load
nights). This example runs a compressed 24-hour cell under NONAP, IDLE
and NAP+IDLE (+ power gating), renders the day's power curves, and
projects the daily energy bill for each policy.

Run:  python examples/base_station_day.py
"""

import numpy as np

from repro.experiments.asciiplot import render_series
from repro.power import (
    PowerGatingModel,
    PowerModel,
    calibrate_from_cost_model,
    make_policy,
)
from repro.power.energy import energy_report
from repro.sim import CostModel, MachineSimulator, SimConfig
from repro.uplink.scenarios import DiurnalParameterModel

SUBFRAMES = 4_800  # 200 per "hour" at the 5 ms dispatch period


def main() -> None:
    cost = CostModel()
    estimator = calibrate_from_cost_model(cost)
    model = DiurnalParameterModel(total_subframes=SUBFRAMES, seed=0)

    traces = {}
    reports = {}
    gated = None
    for name in ("NONAP", "IDLE", "NAP+IDLE"):
        policy = make_policy(name, cost.machine.num_workers, estimator)
        sim = MachineSimulator(
            cost, policy=policy, config=SimConfig(drain_margin_s=0.0)
        ).run(model, num_subframes=SUBFRAMES)
        power = PowerModel().evaluate(sim.trace, cost.machine.clock_hz)
        traces[name] = power
        reports[name] = energy_report(power)
        if name == "NAP+IDLE":
            history = np.array(policy.active_cores_history)
            gated = PowerGatingModel().apply_to_power(
                power.total_w, power.window_s, history, cost.machine.subframe_period_s
            )
    reports["PowerGating"] = energy_report(gated, window_s=traces["NAP+IDLE"].window_s)

    hours = traces["NONAP"].times_s / traces["NONAP"].times_s.max() * 24.0
    print(
        render_series(
            {
                "NONAP": (hours, traces["NONAP"].total_w),
                "IDLE": (hours, traces["IDLE"].total_w),
                "NAP+IDLE": (hours, traces["NAP+IDLE"].total_w),
                "gated": (hours, gated),
            },
            title="Power over a compressed 24 h day (x = hour, y = W)",
        )
    )

    print()
    print(f"{'policy':<12} {'mean W':>8} {'daily kWh':>10} {'saved vs NONAP':>15}")
    baseline = reports["NONAP"]
    for name, report in reports.items():
        saved = report.savings_vs(baseline)
        print(
            f"{name:<12} {report.mean_power_w:>8.2f} {report.daily_kwh:>10.2f} "
            f"{saved * 100:>14.1f}%"
        )
    print()
    print(
        "Night hours run near the base power under gating — exactly the"
        " regime (Section VIII) where estimation-guided management wins most."
    )


if __name__ == "__main__":
    main()
