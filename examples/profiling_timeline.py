#!/usr/bin/env python3
"""Profiling walkthrough: where do the cycles go, and what does a
subframe look like on a timeline?

Runs the simulated TILEPro64-like machine under the NAP+IDLE policy with
the profiler and event recorder attached, prints the per-kernel cycle
breakdown (the Fig. 5 stages), per-core utilization, and deadline slack,
then exports the run as a Chrome ``trace_event`` timeline — open
``profiling_timeline.json`` in https://ui.perfetto.dev or
``chrome://tracing`` to see per-core task spans, nap/wake state rows,
and the analytic power-gating trace. Finally profiles the same workload
shape on the threaded runtime, where spans carry wall-clock time.

Run:  python examples/profiling_timeline.py
"""

from repro.obs import (
    EventRecorder,
    Profiler,
    gating_events_from_active_workers,
    write_chrome_trace,
)
from repro.phy import Modulation
from repro.power import calibrate_from_cost_model
from repro.power.governor import make_policy
from repro.sched import ThreadedRuntime
from repro.sim import CostModel, MachineSpec
from repro.sim.machine import MachineSimulator, SimConfig
from repro.uplink import RandomizedParameterModel, SubframeFactory, UserParameters

SUBFRAMES = 50
WORKERS = 8


def simulator_profile() -> None:
    print(f"=== simulator, NAP+IDLE, {SUBFRAMES} subframes ===")
    cost = CostModel(
        machine=MachineSpec(num_cores=WORKERS + 2, num_workers=WORKERS)
    )
    estimator = calibrate_from_cost_model(cost)
    profiler = Profiler()
    recorder = EventRecorder()
    sim = MachineSimulator(
        cost,
        policy=make_policy("NAP+IDLE", WORKERS, estimator),
        config=SimConfig(drain_margin_s=0.2),
        observers=[profiler, recorder],
    )
    model = RandomizedParameterModel(total_subframes=SUBFRAMES, seed=0)
    result = sim.run(model, num_subframes=SUBFRAMES)

    print("per-kernel breakdown (simulated cycles):")
    for name, entry in profiler.kernel_breakdown("tasks").items():
        print(
            f"  {name:>9}: {entry['count']:5d} tasks, "
            f"{entry['total'] / 1e6:8.2f} Mcycles, "
            f"{entry['share'] * 100:5.1f}% "
            f"({entry['stolen']} stolen)"
        )
    utilization = ", ".join(f"{u:.2f}" for u in profiler.per_core_utilization)
    print(f"per-core utilization: [{utilization}]")
    slack = profiler.registry.histogram("deadline_slack")
    print(
        f"deadline slack (cycles): p50 {slack.percentile(50):,.0f}, "
        f"min {slack.percentile(0):,.0f}; "
        f"miss rate {profiler.deadline_miss_rate() * 100:.1f}%"
    )

    # Timeline: the recorded events plus gating rows synthesized from the
    # run's active-core trace (Eqs. 6-7).
    gating = gating_events_from_active_workers(
        result.active_workers, result.machine.subframe_period_cycles
    )
    count = write_chrome_trace(
        "profiling_timeline.json",
        recorder.events,
        clock="cycles",
        clock_hz=result.machine.clock_hz,
        extra=gating,
        metadata={"policy": "NAP+IDLE", "subframes": SUBFRAMES},
    )
    print(
        f"wrote {count} trace events to profiling_timeline.json "
        "(open in Perfetto or chrome://tracing)\n"
    )


def threaded_profile() -> None:
    print("=== threaded runtime, 4 workers, wall-clock spans ===")
    users = [
        UserParameters(0, num_prb=8, layers=1, modulation=Modulation.QPSK),
        UserParameters(1, num_prb=16, layers=2, modulation=Modulation.QAM16),
        UserParameters(2, num_prb=24, layers=2, modulation=Modulation.QAM64),
    ]
    factory = SubframeFactory(seed=0)
    subframes = [factory.synthesize(users, index) for index in range(4)]
    profiler = Profiler(keep_spans=False, deadline=5e-3 * 1e9)  # DELTA in ns
    runtime = ThreadedRuntime(num_workers=4, observers=[profiler])
    runtime.run(subframes)
    print("join-level stage breakdown (wall time):")
    for name, entry in profiler.kernel_breakdown("spans").items():
        print(
            f"  {name:>9}: {entry['count']:3d} spans, "
            f"{entry['total'] / 1e6:8.2f} ms, {entry['share'] * 100:5.1f}%"
        )
    print(f"deadline miss rate: {profiler.deadline_miss_rate() * 100:.1f}%")


def main() -> None:
    simulator_profile()
    threaded_profile()


if __name__ == "__main__":
    main()
