#!/usr/bin/env python3
"""Quickstart: process one LTE uplink subframe end to end.

Synthesizes the signal three users transmit (SC-FDMA, MIMO fading
channel), runs the benchmark's receiver chain on it — serially and on the
work-stealing thread runtime — and verifies both the decoded CRCs and the
serial-vs-parallel equivalence the paper uses for validation (Section IV-D).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.phy import Modulation
from repro.sched import ThreadedRuntime
from repro.uplink import (
    SubframeFactory,
    UserParameters,
    process_subframe_serial,
    verify_against_serial,
)


def main() -> None:
    # Three users with different allocations — a VoIP-like user, a medium
    # user, and a heavy 4-layer 64-QAM uploader (Section III's motivation).
    users = [
        UserParameters(user_id=0, num_prb=4, layers=1, modulation=Modulation.QPSK),
        UserParameters(user_id=1, num_prb=24, layers=2, modulation=Modulation.QAM16),
        UserParameters(user_id=2, num_prb=40, layers=4, modulation=Modulation.QPSK),
    ]
    factory = SubframeFactory(seed=42)
    subframe = factory.synthesize(users, subframe_index=0)

    print("=== serial reference ===")
    serial_result = process_subframe_serial(subframe)
    for result in serial_result.user_results:
        expected = subframe.expected_payloads[result.user_id]
        ber = float(np.mean(result.payload != expected))
        print(
            f"user {result.user_id}: {expected.size} payload bits, "
            f"CRC {'OK' if result.crc_ok else 'FAIL'}, BER {ber:.2e}"
        )

    print("\n=== work-stealing runtime (4 workers) ===")
    runtime = ThreadedRuntime(num_workers=4)
    parallel_results = runtime.run([subframe])
    stats = runtime.stats
    print(
        f"tasks executed: {stats.total_tasks}, steals: {stats.total_steals}, "
        f"users: {sum(stats.users_processed)}"
    )

    report = verify_against_serial([serial_result], parallel_results)
    print(f"\nserial-vs-parallel verification: {report}")
    if not report.passed:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
