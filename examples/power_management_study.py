#!/usr/bin/env python3
"""Subframe-based power management on the simulated TILEPro64 (Section VI).

Runs the paper's full evaluation workload (scaled down 20x by default)
under all four policies — NONAP, IDLE, NAP, NAP+IDLE — plus the analytical
power-gating model, then prints the reproduced Tables I and II next to the
paper's numbers.

Run:  python examples/power_management_study.py [num_subframes]
      (pass 68000 for paper scale — takes several minutes)
"""

import sys

from repro.experiments import (
    format_table1,
    format_table2,
    run_power_study,
)


def main() -> None:
    num_subframes = int(sys.argv[1]) if len(sys.argv) > 1 else 3_400
    print(
        f"running the power study over {num_subframes} subframes "
        f"({num_subframes * 5 / 1000:.0f} s of simulated time per policy)..."
    )
    study = run_power_study(num_subframes=num_subframes)

    print()
    print(format_table1(study))
    print()
    print(format_table2(study))

    print()
    nonap = study.runs["NONAP"].power
    nap = study.runs["NAP"].power
    gap = nonap.total_w - nap.total_w
    n = gap.size
    print("Fig. 14 characteristics:")
    print(f"  low-load NONAP-NAP gap: {gap[: n // 6].mean():.1f} W (paper: 6-7 W)")
    print(f"  peak NONAP-NAP gap:     {gap[2 * n // 5 : 3 * n // 5].mean():.1f} W (paper: ~1 W)")
    print(
        f"  NONAP mean die temp {nonap.temperature_c.mean():.1f} C vs "
        f"NAP {nap.temperature_c.mean():.1f} C (thermal feedback)"
    )

    history = study.runs["NAP"].estimated_active_cores
    print(
        f"Fig. 13: estimated active cores range {history.min()}..{history.max()}, "
        f"{(history[1:] != history[:-1]).mean() * 100:.0f}% of subframes change the target"
    )


if __name__ == "__main__":
    main()
