"""Legacy setup shim.

Kept so ``pip install -e . --no-use-pep517`` works on environments whose
setuptools/pip lack the ``wheel`` package needed for PEP 517 editable
installs (all metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
