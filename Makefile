# Local entry points that mirror the CI jobs exactly
# (.github/workflows/ci.yml). `make test` is the tier-1 gate; `make lint`
# is the static-analysis gate. ruff/mypy are optional-dependency extras
# (`pip install -e .[lint]`) and are skipped with a hint when absent so
# `make lint` works in the minimal environment too.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-slow test-invariants bench bench-smoke chaos-smoke multiprocess-smoke serve-smoke supervision-smoke lint lint-strict repro-lint ruff mypy all

all: test lint

test:
	$(PYTHON) -m pytest -x -q

test-slow:
	$(PYTHON) -m pytest -m slow -q tests/differential tests/properties

test-invariants:
	REPRO_INVARIANTS=1 $(PYTHON) -m pytest -x -q tests/sim tests/obs tests/power tests/experiments

bench:
	$(PYTHON) -m repro bench --scale default

bench-smoke:
	$(PYTHON) -m repro bench --scale smoke --out BENCH_smoke.json \
		--compare benchmarks/baseline_smoke.json --deterministic-only

chaos-smoke:
	$(PYTHON) -m repro chaos --scale smoke --seeds 5 --timeout 480

multiprocess-smoke:
	$(PYTHON) -m pytest -x -q tests/sched/test_multiprocess.py tests/test_spawn_safety.py
	$(PYTHON) -m pytest -m slow -q tests/differential/test_backends.py -k multiprocess
	$(PYTHON) -m repro chaos --backend multiprocess --scale smoke --seeds 2 --timeout 600

serve-smoke:
	$(PYTHON) -m pytest -x -q tests/serve
	$(PYTHON) -m repro serve --cells 4 --subframes 40 --no-pace \
		--arrival poisson --rate 2.0 --seed 0 --timeout 300 --json > SERVE_smoke.json
	$(PYTHON) -c "import json; from repro.serve import validate_serve_report; \
		problems = validate_serve_report(json.load(open('SERVE_smoke.json'))); \
		assert not problems, problems; print('serve report: schema OK')"
	$(PYTHON) -m repro serve --cells 2 --subframes 40 --no-pace \
		--backend threaded --workers 2 --faults --seed 1 --timeout 300
	$(PYTHON) -m pytest -m slow -q tests/serve/test_soak.py

supervision-smoke:
	$(PYTHON) -m pytest -x -q tests/serve/test_supervision.py \
		tests/serve/test_checkpoint.py tests/serve/test_overload_properties.py \
		benchmarks/test_supervision_overhead.py
	$(PYTHON) -m repro serve --cells 2 --subframes 100 --no-pace \
		--backend multiprocess --workers 2 --faults --respawn \
		--backpressure block --seed 5 --timeout 600 \
		--json-out SUPERVISION_smoke.json
	$(PYTHON) -c "import json; from repro.serve import validate_serve_report; \
		r = json.load(open('SUPERVISION_smoke.json')); \
		problems = validate_serve_report(r); assert not problems, problems; \
		sup = r['supervisor']; \
		assert r['ledger_ok'] and sup['respawns'] >= 1 and not sup['fail_stop'], sup; \
		print('supervision: %d deaths healed by %d respawns, ledger OK' \
		% (sup['deaths'], sup['respawns']))"
	$(PYTHON) scripts/supervision_smoke.py

lint: repro-lint lint-strict ruff mypy

repro-lint:
	$(PYTHON) -m repro lint src

lint-strict:
	$(PYTHON) -m repro lint src/repro \
		--select REP501,REP502,REP511,REP512,REP521,REP522 \
		--baseline lint-strict-baseline.json

ruff:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro/analysis src/repro/obs; \
	else \
		echo "ruff not installed; skipping (pip install -e .[lint])"; \
	fi

mypy:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro/analysis src/repro/obs src/repro/sched; \
	else \
		echo "mypy not installed; skipping (pip install -e .[lint])"; \
	fi
