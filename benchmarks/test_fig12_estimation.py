"""Fig. 12: measured and estimated workload averaged over one second.

Paper: "The maximum error is an underestimation of 5.4 %, and the average
error is only 1.2 %" over a run whose average workload is ~50 %.
"""

from repro.experiments.report import format_estimation


def test_fig12_estimation(benchmark, estimation_result):
    result = benchmark.pedantic(lambda: estimation_result, rounds=1, iterations=1)
    print()
    print(format_estimation(result))

    # Shape: triangle with a ~50 % mean and >10 % minimum (Section VIII).
    assert result.measured.max() > 0.9
    assert 0.35 < result.mean_measured() < 0.65
    assert result.measured.min() > 0.08

    # Errors in the paper's band: small, dominated by underestimation.
    assert result.mean_absolute_error() < 0.02
    assert result.max_underestimation() < 0.06
    assert result.max_underestimation() >= result.max_overestimation()
