"""Fig. 9: maximum and minimum user layer counts per subframe.

The probability ramp makes layers climb from all-1 at the edges of the run
to all-4 at the peak.
"""

from repro.experiments.report import format_series
from repro.experiments.workload import collect_workload_trace


def test_fig09_layers(benchmark, workload_model):
    trace = benchmark.pedantic(
        lambda: collect_workload_trace(workload_model, stride=25),
        rounds=1,
        iterations=1,
    )
    print()
    print("Fig. 9 — layers per subframe (every 25th subframe)")
    print(format_series("max", trace.subframe_indices, trace.max_layers, 16))
    print(format_series("min", trace.subframe_indices, trace.min_layers, 16))
    mid = trace.subframe_indices.size // 2
    assert trace.max_layers.max() == 4
    assert trace.min_layers.min() == 1
    assert trace.min_layers[mid] == 4  # peak workload: every user at 4 layers
    # Low probability at the start: layers are almost always 1 (an
    # occasional 2-3 is possible — each user makes three p=0.006 draws).
    assert trace.max_layers[:10].mean() < 2.0
