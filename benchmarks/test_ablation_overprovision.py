"""Ablation: Eq. 5's "+2" over-provisioning margin.

The paper over-provisions by two cores "to provide some margin of error in
the estimation". This ablation sweeps the margin and shows the trade-off:
no margin saves a little power but inflates subframe latency when the
estimate runs short; larger margins buy nothing but watts.
"""

import numpy as np

from repro.power.estimator import calibrate_from_cost_model
from repro.power.governor import NapIdlePolicy
from repro.power.model import PowerModel
from repro.sim.cost import CostModel
from repro.sim.machine import MachineSimulator, SimConfig
from repro.uplink.parameter_model import RandomizedParameterModel

SUBFRAMES = 1_200


def run_margin(margin: int, cost, estimator):
    # Moderate load (half the PRB budget) so the margin's effect is not
    # swamped by peak-saturation queueing.
    model = RandomizedParameterModel(
        total_subframes=SUBFRAMES, seed=0, max_prb=100
    )
    policy = NapIdlePolicy(cost.machine.num_workers, estimator, over_provision=margin)
    simulator = MachineSimulator(cost, policy=policy, config=SimConfig(drain_margin_s=0.2))
    sim = simulator.run(model, num_subframes=SUBFRAMES)
    power = PowerModel().evaluate(sim.trace, cost.machine.clock_hz)
    return power.mean_total(), float(np.percentile(sim.subframe_latency_s, 99))


def test_ablation_overprovision(benchmark):
    cost = CostModel()
    estimator = calibrate_from_cost_model(cost)
    results = benchmark.pedantic(
        lambda: {m: run_margin(m, cost, estimator) for m in (0, 2, 6)},
        rounds=1,
        iterations=1,
    )
    print()
    print("Ablation — Eq. 5 over-provisioning margin (NAP+IDLE)")
    print(f"  {'margin':>6} {'power (W)':>10} {'p99 latency (ms)':>17}")
    for margin, (power, p99) in results.items():
        print(f"  {margin:>6} {power:>10.2f} {p99 * 1000:>17.1f}")

    p0, l0 = results[0]
    p2, l2 = results[2]
    p6, l6 = results[6]
    # More margin → more power (the cost side of Eq. 5's "+2").
    assert p0 <= p2 <= p6
    assert p6 - p2 > 0.01
    # The paper's +2 never worsens latency vs no margin...
    assert l2 <= l0 * 1.2
    # ...and going beyond +2 shows diminishing latency returns.
    assert l6 >= l2 * 0.5
