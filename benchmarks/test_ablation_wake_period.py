"""Ablation: the reactive nap wake-check period.

Section V-B: "There is no easy way to reactivate a 'napping' core; a core
therefore periodically wakes up to see if its status has changed." The
period trades pick-up latency against how often the IDLE policy's napping
cores burn wake-check cycles. (The energy cost of checking is charged
analytically per NAP-state occupancy by the power model, so what this
ablation exposes is the latency side of the trade-off.)
"""

import numpy as np

from repro.power.governor import IdlePolicy
from repro.sim.cost import CostModel
from repro.sim.machine import MachineSimulator, SimConfig
from repro.uplink.parameter_model import RandomizedParameterModel

SUBFRAMES = 800


def run_period(period_s: float, cost):
    # Moderate load: wake-up latency, not peak-saturation queueing, should
    # dominate the measured tail.
    model = RandomizedParameterModel(
        total_subframes=SUBFRAMES, seed=0, max_prb=100
    )
    simulator = MachineSimulator(
        cost,
        policy=IdlePolicy(cost.machine.num_workers),
        config=SimConfig(wake_period_s=period_s, drain_margin_s=0.2),
    )
    sim = simulator.run(model, num_subframes=SUBFRAMES)
    return float(np.percentile(sim.subframe_latency_s, 95))


def test_ablation_wake_period(benchmark):
    cost = CostModel()
    periods = (0.25e-3, 1e-3, 4e-3)
    latencies = benchmark.pedantic(
        lambda: {p: run_period(p, cost) for p in periods},
        rounds=1,
        iterations=1,
    )
    print()
    print("Ablation — IDLE wake-check period vs p95 subframe latency")
    for period, p95 in latencies.items():
        print(f"  wake every {period * 1000:.2f} ms: p95 latency {p95 * 1000:.1f} ms")

    # Longer wake periods can only delay work pick-up (allowing a little
    # scheduling noise between the two short periods).
    assert latencies[0.25e-3] <= latencies[1e-3] * 1.05 + 1e-4
    assert latencies[1e-3] <= latencies[4e-3] * 1.05 + 1e-4
    # A 4 ms period visibly stretches latency relative to 0.25 ms.
    assert latencies[4e-3] > latencies[0.25e-3]
