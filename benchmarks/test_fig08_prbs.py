"""Fig. 8: total / max / min physical resource blocks per subframe.

Paper: "The maximum number of PRBs allocated to a user varies between 20
and 190, while the minimum number of PRBs varies between two ... and 100."
"""

from repro.experiments.report import format_series
from repro.experiments.workload import collect_workload_trace


def test_fig08_prbs(benchmark, workload_model):
    trace = benchmark.pedantic(
        lambda: collect_workload_trace(workload_model, stride=25),
        rounds=1,
        iterations=1,
    )
    print()
    print("Fig. 8 — PRBs per subframe (every 25th subframe)")
    print(format_series("total", trace.subframe_indices, trace.total_prb, 12))
    print(format_series("max  ", trace.subframe_indices, trace.max_prb, 12))
    print(format_series("min  ", trace.subframe_indices, trace.min_prb, 12))
    print(
        f"per-user max range {trace.max_prb.min()}..{trace.max_prb.max()} "
        "(paper: ~20..190); "
        f"per-user min range {trace.min_prb.min()}..{trace.min_prb.max()} "
        "(paper: 2..~100)"
    )
    assert trace.total_prb.max() <= 200
    assert trace.max_prb.max() >= 150
    assert trace.min_prb.min() == 2
