"""Zero-fault cost of the resilience layer (must stay under 3%).

With the full fault machinery armed — empty fault plan, watchdog thread,
per-subframe deadlines, retry budget, terminal-state ledger — but no
fault firing, the threaded runtime must stay within 3% of the default
configuration, and its results must stay bit-exact with the serial
reference. Direct wall-clock deltas on shared runners are noisier than
3%, so as with the span-overhead bound the asserted number is built from
measured unit costs (injector checks per user, ledger transitions per
subframe) times the counts the scenario actually performs; the
end-to-end delta is printed and loosely guarded.
"""

import time

from repro.faults.accounting import SubframeLedger, TerminalState
from repro.faults.injector import ThreadFaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import ResilienceConfig
from repro.phy import Modulation
from repro.sched.threaded import ThreadedRuntime
from repro.uplink import SubframeFactory, UserParameters
from repro.uplink.serial import SerialBenchmark
from repro.uplink.parameter_model import TraceParameterModel
from repro.uplink.verification import verify_against_serial

WORKERS = 2


def _subframes(count: int = 4):
    factory = SubframeFactory(seed=0)
    users = [
        UserParameters(0, 24, 2, Modulation.QAM64),
        UserParameters(1, 16, 2, Modulation.QAM16),
        UserParameters(2, 8, 1, Modulation.QPSK),
    ]
    return [factory.synthesize(users, index) for index in range(count)], users


def _run(subframes, armed):
    kwargs = {}
    if armed:
        kwargs = {
            "faults": ThreadFaultInjector(FaultPlan(seed=0)),
            "resilience": ResilienceConfig(max_retries=2, deadline_s=300.0),
        }
    runtime = ThreadedRuntime(num_workers=WORKERS, steal_seed=0, **kwargs)
    start = time.perf_counter()
    results = runtime.run(subframes)
    return results, time.perf_counter() - start


def test_zero_fault_runs_stay_bit_exact():
    """Armed-but-silent fault machinery must not perturb any payload."""
    subframes, users = _subframes()
    model = TraceParameterModel([users])
    serial = SerialBenchmark(model, SubframeFactory(seed=0),
                             synthesize=True).run(len(subframes))
    results, _ = _run(subframes, armed=True)
    assert verify_against_serial(serial, results).passed


def test_zero_fault_overhead_under_three_percent():
    subframes, _ = _subframes()
    off_times, on_times = [], []
    results_off = results_on = None
    for _ in range(3):
        results_off, off_s = _run(subframes, armed=False)
        results_on, on_s = _run(subframes, armed=True)
        off_times.append(off_s)
        on_times.append(on_s)
    off_best, on_best = min(off_times), min(on_times)
    assert len(results_off) == len(results_on) == len(subframes)

    # Unit cost of the armed-path additions, measured directly:
    # per user, three injector checks; per subframe, one ledger
    # dispatch/resolve round trip (the watchdog thread sleeps between
    # 20ms polls and never touches the hot path).
    injector = ThreadFaultInjector(FaultPlan(seed=0))
    reps = 20_000
    begin = time.perf_counter()
    for _ in range(reps):
        injector.check_worker_death(0, 0)
        injector.check_worker_hang(0, 0)
        injector.check_task_exception(0, 0)
    per_user_s = (time.perf_counter() - begin) / reps

    ledger = SubframeLedger()
    begin = time.perf_counter()
    for index in range(reps):
        ledger.dispatch(index, 3)
        ledger.resolve(index, TerminalState.OK)
    per_subframe_s = (time.perf_counter() - begin) / reps

    users = sum(len(s.slices) for s in subframes)
    armed_cost_s = users * per_user_s + len(subframes) * per_subframe_s
    print(
        f"\nfaults off: {off_best:.3f}s  armed: {on_best:.3f}s "
        f"(end-to-end ratio {on_best / off_best:.3f}); "
        f"{users} users x {per_user_s * 1e6:.2f}us + "
        f"{len(subframes)} sf x {per_subframe_s * 1e6:.2f}us = "
        f"{armed_cost_s * 1e3:.3f}ms ({armed_cost_s / off_best * 100:.2f}%)"
    )
    assert armed_cost_s < off_best * 0.03
    # Gross-regression guard on the measured delta (loose: shared-runner
    # noise between identical configurations exceeds the 3% budget).
    assert on_best <= off_best * 1.5
