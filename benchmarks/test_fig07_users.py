"""Fig. 7: number of users for every 25th subframe.

Regenerates the user-count series of the randomized input parameter model
and checks the paper's qualitative claims: the count "varies constantly
and rapidly" across the full 1..10 range.
"""

from repro.experiments.report import format_series
from repro.experiments.workload import collect_workload_trace


def test_fig07_users(benchmark, workload_model):
    trace = benchmark.pedantic(
        lambda: collect_workload_trace(workload_model, stride=25),
        rounds=1,
        iterations=1,
    )
    print()
    print("Fig. 7 — users per subframe (every 25th subframe)")
    print(format_series("users", trace.subframe_indices, trace.num_users, 16))
    print(
        f"range: {trace.num_users.min()}..{trace.num_users.max()} "
        "(paper: varies rapidly across 1..10)"
    )
    assert trace.num_users.max() == 10
    assert trace.num_users.min() <= 3
