"""Scenario bench: the diurnal cell of Section I / Section VIII.

A compressed 24-hour load profile (night trough, evening rush hour) run
under NONAP / IDLE / NAP+IDLE / PowerGating; the savings ranking must hold
and the relative wins must exceed the 50 %-average evaluation's, because
low-load hours dominate the day.
"""

import numpy as np

from repro.power import PowerGatingModel, PowerModel, calibrate_from_cost_model, make_policy
from repro.power.energy import energy_report
from repro.sim import CostModel, MachineSimulator, SimConfig
from repro.uplink.scenarios import DiurnalParameterModel

SUBFRAMES = 2_400


def test_scenario_diurnal(benchmark, power_study):
    cost = CostModel()
    estimator = calibrate_from_cost_model(cost)
    model = DiurnalParameterModel(total_subframes=SUBFRAMES, seed=0)

    def run_day():
        reports = {}
        gated = None
        for name in ("NONAP", "IDLE", "NAP+IDLE"):
            policy = make_policy(name, cost.machine.num_workers, estimator)
            sim = MachineSimulator(
                cost, policy=policy, config=SimConfig(drain_margin_s=0.0)
            ).run(model, num_subframes=SUBFRAMES)
            power = PowerModel().evaluate(sim.trace, cost.machine.clock_hz)
            reports[name] = energy_report(power)
            if name == "NAP+IDLE":
                history = np.array(policy.active_cores_history)
                gated = PowerGatingModel().apply_to_power(
                    power.total_w, power.window_s, history,
                    cost.machine.subframe_period_s,
                )
                reports["PowerGating"] = energy_report(gated, window_s=power.window_s)
        return reports

    reports = benchmark.pedantic(run_day, rounds=1, iterations=1)
    print()
    print("Diurnal day — daily energy per policy")
    baseline = reports["NONAP"]
    for name, report in reports.items():
        print(
            f"  {name:<12} {report.mean_power_w:6.2f} W  "
            f"{report.daily_kwh:5.2f} kWh/day  "
            f"saved {report.savings_vs(baseline) * 100:5.1f}%"
        )

    # Ranking holds over the day.
    assert (
        reports["NONAP"].energy_j
        > reports["IDLE"].energy_j
        > reports["NAP+IDLE"].energy_j
        > reports["PowerGating"].energy_j
    )
    # Section VIII: relative wins exceed the 50 %-average evaluation's.
    day_saving = reports["PowerGating"].savings_vs(baseline)
    eval_saving = 1.0 - power_study.mean_power("PowerGating") / power_study.mean_power("NONAP")
    assert day_saving > eval_saving
    assert day_saving > 0.30  # >30 % of the day's energy bill
