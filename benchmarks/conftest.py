"""Shared fixtures for the reproduction benchmarks.

Scale control
-------------
``REPRO_BENCH_SUBFRAMES`` sets the evaluation-run length (default 3 400;
the paper uses 68 000 — pass that for paper scale). The triangle workload
shape is identical at any scale; only the time axis shrinks.

The heavyweight simulations (the four-policy power study and the
estimation run) execute once per session and are shared by every
figure/table bench that reads from them; each bench still prints the
series/rows it reproduces.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.estimation import run_estimation_experiment
from repro.experiments.power_study import run_power_study
from repro.sim.cost import CostModel
from repro.uplink.parameter_model import RandomizedParameterModel

# Must be a multiple of 2x the 200-subframe probability step so the
# triangle ramp actually reaches probability 1.0 at its apex.
DEFAULT_SUBFRAMES = 4_000


def bench_subframes() -> int:
    return int(os.environ.get("REPRO_BENCH_SUBFRAMES", DEFAULT_SUBFRAMES))


@pytest.fixture(scope="session")
def num_subframes() -> int:
    return bench_subframes()


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture(scope="session")
def workload_model(num_subframes) -> RandomizedParameterModel:
    return RandomizedParameterModel(total_subframes=num_subframes, seed=0)


@pytest.fixture(scope="session")
def power_study(num_subframes, cost_model):
    """The Section VI study: all four policies + gating, run once."""
    return run_power_study(num_subframes=num_subframes, cost=cost_model, seed=0)


@pytest.fixture(scope="session")
def estimation_result(num_subframes, cost_model):
    """The Fig. 12 run (NONAP, 1 s averaging windows), run once."""
    return run_estimation_experiment(
        num_subframes=num_subframes, cost=cost_model, seed=0
    )
