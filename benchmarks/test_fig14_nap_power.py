"""Fig. 14: measured power with (NAP) and without (NONAP) deactivation.

Paper: the gap is largest at low load (6-7 W, >25 % of dynamic power); at
peak NAP still wins by ~1 W (~3 %) because NONAP's higher average power
heats the chip and leakage rises.
"""

import numpy as np

from repro.experiments.report import format_series


def test_fig14_nap_vs_nonap(benchmark, power_study):
    runs = benchmark.pedantic(lambda: power_study.runs, rounds=1, iterations=1)
    nonap = runs["NONAP"].power.total_w
    nap = runs["NAP"].power.total_w
    times = runs["NONAP"].power.times_s
    print()
    print("Fig. 14 — power over time, NONAP vs NAP")
    print(format_series("NONAP", times, nonap, 14))
    print(format_series("NAP  ", times, nap, 14))
    gap = nonap - nap
    n = gap.size
    low_gap = gap[: max(1, n // 6)].mean()
    peak_region = slice(2 * n // 5, 3 * n // 5)
    peak_gap = gap[peak_region].mean()
    print(
        f"low-load gap {low_gap:.1f} W (paper: 6-7 W); "
        f"peak gap {peak_gap:.1f} W (paper: ~1 W)"
    )

    assert low_gap > 3.5  # NAP wins big at low load
    assert low_gap > 2 * max(peak_gap, 0.1)  # ...and much less at peak
    assert np.all(nap <= nonap + 0.5)  # NAP never meaningfully worse

    # Thermal signature: NONAP runs hotter on average.
    assert (
        runs["NONAP"].power.temperature_c.mean()
        > runs["NAP"].power.temperature_c.mean()
    )
