"""Fig. 16: estimated power when power gating unneeded cores.

Paper: average 18.5 W (1.4 W / 7 % below NAP+IDLE); at low load the win
over the best dynamic management is ~3 W (19 %), and more than 4 W (>24 %)
against IDLE.
"""

from repro.experiments.report import format_series


def test_fig16_power_gating(benchmark, power_study):
    gated = benchmark.pedantic(lambda: power_study.gated_power_w, rounds=1, iterations=1)
    napidle = power_study.runs["NAP+IDLE"].power.total_w
    idle = power_study.runs["IDLE"].power.total_w
    times = power_study.runs["NAP+IDLE"].power.times_s
    print()
    print("Fig. 16 — power with analytical power gating (Eqs. 6-9)")
    print(format_series("NAP+IDLE   ", times, napidle, 12))
    print(format_series("PowerGating", times, gated, 12))
    mean_reduction = napidle.mean() - gated.mean()
    n = times.size
    low = slice(0, max(1, n // 6))
    low_vs_idle = 1.0 - gated[low].mean() / idle[low].mean()
    print(
        f"mean reduction vs NAP+IDLE: {mean_reduction:.1f} W (paper: 1.4 W); "
        f"low-load vs IDLE: {low_vs_idle * 100:.0f}% (paper: >24%)"
    )

    assert mean_reduction > 0.7  # gating always helps on average
    assert low_vs_idle > 0.15  # the big win is at low load
    # Gating rides on NAP+IDLE: never above it, and the largest absolute
    # savings appear at low load where most groups are off.
    assert (napidle - gated)[low].mean() > mean_reduction
