"""Fig. 15: power under NONAP / IDLE / NAP / NAP+IDLE.

Paper: IDLE ≈ 20.7 W, NAP ≈ 20.5 W, NAP+IDLE ≈ 19.9 W (vs NONAP 25 W).
NAP beats IDLE at low load because deeply napped cores skip the periodic
look-for-work overhead; combining both is best.
"""

from repro.experiments.report import format_series


def test_fig15_policies(benchmark, power_study):
    runs = benchmark.pedantic(lambda: power_study.runs, rounds=1, iterations=1)
    times = runs["NONAP"].power.times_s
    print()
    print("Fig. 15 — power over time, all dynamic policies")
    for name in ("NONAP", "IDLE", "NAP", "NAP+IDLE"):
        print(format_series(f"{name:8s}", times, runs[name].power.total_w, 12))
        print(f"  {name:8s} mean {runs[name].power.mean_total():.2f} W")

    nonap = runs["NONAP"].power.mean_total()
    idle = runs["IDLE"].power.mean_total()
    nap = runs["NAP"].power.mean_total()
    napidle = runs["NAP+IDLE"].power.mean_total()

    # Ordering and rough magnitudes (paper: 25 / 20.7 / 20.5 / 19.9 W).
    assert nonap > idle > napidle
    assert nonap > nap > napidle
    assert abs(nap - idle) < 1.0  # the two are close on average (paper: 0.2 W)

    # At low load NAP dips below IDLE (disabled cores skip wake checks).
    n = times.size
    low = slice(0, max(1, n // 6))
    idle_low = runs["IDLE"].power.total_w[low].mean()
    nap_low = runs["NAP"].power.total_w[low].mean()
    assert nap_low < idle_low
