"""Ablation: power-gating group size (Section VI-C assumes groups of 8).

Smaller power domains track the demand more tightly (more cores off) at
the cost of more domains on the die; larger groups quantize away most of
the savings. This reruns Eqs. 6-9 over the same NAP+IDLE run with group
sizes 4, 8 (paper), 16 and 32.
"""

from repro.power.gating import PowerGatingModel, PowerGatingParams


def test_ablation_gating_group_size(benchmark, power_study):
    active = power_study.runs["NAP+IDLE"].estimated_active_cores

    def sweep():
        savings = {}
        for group in (4, 8, 16, 32):
            model = PowerGatingModel(PowerGatingParams(group_size=group))
            savings[group] = model.evaluate(active).mean_saving()
        return savings

    savings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — power-gating group size (mean saving, W)")
    for group, saving in savings.items():
        marker = "  <- paper" if group == 8 else ""
        print(f"  groups of {group:>2}: {saving:.2f} W{marker}")

    # Finer domains always save at least as much energy.
    assert savings[4] >= savings[8] >= savings[16] >= savings[32]
    # The paper's groups-of-8 point retains most of the fine-grained win.
    assert savings[8] > 0.6 * savings[4]
    # Whole-chip-half domains throw away a large chunk.
    assert savings[32] < 0.8 * savings[8]
