"""Overhead of the observability hooks when no observer is attached.

The emission sites in :class:`repro.sim.machine.MachineSimulator` are a
single ``is not None`` check when tracing is off (``_emit is None``), so a
plain run must stay within a few percent of the pre-instrumentation cost.
The acceptance bound here is <5% slowdown hooks-off vs hooks-on serving
as the reference for what full tracing costs.

The profiling-span tests bound the cost of the hierarchical
``SPAN_BEGIN``/``SPAN_END`` edges added by the profiling subsystem: with
``ThreadedRuntime(emit_spans=False)`` as the spans-disabled baseline, the
marginal span cost must stay under 5% of the run.
"""

import time

from repro.obs import Profiler
from repro.obs.events import Event, EventKind
from repro.phy import Modulation
from repro.power.estimator import calibrate_from_cost_model
from repro.power.governor import make_policy
from repro.sched.threaded import ThreadedRuntime
from repro.sim.cost import CostModel, MachineSpec
from repro.sim.machine import MachineSimulator, SimConfig
from repro.uplink import SubframeFactory, UserParameters
from repro.uplink.parameter_model import RandomizedParameterModel

SUBFRAMES = 1_000
WORKERS = 16


def run_once(observers=None):
    cost = CostModel(
        machine=MachineSpec(num_cores=WORKERS + 2, num_workers=WORKERS)
    )
    estimator = calibrate_from_cost_model(cost)
    sim = MachineSimulator(
        cost,
        policy=make_policy("NAP+IDLE", WORKERS, estimator),
        config=SimConfig(drain_margin_s=0.2),
        observers=observers,
    )
    model = RandomizedParameterModel(total_subframes=SUBFRAMES, seed=0)
    start = time.perf_counter()
    result = sim.run(model, num_subframes=SUBFRAMES)
    elapsed = time.perf_counter() - start
    return sim, result, elapsed


def test_disabled_tracing_keeps_hooks_dormant():
    sim, result, _ = run_once(observers=None)
    assert sim._emit is None
    assert result.tasks_executed > 0


def test_disabled_tracing_overhead_under_five_percent():
    """Hooks-off runtime vs a no-op observer attached (hooks live)."""

    class NullObserver:
        def __call__(self, event):
            pass

    # Interleave and keep the best of 3 to suppress scheduler noise.
    off_times, on_times = [], []
    for _ in range(3):
        _, off_result, off_s = run_once(observers=None)
        _, on_result, on_s = run_once(observers=[NullObserver()])
        assert off_result.tasks_executed == on_result.tasks_executed
        off_times.append(off_s)
        on_times.append(on_s)
    off_best, on_best = min(off_times), min(on_times)
    print(
        f"\nhooks off: {off_best:.3f}s  hooks on (null observer): "
        f"{on_best:.3f}s  ratio {on_best / off_best:.3f}"
    )
    # Hooks-off must not exceed hooks-on by more than the 5% budget: the
    # dormant path is an identity check, so any real regression here
    # means events are being constructed with no observer attached.
    assert off_best <= on_best * 1.05


def _span_subframes(count: int = 4):
    factory = SubframeFactory(seed=0)
    users = [
        UserParameters(0, 24, 2, Modulation.QAM64),
        UserParameters(1, 16, 2, Modulation.QAM16),
        UserParameters(2, 8, 1, Modulation.QPSK),
    ]
    return [factory.synthesize(users, index) for index in range(count)]


def _run_threaded(subframes, emit_spans):
    profiler = Profiler(keep_spans=False)
    runtime = ThreadedRuntime(
        num_workers=2,
        steal_seed=0,
        observers=[profiler],
        emit_spans=emit_spans,
    )
    start = time.perf_counter()
    runtime.run(subframes)
    return profiler, time.perf_counter() - start


def test_profiling_span_overhead_under_five_percent():
    """Span edges (vs ``emit_spans=False``) must cost <5% of the run.

    Thread-scheduling noise on shared runners exceeds 5% run-to-run, so
    the asserted bound is noise-immune: microbenchmark the true unit cost
    of one span edge (clock read + Event allocation + profiler dispatch),
    multiply by the number of edges the scenario emits, and require that
    total to stay under 5% of the spans-disabled wall time. The direct
    end-to-end delta is printed, and sanity-bounded loosely.
    """
    subframes = _span_subframes()
    off_times, on_times = [], []
    for _ in range(3):
        _, off_s = _run_threaded(subframes, emit_spans=False)
        profiler, on_s = _run_threaded(subframes, emit_spans=True)
        off_times.append(off_s)
        on_times.append(on_s)
    off_best, on_best = min(off_times), min(on_times)

    # Edges actually emitted: 2 per subframe + 8 per user (4 kernels).
    users = sum(len(s.slices) for s in subframes)
    span_edges = 2 * len(subframes) + 8 * users
    assert sum(s.count for s in profiler.kernels.values()) > 0

    # Unit cost of one edge, end to end (emit site -> profiler update).
    reps = 20_000
    data = {"name": "chest", "cat": "kernel", "subframe": 0, "user": 0}
    begin = time.perf_counter()
    for _ in range(reps // 2):
        profiler(Event(EventKind.SPAN_BEGIN, time.monotonic_ns(), 0, data))
        profiler(Event(EventKind.SPAN_END, time.monotonic_ns(), 0, data))
    per_edge_s = (time.perf_counter() - begin) / reps

    span_cost_s = span_edges * per_edge_s
    print(
        f"\nspans off: {off_best:.3f}s  on: {on_best:.3f}s "
        f"(end-to-end ratio {on_best / off_best:.3f}); "
        f"{span_edges} edges x {per_edge_s * 1e6:.2f}us = "
        f"{span_cost_s * 1e3:.2f}ms ({span_cost_s / off_best * 100:.2f}%)"
    )
    assert span_cost_s < off_best * 0.05
    # Gross-regression guard on the measured delta (loose: noise floor on
    # shared runners is ~10% even between identical configurations).
    assert on_best <= off_best * 1.5


def _paper_size_subframes(count: int = 4):
    """Full-size users (the paper's 20 MHz cell is 100 PRBs).

    The telemetry-overhead bound is asserted at representative task
    granularity: the tiny ``_span_subframes`` users make each task a few
    tens of microseconds, which inflates the event-to-compute ratio an
    order of magnitude past any real workload.
    """
    factory = SubframeFactory(seed=0)
    users = [
        UserParameters(0, 100, 4, Modulation.QAM64),
        UserParameters(1, 64, 2, Modulation.QAM16),
        UserParameters(2, 32, 1, Modulation.QPSK),
    ]
    return [factory.synthesize(users, index) for index in range(count)]


def _replay_cost_s(events, observers, repeats: int = 5) -> float:
    """Best-of-``repeats`` cost of the real event mix through observers."""
    best = None
    for _ in range(repeats):
        fresh = [factory() for factory in observers]
        start = time.perf_counter()
        for event in events:
            for observer in fresh:
                observer(event)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _record_run(subframes, emit_spans):
    from repro.obs.recorder import EventRecorder

    recorder = EventRecorder()
    ThreadedRuntime(
        num_workers=2, steal_seed=0, observers=[recorder],
        emit_spans=emit_spans,
    ).run(subframes)
    return recorder.events


def test_telemetry_and_slo_overhead_under_five_percent():
    """Streaming telemetry + SLO engine must cost <5% of a real run.

    Noise-immune like the span bound, but honest about the event mix:
    record the scenario's actual stream once, then measure the cost of
    replaying that exact stream through a fresh ``SLOEngine`` (sketch
    observes, ring updates, windowed burn-rate evaluation included) and
    require it under 5% of the observer-free wall time.
    """
    from repro.obs import SLOEngine

    subframes = _paper_size_subframes()
    off_best = min(
        _run_threaded_wall(subframes, observers=None) for _ in range(3)
    )
    events = _record_run(subframes, emit_spans=False)
    cost_s = _replay_cost_s(events, [SLOEngine])
    # Sanity: the replayed stream drives the full pipeline.
    engine = SLOEngine()
    for event in events:
        engine(event)
    assert engine.telemetry.counters["subframes"] == len(subframes)
    assert engine.telemetry.sketch("subframe_latency").count == len(subframes)
    print(
        f"\ntelemetry: {len(events)} events cost {cost_s * 1e3:.2f}ms "
        f"vs {off_best * 1e3:.1f}ms run ({cost_s / off_best * 100:.2f}%)"
    )
    assert cost_s < off_best * 0.05


def test_spans_plus_telemetry_overhead_under_five_percent():
    """Spans AND telemetry enabled together must stay under 5%.

    The full service-mode observer stack — profiling spans plus the SLO
    engine's sketch/ring/burn-rate pipeline — against the observer-free
    baseline, with spans emitted (the richer stream): replay the real
    recorded stream through both observers and bound the total.
    """
    from repro.obs import SLOEngine

    subframes = _paper_size_subframes()
    off_best = min(
        _run_threaded_wall(subframes, observers=None) for _ in range(3)
    )
    events = _record_run(subframes, emit_spans=True)
    cost_s = _replay_cost_s(
        events, [lambda: Profiler(keep_spans=False), SLOEngine]
    )
    profiler = Profiler(keep_spans=False)
    for event in events:
        profiler(event)
    assert sum(s.count for s in profiler.kernels.values()) > 0
    print(
        f"\nspans+telemetry: {len(events)} events cost {cost_s * 1e3:.2f}ms "
        f"vs {off_best * 1e3:.1f}ms run ({cost_s / off_best * 100:.2f}%)"
    )
    assert cost_s < off_best * 0.05


def _run_threaded_wall(subframes, observers):
    runtime = ThreadedRuntime(
        num_workers=2,
        steal_seed=0,
        observers=observers,
        emit_spans=observers is not None,
    )
    start = time.perf_counter()
    runtime.run(subframes)
    return time.perf_counter() - start


def test_profiler_attributes_all_four_kernels():
    """With spans on, the profiler sees every Fig. 5 kernel stage."""
    subframes = _span_subframes(count=2)
    profiler, _ = _run_threaded(subframes, emit_spans=True)
    breakdown = profiler.kernel_breakdown("spans")
    assert set(breakdown) == {"chest", "combiner", "symbol", "finalize"}
    shares = sum(entry["share"] for entry in breakdown.values())
    assert abs(shares - 1.0) < 1e-9
    users = sum(len(s.slices) for s in subframes)
    assert all(entry["count"] == users for entry in breakdown.values())
