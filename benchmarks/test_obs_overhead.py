"""Overhead of the observability hooks when no observer is attached.

The emission sites in :class:`repro.sim.machine.MachineSimulator` are a
single ``is not None`` check when tracing is off (``_emit is None``), so a
plain run must stay within a few percent of the pre-instrumentation cost.
The acceptance bound here is <5% slowdown hooks-off vs hooks-on serving
as the reference for what full tracing costs.
"""

import time

from repro.power.estimator import calibrate_from_cost_model
from repro.power.governor import make_policy
from repro.sim.cost import CostModel, MachineSpec
from repro.sim.machine import MachineSimulator, SimConfig
from repro.uplink.parameter_model import RandomizedParameterModel

SUBFRAMES = 1_000
WORKERS = 16


def run_once(observers=None):
    cost = CostModel(
        machine=MachineSpec(num_cores=WORKERS + 2, num_workers=WORKERS)
    )
    estimator = calibrate_from_cost_model(cost)
    sim = MachineSimulator(
        cost,
        policy=make_policy("NAP+IDLE", WORKERS, estimator),
        config=SimConfig(drain_margin_s=0.2),
        observers=observers,
    )
    model = RandomizedParameterModel(total_subframes=SUBFRAMES, seed=0)
    start = time.perf_counter()
    result = sim.run(model, num_subframes=SUBFRAMES)
    elapsed = time.perf_counter() - start
    return sim, result, elapsed


def test_disabled_tracing_keeps_hooks_dormant():
    sim, result, _ = run_once(observers=None)
    assert sim._emit is None
    assert result.tasks_executed > 0


def test_disabled_tracing_overhead_under_five_percent():
    """Hooks-off runtime vs a no-op observer attached (hooks live)."""

    class NullObserver:
        def __call__(self, event):
            pass

    # Interleave and keep the best of 3 to suppress scheduler noise.
    off_times, on_times = [], []
    for _ in range(3):
        _, off_result, off_s = run_once(observers=None)
        _, on_result, on_s = run_once(observers=[NullObserver()])
        assert off_result.tasks_executed == on_result.tasks_executed
        off_times.append(off_s)
        on_times.append(on_s)
    off_best, on_best = min(off_times), min(on_times)
    print(
        f"\nhooks off: {off_best:.3f}s  hooks on (null observer): "
        f"{on_best:.3f}s  ratio {on_best / off_best:.3f}"
    )
    # Hooks-off must not exceed hooks-on by more than the 5% budget: the
    # dormant path is an identity check, so any real regression here
    # means events are being constructed with no observer attached.
    assert off_best <= on_best * 1.05
