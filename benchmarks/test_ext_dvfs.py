"""Extension: estimation-driven DVFS on top of NAP+IDLE (Section VII hints
at combining the workload estimator with DVFS; the paper does not evaluate
it). The estimator's per-subframe activity selects a frequency/voltage
point with Eq. 7-style lookahead; dynamic power scales by f·V².
"""

import numpy as np

from repro.power.dvfs import DvfsModel
from repro.uplink.parameter_model import RandomizedParameterModel


def test_ext_dvfs(benchmark, power_study, num_subframes):
    run = power_study.runs["NAP+IDLE"]
    model = RandomizedParameterModel(total_subframes=num_subframes, seed=0)
    estimates = np.array(
        [
            power_study.estimator.estimate_subframe(model.uplink_parameters(i))
            for i in range(num_subframes)
        ]
    )

    def apply_dvfs():
        dvfs = DvfsModel()
        adjusted_dynamic = dvfs.apply_to_power(
            run.power.dynamic_w, power_study.window_s, estimates, 5e-3
        )
        return run.power.base_power_w + adjusted_dynamic + run.power.leakage_w

    dvfs_total = benchmark.pedantic(apply_dvfs, rounds=1, iterations=1)
    napidle = run.power.total_w
    print()
    print("Extension — estimation-driven DVFS on top of NAP+IDLE")
    print(f"  NAP+IDLE mean:        {napidle.mean():.2f} W")
    print(f"  NAP+IDLE+DVFS mean:   {dvfs_total.mean():.2f} W")
    n = napidle.size
    low = slice(0, max(1, n // 6))
    print(
        f"  low-load reduction:   {(napidle[low] - dvfs_total[low]).mean():.2f} W"
    )

    # DVFS adds savings on average, concentrated at low load...
    assert dvfs_total.mean() < napidle.mean() - 0.3
    assert (napidle[low] - dvfs_total[low]).mean() > (napidle - dvfs_total).mean()
    # ...and cannot help at the saturated peak (frequency pinned at nominal).
    peak = slice(2 * n // 5, 3 * n // 5)
    assert (napidle[peak] - dvfs_total[peak]).mean() < 1.0
