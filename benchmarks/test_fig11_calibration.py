"""Fig. 11: correlation between subframe input parameters and activity.

Runs the paper's calibration procedure on the simulator — steady-state
single-user runs per (layers, modulation) configuration over a PRB sweep —
and checks the figure's structure: activity is linear in PRBs, slopes grow
with layers and modulation order, and the maximum configuration reaches
~100 % activity at 200 PRBs.
"""

import numpy as np

from repro.experiments.report import format_calibration
from repro.power.estimator import calibrate_from_simulation, fit_slope_through_origin


def test_fig11_calibration(benchmark, cost_model):
    estimator, sweeps = benchmark.pedantic(
        lambda: calibrate_from_simulation(
            cost_model,
            prb_values=[2, 40, 80, 120, 160, 200],
            settle_subframes=20,
            measure_subframes=80,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_calibration(sweeps, estimator.slopes))

    # Linearity: residuals of the origin-through fit are small everywhere.
    for key, (prbs, acts) in sweeps.items():
        k = fit_slope_through_origin(prbs, acts)
        residual = np.abs(acts - k * prbs).max()
        assert residual < 0.05, key

    # Slope ordering across layers and modulations (the fan of 12 curves).
    for mod in ("QPSK", "16QAM", "64QAM"):
        ks = [estimator.slopes[(layers, mod)] for layers in (1, 2, 3, 4)]
        assert ks == sorted(ks)
    for layers in (1, 2, 3, 4):
        ks = [estimator.slopes[(layers, mod)] for mod in ("QPSK", "16QAM", "64QAM")]
        assert ks == sorted(ks)

    # The calibration point: 200 PRB / 4 layers / 64-QAM ≈ full activity.
    prbs, acts = sweeps[(4, "64QAM")]
    assert acts[-1] > 0.9
