"""Zero-death cost of the worker supervisor (must stay under 2%).

With ``respawn=`` attached but no worker dying, the multiprocess pool's
hot path gains exactly three things: a ``monotonic_ns`` busy-stamp per
dispatch, a ``note_progress`` per completed reply, and an empty
heartbeat/pending probe per pump. As with the fault-overhead bound,
shared-runner wall-clock deltas are noisier than the budget itself, so
the asserted number is built from measured unit costs times the counts
the scenario actually performs; the end-to-end supervised-vs-off delta
is printed and loosely guarded. The serve-facing trend number lives in
``repro bench`` (``supervision_overhead_pct``).
"""

import time

from repro.faults.watchdog import monotonic_ns
from repro.phy import Modulation
from repro.sched.multiprocess import MultiprocessRuntime
from repro.serve import RespawnPolicy, WorkerSupervisor
from repro.uplink import SubframeFactory, UserParameters

WORKERS = 2
SUBFRAMES = 6


def _subframes():
    factory = SubframeFactory(seed=0)
    users = [
        UserParameters(0, 24, 2, Modulation.QAM64),
        UserParameters(1, 16, 2, Modulation.QAM16),
        UserParameters(2, 8, 1, Modulation.QPSK),
    ]
    return [factory.synthesize(users, index) for index in range(SUBFRAMES)]


def _run(subframes, supervised):
    runtime = MultiprocessRuntime(num_workers=WORKERS, respawn=supervised)
    runtime.start()  # spawn cost excluded: the bound is steady-state
    try:
        start = time.perf_counter()
        for subframe in subframes:
            runtime.submit(subframe)
        runtime.drain()
        elapsed = time.perf_counter() - start
        assert runtime.ledger.ok
        assert runtime.ledger.counts()["ok"] == len(subframes)
        if supervised:
            assert runtime.supervisor.deaths == 0
            assert not runtime.supervisor.fail_stop
    finally:
        runtime.close()
    return elapsed


def test_zero_death_supervision_overhead_under_two_percent():
    subframes = _subframes()
    off_times, on_times = [], []
    for _ in range(3):
        off_times.append(_run(subframes, supervised=False))
        on_times.append(_run(subframes, supervised=True))
    off_best, on_best = min(off_times), min(on_times)

    # Unit costs of the supervised hot path, measured directly.
    reps = 20_000
    begin = time.perf_counter()
    for _ in range(reps):
        monotonic_ns()
    stamp_s = (time.perf_counter() - begin) / reps

    supervisor = WorkerSupervisor(RespawnPolicy(), WORKERS)
    begin = time.perf_counter()
    for _ in range(reps):
        supervisor.note_progress(0)
    progress_s = (time.perf_counter() - begin) / reps

    begin = time.perf_counter()
    for _ in range(reps):
        # The per-pump probe with nothing dead: heartbeat config check
        # plus the pending-respawn test, both constant-time.
        if supervisor.heartbeat_timeout_ns is None and not supervisor.pending:
            pass
    pump_s = (time.perf_counter() - begin) / reps

    # Counts: one stamp per dispatch, one progress reset per ok reply,
    # one probe per pump — the drain loop pumps at the 20ms watchdog
    # cadence, and the serve loop at its own 2ms cadence; bound against
    # the *faster* cadence so the assertion covers both callers.
    pumps = max(1.0, on_best / 0.002)
    armed_cost_s = (
        len(subframes) * stamp_s + len(subframes) * progress_s + pumps * pump_s
    )
    print(
        f"\nsupervision off: {off_best:.3f}s  on: {on_best:.3f}s "
        f"(end-to-end ratio {on_best / off_best:.3f}); "
        f"{len(subframes)} stamps x {stamp_s * 1e6:.2f}us + "
        f"{len(subframes)} resets x {progress_s * 1e6:.2f}us + "
        f"{pumps:.0f} probes x {pump_s * 1e6:.2f}us = "
        f"{armed_cost_s * 1e3:.3f}ms ({armed_cost_s / off_best * 100:.2f}%)"
    )
    assert armed_cost_s < off_best * 0.02
    # Gross-regression guard on the measured delta (loose: spawn-pool
    # scheduling noise between identical configs exceeds 2%).
    assert on_best <= off_best * 1.5
