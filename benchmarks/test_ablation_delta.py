"""Ablation: the dispatch interval DELTA (Section IV-B).

"In practice, the rate at which subframes are dispatched is configurable;
this allows the benchmark to run on hardware that cannot sustain a rate of
one subframe per millisecond." The paper's TILEPro64 sustains 5 ms.
Activity scales inversely with DELTA for a fixed workload — halving the
interval doubles the load — until the machine saturates.
"""

import numpy as np
import pytest

from repro.phy.params import Modulation
from repro.sim.cost import CostModel, MachineSpec
from repro.sim.machine import MachineSimulator, SimConfig
from repro.uplink.parameter_model import SteadyStateParameterModel


def run_delta(period_s: float):
    # Calibrate the cost model at the paper's 5 ms so the workload's
    # absolute cycle cost stays fixed, then dispatch at a different DELTA
    # (the cost model's scale is computed once at construction).
    cost = CostModel(machine=MachineSpec(subframe_period_s=5e-3))
    cost.machine = MachineSpec(subframe_period_s=period_s)
    model = SteadyStateParameterModel(100, 2, Modulation.QAM16)
    sim = MachineSimulator(cost, config=SimConfig(drain_margin_s=0.0))
    result = sim.run(model, num_subframes=120)
    return float(result.trace.activity()[1:].mean())


def test_ablation_delta(benchmark):
    periods = (2.5e-3, 5e-3, 10e-3)
    activities = benchmark.pedantic(
        lambda: {p: run_delta(p) for p in periods}, rounds=1, iterations=1
    )
    print()
    print("Ablation — dispatch interval DELTA vs steady-state activity")
    for period, activity in activities.items():
        print(f"  DELTA {period * 1e3:4.1f} ms: activity {activity:.3f}")

    a_fast, a_paper, a_slow = (activities[p] for p in periods)
    # Halving DELTA doubles the offered load; doubling it halves.
    assert a_fast == pytest.approx(2 * a_paper, rel=0.15)
    assert a_slow == pytest.approx(0.5 * a_paper, rel=0.15)
