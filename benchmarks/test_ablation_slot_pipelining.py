"""Ablation: whole-subframe vs per-slot job structure (Fig. 5).

The paper processes channel estimation per slot but batches each user's
data demodulation per subframe ("Data from both slots are required for
processing to proceed"). Splitting every stage per slot is the natural
alternative; it moves work earlier and can shorten the tail of the
latency distribution while leaving the executed cycles untouched.
"""

import numpy as np

from repro.sim.cost import CostModel
from repro.sim.machine import MachineSimulator, SimConfig
from repro.sim.trace import CoreState
from repro.uplink.parameter_model import RandomizedParameterModel

SUBFRAMES = 800


def test_ablation_slot_pipelining(benchmark):
    cost = CostModel()
    model = RandomizedParameterModel(total_subframes=SUBFRAMES, seed=0)

    def run_both():
        out = {}
        for pipelined in (False, True):
            sim = MachineSimulator(
                cost,
                config=SimConfig(drain_margin_s=0.3),
                slot_pipelined=pipelined,
            )
            out[pipelined] = sim.run(model, num_subframes=SUBFRAMES)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("Ablation — whole-subframe (paper) vs per-slot job structure")
    for pipelined, result in results.items():
        label = "per-slot  " if pipelined else "per-frame "
        p50, p95 = np.percentile(result.subframe_latency_s, [50, 95]) * 1e3
        print(
            f"  {label}: p50 {p50:6.1f} ms  p95 {p95:6.1f} ms  "
            f"tasks {result.tasks_executed}"
        )

    plain, piped = results[False], results[True]
    # The reorganization must not change the work done.
    assert piped.users_processed == plain.users_processed
    assert piped.trace.total_cycles(CoreState.COMPUTE) == (
        plain.trace.total_cycles(CoreState.COMPUTE)
    )
    # More schedulable units (split chest + per-slot combiner).
    assert piped.tasks_executed > plain.tasks_executed
    # Latency must stay in the same regime (within 25 % on the median).
    p50_plain = np.percentile(plain.subframe_latency_s, 50)
    p50_piped = np.percentile(piped.subframe_latency_s, 50)
    assert abs(p50_piped - p50_plain) < 0.25 * p50_plain + 1e-4
