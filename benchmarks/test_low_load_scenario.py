"""The paper's closing claim (Section VIII): the evaluation's ~50 % average
load is pessimistic — "most base stations have an average load of about
25 %" — and the estimation-guided techniques "would show even greater
benefits for a more realistic use case."

This bench builds that 25 %-average scenario (the same randomized model
with half the PRB budget) and verifies the claim: the *relative* savings
of NAP+IDLE and PowerGating over NONAP/IDLE exceed the 50 %-load run's.
"""

import numpy as np

from repro.experiments.power_study import run_power_study
from repro.uplink.parameter_model import RandomizedParameterModel

SUBFRAMES = 1_200


def test_low_load_scenario(benchmark, power_study):
    """power_study is the ~50 % scenario; rerun the pipeline at ~25 %."""

    def run_low():
        import repro.experiments.power_study as ps
        from repro.power.estimator import calibrate_from_cost_model
        from repro.sim.cost import CostModel

        cost = CostModel()
        # Patch a half-budget workload in via a thin model subclass.
        class QuarterLoadModel(RandomizedParameterModel):
            pass

        model = QuarterLoadModel(
            total_subframes=SUBFRAMES, seed=0, max_prb=100, max_users=6
        )
        from repro.power.gating import PowerGatingModel
        from repro.power.governor import make_policy
        from repro.power.model import PowerModel
        from repro.sim.machine import MachineSimulator, SimConfig

        estimator = calibrate_from_cost_model(cost)
        powers = {}
        active_hist = None
        for name in ("NONAP", "IDLE", "NAP+IDLE"):
            policy = make_policy(name, cost.machine.num_workers, estimator)
            sim = MachineSimulator(
                cost, policy=policy, config=SimConfig(drain_margin_s=0.0)
            ).run(model, num_subframes=SUBFRAMES)
            trace = PowerModel().evaluate(sim.trace, cost.machine.clock_hz)
            powers[name] = trace
            if name == "NAP+IDLE":
                active_hist = np.array(policy.active_cores_history)
        gated = PowerGatingModel().apply_to_power(
            powers["NAP+IDLE"].total_w, 0.1, active_hist, cost.machine.subframe_period_s
        )
        return powers, gated

    powers, gated = benchmark.pedantic(run_low, rounds=1, iterations=1)
    mean_activity_proxy = powers["NONAP"].dynamic_w.mean() / (62 * 0.188)
    print()
    print("Low-load (~25 %) scenario vs the paper's ~50 % evaluation")
    print(f"  NONAP-normalized load proxy: {mean_activity_proxy:.2f}")
    for name, trace in powers.items():
        print(f"  {name:9s} mean {trace.mean_total():.2f} W")
    print(f"  PowerGating mean {gated.mean():.2f} W")

    low_gating_vs_idle = 1.0 - gated.mean() / powers["IDLE"].mean_total()
    high_gating_vs_idle = 1.0 - power_study.mean_power("PowerGating") / power_study.mean_power("IDLE")
    print(
        f"  gating vs IDLE: {low_gating_vs_idle * 100:.0f}% at low load vs "
        f"{high_gating_vs_idle * 100:.0f}% at 50% load"
    )

    # The headline: the relative win grows as load falls.
    assert low_gating_vs_idle > high_gating_vs_idle
    # And NAP+IDLE's relative win over NONAP grows too.
    low_napidle = 1.0 - powers["NAP+IDLE"].mean_total() / powers["NONAP"].mean_total()
    high_napidle = 1.0 - power_study.mean_power("NAP+IDLE") / power_study.mean_power("NONAP")
    assert low_napidle > high_napidle
