"""Table I: average power dissipation when not including base power.

Paper rows: NONAP 11 W (0 %), IDLE 6.7 W (39 %), NAP 6.5 W (41 %),
NAP+IDLE 5.9 W (46 %).
"""

from repro.experiments.report import format_table1


def test_table1_dynamic_power(benchmark, power_study):
    rows = benchmark.pedantic(power_study.table1, rounds=1, iterations=1)
    print()
    print(format_table1(power_study))
    by_name = {name: (above, red) for name, above, red in rows}

    # NONAP dynamic power ~11 W at ~50 % average activity.
    assert abs(by_name["NONAP"][0] - 11.0) < 1.5
    # Reductions in the paper's band and order.
    assert 0.30 < by_name["IDLE"][1] < 0.50  # paper: 39 %
    assert 0.30 < by_name["NAP"][1] < 0.52  # paper: 41 %
    assert 0.36 < by_name["NAP+IDLE"][1] < 0.56  # paper: 46 %
    assert by_name["NAP+IDLE"][1] > by_name["NAP"][1] - 1e-9
    assert by_name["NAP+IDLE"][1] > by_name["IDLE"][1]
