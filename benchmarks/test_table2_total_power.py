"""Table II: average total power dissipation.

Paper rows: NONAP 25 W, IDLE 20.7 W (-17 %), NAP 20.5 W (-18 %),
NAP+IDLE 19.9 W (-22 %), PowerGating 18.5 W (-26 %, and -11 % vs IDLE).
"""

from repro.experiments.report import format_table2

PAPER = {
    "NONAP": 25.0,
    "IDLE": 20.7,
    "NAP": 20.5,
    "NAP+IDLE": 19.9,
    "PowerGating": 18.5,
}


def test_table2_total_power(benchmark, power_study):
    rows = benchmark.pedantic(power_study.table2, rounds=1, iterations=1)
    print()
    print(format_table2(power_study))
    by_name = {name: (power, vs_nonap, vs_idle) for name, power, vs_nonap, vs_idle in rows}

    # Absolute watts within ~1.5 W of every paper row.
    for name, paper_w in PAPER.items():
        assert abs(by_name[name][0] - paper_w) < 1.5, name

    # Relative structure: who wins and by roughly what factor.
    assert by_name["IDLE"][1] < -0.10  # paper: -17 %
    assert by_name["NAP+IDLE"][1] < by_name["NAP"][1] < -0.10
    assert by_name["PowerGating"][1] < -0.20  # paper: -26 %
    assert by_name["PowerGating"][2] < -0.05  # paper: -11 % vs IDLE
    # The paper's ordering, exactly.
    ordered = sorted(PAPER, key=lambda n: by_name[n][0], reverse=True)
    assert ordered == ["NONAP", "IDLE", "NAP", "NAP+IDLE", "PowerGating"]
