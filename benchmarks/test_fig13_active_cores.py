"""Fig. 13: estimated number of active cores for every 25th subframe.

Eq. 5 applied to the randomized workload: the count "changes rapidly
throughout the duration" and spans from the +2 floor to the full machine.
"""

import numpy as np

from repro.experiments.report import format_series


def test_fig13_active_cores(benchmark, power_study):
    history = benchmark.pedantic(
        lambda: power_study.runs["NAP"].estimated_active_cores,
        rounds=1,
        iterations=1,
    )
    print()
    print("Fig. 13 — estimated active cores (Eq. 5, every 25th subframe)")
    sampled = history[::25]
    print(format_series("active", np.arange(sampled.size) * 25, sampled, 16))
    print(f"range: {history.min()}..{history.max()}")

    assert history.min() >= 2  # over-provisioning floor
    assert history.max() >= 60  # near the full 62-worker machine at peak
    # "changes rapidly": many distinct values and frequent changes.
    assert len(np.unique(history)) > 15
    changes = np.count_nonzero(np.diff(history))
    assert changes > history.size * 0.5
