"""Kill-midway checkpoint/resume round trip (CI ``supervision-smoke``).

The in-repo test suite cuts runs with ``--max-wall`` (a clean exit);
this driver validates the *crash* path the checkpoint exists for: a
``repro serve`` subprocess is SIGKILLed mid-run — no atexit hooks, no
final snapshot — and ``--resume`` from whatever ``repro-ckpt/1`` file
the periodic writer last published must reconstruct the exact
per-subframe terminal-state map of an uninterrupted run at the same
seed. The config keeps every admission decision a pure function of
(seed, tick): unpaced, and ``queue_depth >= subframes`` so backpressure
(which depends on inflight timing relative to the kill) never engages.

Exit status 0 = round trip OK; any assertion failure is fatal.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import (  # noqa: E402
    ServeConfig,
    load_checkpoint,
    serve,
    validate_serve_report,
)

CONFIG = dict(
    cells=2,
    subframes=400,
    backend="serial",
    pace=False,
    arrival="poisson",
    rate=2.0,
    seed=7,
    queue_depth=512,  # >= subframes: backpressure provably never engages
)

CLI = [
    sys.executable,
    "-m",
    "repro",
    "serve",
    "--cells",
    str(CONFIG["cells"]),
    "--subframes",
    str(CONFIG["subframes"]),
    "--backend",
    CONFIG["backend"],
    "--no-pace",
    "--arrival",
    CONFIG["arrival"],
    "--rate",
    str(CONFIG["rate"]),
    "--seed",
    str(CONFIG["seed"]),
    "--queue-depth",
    str(CONFIG["queue_depth"]),
    "--timeout",
    "300",
]


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="supervision-smoke-")
    ckpt = os.path.join(workdir, "ckpt.json")
    out = os.path.join(workdir, "resumed.json")

    print("uninterrupted reference run ...", flush=True)
    full = serve(ServeConfig(**CONFIG, checkpoint_path=os.path.join(workdir, "full.json")))
    assert full.ok, full.errors
    full_report = full.report
    assert full_report["backpressure_hits"] == 0, "config must not backpressure"
    full_map = full_report["terminal_states"]

    print("victim run (SIGKILL after first periodic snapshot) ...", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    victim = subprocess.Popen(
        CLI + ["--checkpoint", ckpt, "--checkpoint-every", "0.02"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60.0
    while not os.path.exists(ckpt) and victim.poll() is None:
        assert time.monotonic() < deadline, "no snapshot appeared within 60s"
        time.sleep(0.005)
    assert victim.poll() is None, "victim finished before it could be killed"
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)
    assert victim.returncode == -signal.SIGKILL

    snapshot = load_checkpoint(ckpt)
    assert snapshot["completed"] is False, "kill landed after completion"
    done = sum(len(record["states"]) for record in snapshot["cells"])
    total = CONFIG["cells"] * CONFIG["subframes"]
    assert 0 < done < total, (done, total)
    print(f"  killed with {done}/{total} subframes resolved", flush=True)

    print("resume run ...", flush=True)
    code = subprocess.call(
        CLI + ["--resume", ckpt, "--checkpoint", ckpt, "--json-out", out],
        env=env,
        stdout=subprocess.DEVNULL,
    )
    assert code == 0, f"resume exited {code}"
    with open(out, encoding="utf-8") as handle:
        report = json.load(handle)
    problems = validate_serve_report(report)
    assert not problems, problems
    assert report["checkpoint"]["segments"] == 2, report["checkpoint"]
    assert report["terminal_states"] == full_map, "terminal-state maps differ"
    for key in (
        "dispatched",
        "offered_users",
        "served_users",
        "shed_users",
        "crc_ok_users",
        "terminal_counts",
    ):
        assert report[key] == full_report[key], (
            key,
            report[key],
            full_report[key],
        )
    assert load_checkpoint(ckpt)["completed"] is True
    print(
        f"supervision smoke OK: resumed segment matched {len(full_map)} "
        f"terminal states after SIGKILL at {done}/{total}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
