"""Crash-safe file writes shared by every end-of-run artifact writer.

A report that a SIGKILL (or power loss) can truncate is worse than no
report: ``repro top --from`` and the CI validators would choke on half a
JSON document. Every writer of a machine-readable artifact — bench
reports, fault plans, serve checkpoints — funnels through
:func:`atomic_write_text`: the bytes land in a temporary file in the
*same directory*, are fsynced to stable storage, and only then replace
the destination with an atomic ``os.replace``. Readers therefore see
either the complete old file or the complete new file, never a torn
write.

The directory entry itself is fsynced best-effort after the rename so
the new name survives a crash too (POSIX leaves the entry durability to
the directory fsync; on platforms where directories cannot be opened,
e.g. Windows, that step is skipped — the content atomicity still holds).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, IO

__all__ = ["atomic_write_json", "atomic_write_text", "fsync_file"]


def fsync_file(handle: IO[Any]) -> None:
    """Flush ``handle`` and force its bytes to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(directory: Path) -> None:
    # Durability of the rename itself: sync the directory entry. Not all
    # platforms allow opening a directory (Windows); treat that as
    # best-effort — content atomicity does not depend on it.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename (atomic on POSIX). On any
    failure the temporary file is removed and the destination is left
    untouched.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=target.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            fsync_file(handle)
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_dir(directory)
    return target


def atomic_write_json(
    path: str | Path,
    payload: Any,
    indent: int | None = 2,
    sort_keys: bool = False,
) -> Path:
    """Serialize ``payload`` as JSON and write it atomically."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    return atomic_write_text(path, text + "\n")
