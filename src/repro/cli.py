"""Command-line interface: ``python -m repro <command>``.

Commands mirror the benchmark binary and the evaluation drivers:

``quickstart``
    Decode one synthesized subframe serially and on the thread runtime,
    verify both agree (Section IV-D).
``run``
    Decode a stretch of randomized-workload subframes on a selected
    backend (``--backend serial|vectorized|threaded|multiprocess``);
    ``--verify`` recomputes everything on the serial reference and
    requires bit-exact agreement.
``workload``
    Print the Figs. 7-9 workload-trace summary of the randomized model.
``calibrate``
    Run the Fig. 11 steady-state calibration and print the k_LM table.
``estimate``
    Run the Fig. 12 estimated-vs-measured comparison (with an ASCII plot).
``power-study``
    Run the Section VI study and print Tables I and II (with an ASCII
    rendering of Fig. 16).
``trace``
    Run the simulator with structured event tracing and the invariant
    checker attached; export the event stream as JSONL or as a Chrome
    ``trace_event`` timeline (``--format chrome``, loadable in Perfetto).
    With ``--from FILE`` convert an existing JSONL trace instead of
    running a simulation — unknown event kinds are tolerated.
``metrics``
    Run the simulator with the metrics collector attached and print the
    scheduler-metrics summary (counters, gauges, histograms).
``bench``
    Run the pinned benchmark scenario matrix (serial reference, threaded
    runtime, simulator under NONAP and NAP+IDLE) with profiling attached
    and write a machine-readable ``BENCH_<rev>.json``; ``--compare``
    exits nonzero on regression against a baseline report.
``lint``
    Run the project's AST-based static analyzers (lock discipline,
    sim determinism, obs schema consistency — see
    ``docs/static_analysis.md``) over the given paths.
``chaos``
    Run the seeded fault-injection campaign (``repro.faults.chaos``)
    across the simulator and the threaded runtime (``--backend
    multiprocess`` opts the spawn-based pool in, where worker-death
    faults SIGKILL real processes) and print a survival report; exits
    nonzero when any scenario fails a survival check.

``run``, ``bench``, and ``chaos`` accept ``--timeout SECONDS``: a
``faulthandler``-based hang guard that dumps all-thread tracebacks and
exits if the command wedges. Ctrl-C aborts cleanly (workers shut down,
traces flush) instead of leaving threads behind.
"""

from __future__ import annotations

import argparse
import sys


def _add_timeout(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hang guard: dump all-thread tracebacks and exit if the "
        "command runs longer than this (default: no guard)",
    )


def _add_scale(parser: argparse.ArgumentParser, default: int) -> None:
    parser.add_argument(
        "--subframes",
        type=int,
        default=default,
        help=f"evaluation length in subframes (default {default}; paper: 68000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LTE Uplink Receiver PHY benchmark & power-management reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="decode one subframe, verify runtimes")
    quick.add_argument("--workers", type=int, default=4)
    quick.add_argument("--seed", type=int, default=42)

    run = sub.add_parser(
        "run", help="decode randomized subframes on a selected backend"
    )
    run.add_argument(
        "--backend",
        choices=["serial", "vectorized", "threaded", "multiprocess"],
        default="serial",
        help="execution backend (default serial)",
    )
    run.add_argument(
        "--subframes", type=int, default=8, help="number of subframes (default 8)"
    )
    run.add_argument("--seed", type=int, default=0, help="workload seed")
    run.add_argument(
        "--users",
        type=int,
        default=4,
        help="MAX_USERS of the randomized model (default 4)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=4,
        help="threads/processes (threaded and multiprocess backends)",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="recompute on the serial reference and require bit-exact agreement",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable result including the slo_report "
        "section (streaming telemetry + SLO evaluation)",
    )
    _add_timeout(run)

    workload = sub.add_parser("workload", help="Figs. 7-9 workload summary")
    _add_scale(workload, 6_800)
    workload.add_argument("--stride", type=int, default=25)

    calibrate = sub.add_parser("calibrate", help="Fig. 11 k_LM calibration")
    calibrate.add_argument(
        "--points", type=int, default=5, help="PRB sweep points per configuration"
    )

    estimate = sub.add_parser("estimate", help="Fig. 12 estimated vs measured")
    _add_scale(estimate, 2_000)

    study = sub.add_parser("power-study", help="Tables I-II, Figs. 13-16")
    _add_scale(study, 2_000)

    def _add_obs_run(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--policy",
            choices=["nonap", "idle", "nap", "nap+idle"],
            default="nap+idle",
            help="power-management policy to simulate (default nap+idle)",
        )
        subparser.add_argument(
            "--workers", type=int, default=8, help="worker core count"
        )

    trace = sub.add_parser(
        "trace", help="simulate with event tracing on, export JSONL or Chrome trace"
    )
    _add_scale(trace, 100)
    _add_obs_run(trace)
    trace.add_argument(
        "--out", default=None, help="output path (default trace.jsonl / trace.json)"
    )
    trace.add_argument(
        "--ring",
        type=int,
        default=None,
        help="ring-buffer capacity (default: keep every event)",
    )
    trace.add_argument(
        "--format",
        choices=["jsonl", "chrome"],
        default="jsonl",
        help="jsonl event stream or Chrome trace_event JSON for Perfetto",
    )
    trace.add_argument(
        "--from",
        dest="from_path",
        default=None,
        metavar="FILE",
        help="convert an existing JSONL trace instead of running a simulation "
        "(unknown event kinds are tolerated)",
    )

    metrics = sub.add_parser(
        "metrics", help="simulate with metrics collection on, print summary"
    )
    _add_scale(metrics, 100)
    _add_obs_run(metrics)
    metrics.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    metrics.add_argument(
        "--format",
        choices=["text", "json", "prometheus"],
        default=None,
        help="output format (prometheus: text exposition for scrapers; "
        "default text, or json when --json is given)",
    )

    top = sub.add_parser(
        "top",
        help="live telemetry dashboard: attach to a simulator run or "
        "tail a JSONL trace",
    )
    _add_scale(top, 200)
    _add_obs_run(top)
    top.add_argument(
        "--from",
        dest="from_path",
        default=None,
        metavar="FILE",
        help="replay/tail an existing JSONL trace instead of running a "
        "simulation (unknown event kinds are tolerated)",
    )
    top.add_argument(
        "--follow",
        action="store_true",
        help="with --from: keep tailing the file for new events (Ctrl-C "
        "to stop)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render exactly one final frame and exit (headless/CI mode)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="refresh interval for live rendering (default 0.5)",
    )
    top.add_argument(
        "--width", type=int, default=78, help="frame width (default 78)"
    )

    serve = sub.add_parser(
        "serve",
        help="streaming service mode: multi-cell subframe arrivals at "
        "DELTA cadence with backpressure and admission shedding",
    )
    serve.add_argument(
        "--cells", type=int, default=4, help="number of cells (default 4)"
    )
    serve.add_argument(
        "--subframes",
        type=int,
        default=200,
        help="ticks (subframe slots) per cell (default 200)",
    )
    serve.add_argument(
        "--delta",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="arrival cadence per cell (default 0.005 = the paper's DELTA)",
    )
    serve.add_argument(
        "--arrival",
        choices=["constant", "poisson", "diurnal", "mmtc"],
        default="constant",
        help="offered-load process (default constant)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=4.0,
        help="mean offered users/subframe (poisson; mmtc base rate)",
    )
    serve.add_argument(
        "--daily-users",
        type=float,
        default=50_000.0,
        help="total daily users for --arrival diurnal (default 50000)",
    )
    serve.add_argument(
        "--subframes-per-hour",
        type=int,
        default=100,
        help="diurnal time compression: ticks per simulated hour",
    )
    serve.add_argument(
        "--burst-size",
        type=float,
        default=60.0,
        help="mMTC mean users per synchronized burst window",
    )
    serve.add_argument(
        "--burst-period",
        type=int,
        default=100,
        help="mMTC burst period in ticks (default 100)",
    )
    serve.add_argument(
        "--burst-window",
        type=int,
        default=10,
        help="mMTC burst window length in ticks (default 10)",
    )
    serve.add_argument(
        "--mix",
        choices=["mmtc", "mixed"],
        default="mmtc",
        help="device mix for random arrivals (default mmtc: 2-PRB QPSK)",
    )
    serve.add_argument(
        "--users",
        type=int,
        default=4,
        help="cap on users per subframe (default 4, matches repro run)",
    )
    serve.add_argument(
        "--backend",
        choices=["serial", "vectorized", "threaded", "multiprocess"],
        default="vectorized",
        help="per-cell execution backend (default vectorized)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="workers per cell shard (threaded/multiprocess)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="bounded in-flight subframes per cell (default 8)",
    )
    serve.add_argument(
        "--backpressure",
        choices=["shed", "block"],
        default="shed",
        help="policy at full queue: shed the subframe or block the "
        "producer (default shed)",
    )
    serve.add_argument(
        "--no-pace",
        action="store_true",
        help="disable DELTA pacing: offer arrivals as fast as possible "
        "(flood test)",
    )
    serve.add_argument(
        "--synthesize",
        action="store_true",
        help="synthesize IQ grids per subframe (CRCs pass; slower) "
        "instead of the paper's pre-generated pool",
    )
    serve.add_argument(
        "--max-activity",
        type=float,
        default=0.9,
        help="admission budget: Eq. 4 activity ceiling (default 0.9)",
    )
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument(
        "--faults",
        action="store_true",
        help="chaos variant: inject worker deaths, task exceptions, and "
        "overload windows; the run must degrade via shedding",
    )
    serve.add_argument(
        "--respawn",
        action="store_true",
        help="supervised worker respawn (multiprocess backend): heal "
        "worker deaths under a bounded restart budget instead of "
        "aborting the shard",
    )
    serve.add_argument(
        "--adaptive",
        action="store_true",
        help="SLO-driven adaptive admission: AIMD load shedding with "
        "hysteresis driven by the burn-rate engine",
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="write crash-safe repro-ckpt/1 snapshots to FILE "
        "(atomic tmp+fsync+rename)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between periodic checkpoint snapshots (default 1.0)",
    )
    serve.add_argument(
        "--resume",
        default=None,
        metavar="FILE",
        help="resume a killed run from its checkpoint (config signature "
        "must match; already-resolved subframes are not re-run)",
    )
    serve.add_argument(
        "--max-wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock guard: stop producing after SECONDS, drain, and "
        "exit 124 (resumable when --checkpoint is set)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a line-flushed JSONL event trace (tail it live with "
        "'repro top --from FILE --follow')",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable repro-serve/1 report",
    )
    serve.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="atomically write the repro-serve/1 report to FILE",
    )
    _add_timeout(serve)

    bench = sub.add_parser(
        "bench", help="run the pinned benchmark matrix, write BENCH_<rev>.json"
    )
    bench.add_argument(
        "--scale",
        choices=["smoke", "default", "paper"],
        default="default",
        help="pinned scenario-matrix size (default: default)",
    )
    bench.add_argument("--seed", type=int, default=0, help="workload seed")
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="report path (default BENCH_<git rev>.json)",
    )
    bench.add_argument(
        "--scenario",
        action="append",
        choices=[
            "serial",
            "vectorized",
            "threaded",
            "multiprocess",
            "sim-nonap",
            "sim-nap-idle",
            "serve",
        ],
        default=None,
        metavar="NAME",
        help="run a subset of the matrix (repeatable; default: all seven)",
    )
    bench.add_argument(
        "--no-overhead",
        action="store_true",
        help="skip the observability-overhead measurement",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="wall-clock throughput regression threshold (default 0.30)",
    )
    bench.add_argument(
        "--det-threshold",
        type=float,
        default=0.10,
        help="deterministic (cycle-count) regression threshold (default 0.10)",
    )
    bench.add_argument(
        "--deterministic-only",
        action="store_true",
        help="compare only machine-independent metrics (for CI)",
    )
    bench.add_argument(
        "--history",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="instead of running: aggregate the committed BENCH_*.json "
        "trajectory under DIR (default .) into a per-scenario trend "
        "table, flagging regressions between consecutive snapshots",
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="with --history: emit the trend table as JSON",
    )
    _add_timeout(bench)

    chaos = sub.add_parser(
        "chaos", help="run the seeded fault-matrix campaign, print survival report"
    )
    chaos.add_argument(
        "--scale",
        choices=["smoke", "default"],
        default="default",
        help="campaign size (smoke is the CI gate; default: default)",
    )
    chaos.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="number of consecutive campaign seeds (default 3)",
    )
    chaos.add_argument(
        "--backend",
        choices=["sim", "threaded", "multiprocess", "all"],
        default="all",
        help="restrict the matrix to one backend; 'all' means sim+threaded "
        "(multiprocess is opt-in: process-pool spawns dominate its wall "
        "clock)",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit the survival report as JSON"
    )
    _add_timeout(chaos)

    report = sub.add_parser(
        "report", help="run every experiment, emit a JSON paper-vs-measured report"
    )
    _add_scale(report, 2_000)
    report.add_argument(
        "--output", default="reproduction_report.json", help="output JSON path"
    )

    lint = sub.add_parser(
        "lint", help="run the repro static analyzers (REP* rules)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help="output format (github emits ::error workflow annotations)",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only files git reports as modified or untracked",
    )
    lint.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="content-hash result cache; speeds up repeated runs",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of accepted findings to filter out",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def cmd_quickstart(args) -> int:
    import numpy as np

    from .phy import Modulation
    from .sched import ThreadedRuntime
    from .uplink import (
        SubframeFactory,
        UserParameters,
        process_subframe_serial,
        verify_against_serial,
    )

    users = [
        UserParameters(0, 8, 1, Modulation.QPSK),
        UserParameters(1, 16, 2, Modulation.QAM16),
    ]
    subframe = SubframeFactory(seed=args.seed).synthesize(users, 0)
    serial = process_subframe_serial(subframe)
    for result in serial.user_results:
        expected = subframe.expected_payloads[result.user_id]
        print(
            f"user {result.user_id}: CRC {'OK' if result.crc_ok else 'FAIL'}, "
            f"{expected.size} bits, errors "
            f"{int(np.count_nonzero(result.payload != expected))}"
        )
    parallel = ThreadedRuntime(num_workers=args.workers).run([subframe])
    report = verify_against_serial([serial], parallel)
    print(report)
    return 0 if report.passed else 1


def cmd_run(args) -> int:
    from .faults import hang_guard

    with hang_guard(args.timeout):
        try:
            return _run_impl(args)
        except KeyboardInterrupt:
            print("\ninterrupted — workers shut down cleanly", file=sys.stderr)
            return 130


def _run_impl(args) -> int:
    import json
    import time

    from .obs import SLOEngine
    from .uplink import (
        RandomizedParameterModel,
        SubframeFactory,
        process_subframe,
        process_subframe_serial,
    )

    model = RandomizedParameterModel(
        total_subframes=max(2, args.subframes),
        seed=args.seed,
        max_users=args.users,
    )
    factory = SubframeFactory(seed=args.seed)
    subframes = [
        factory.synthesize(model.uplink_parameters(i), i)
        for i in range(args.subframes)
    ]
    engine = SLOEngine() if args.json else None
    start = time.perf_counter()
    if args.backend == "threaded":
        from .sched import ThreadedRuntime

        runtime = ThreadedRuntime(
            num_workers=args.workers,
            observers=[engine] if engine else None,
        )
        results = runtime.run(subframes)
    elif args.backend == "multiprocess":
        from .sched import MultiprocessRuntime

        runtime = MultiprocessRuntime(
            num_workers=args.workers,
            observers=[engine] if engine else None,
        )
        results = runtime.run(subframes)
    else:
        # Serial/vectorized emit no scheduler events — drive the
        # collector's direct feed with per-subframe wall timings instead.
        results = []
        for subframe in subframes:
            begin_ns = time.monotonic_ns()
            results.append(process_subframe(subframe, backend=args.backend))
            end_ns = time.monotonic_ns()
            if engine is not None:
                engine.telemetry.record_subframe(end_ns, end_ns - begin_ns)
                engine.telemetry.record_busy(end_ns, end_ns - begin_ns)
                engine.evaluate(end_ns)
    wall_s = time.perf_counter() - start
    num_users = sum(len(r.user_results) for r in results)
    crc_ok = sum(1 for r in results for u in r.user_results if u.crc_ok)
    throughput = len(results) / wall_s if wall_s else 0.0
    verified = None
    if args.verify:
        by_index = {r.subframe_index: r for r in results}
        mismatches = [
            subframe.subframe_index
            for subframe in subframes
            if not process_subframe_serial(subframe).equals(
                by_index[subframe.subframe_index]
            )
        ]
        verified = not mismatches
    if engine is not None:
        if engine.telemetry.workers is None:
            engine.telemetry.workers = (
                args.workers
                if args.backend in ("threaded", "multiprocess")
                else 1
            )
        engine.evaluate(engine.telemetry._last_t)
        payload = {
            "backend": args.backend,
            "subframes": len(results),
            "users": num_users,
            "crc_ok": crc_ok,
            "wall_s": wall_s,
            "throughput_sf_per_s": throughput,
            "slo_report": engine.slo_report(),
        }
        if verified is not None:
            payload["bit_exact_vs_serial"] = verified
        print(json.dumps(payload, indent=2))
        return 0 if verified is not False else 1
    print(
        f"backend={args.backend}: {len(results)} subframes, "
        f"{num_users} users, CRC OK {crc_ok}/{num_users}, "
        f"{wall_s:.3f} s wall ({throughput:.1f} sf/s)"
    )
    if verified is None:
        return 0
    if not verified:
        print(f"VERIFY FAILED: subframes {mismatches} differ from serial")
        return 1
    print(f"verify: all {len(subframes)} subframes bit-exact vs serial")
    return 0


def cmd_workload(args) -> int:
    from .experiments import collect_workload_trace, format_workload_summary
    from .uplink import RandomizedParameterModel

    model = RandomizedParameterModel(total_subframes=args.subframes, seed=args.seed)
    trace = collect_workload_trace(model, stride=args.stride)
    print(format_workload_summary(trace))
    return 0


def cmd_calibrate(args) -> int:
    import numpy as np

    from .experiments import format_calibration
    from .power import calibrate_from_simulation
    from .sim import CostModel

    prb_values = [int(p) for p in np.linspace(2, 200, max(2, args.points))]
    prb_values = sorted({p - p % 2 or 2 for p in prb_values})
    estimator, sweeps = calibrate_from_simulation(CostModel(), prb_values=prb_values)
    print(format_calibration(sweeps, estimator.slopes))
    return 0


def cmd_estimate(args) -> int:
    from .experiments import format_estimation, run_estimation_experiment
    from .experiments.asciiplot import render_series

    result = run_estimation_experiment(num_subframes=args.subframes, seed=args.seed)
    print(
        render_series(
            {
                "measured": (result.times_s, result.measured),
                "estimated": (result.times_s, result.estimated),
            },
            title="Fig. 12 — activity over time",
            y_min=0.0,
            y_max=1.0,
        )
    )
    print()
    print(format_estimation(result))
    return 0


def cmd_power_study(args) -> int:
    from .experiments import format_table1, format_table2, run_power_study
    from .experiments.asciiplot import render_series

    study = run_power_study(num_subframes=args.subframes, seed=args.seed)
    times = study.runs["NONAP"].power.times_s
    print(
        render_series(
            {
                "NONAP": (times, study.runs["NONAP"].power.total_w),
                "IDLE": (times, study.runs["IDLE"].power.total_w),
                "NAP+IDLE": (times, study.runs["NAP+IDLE"].power.total_w),
                "PowerGating": (times, study.gated_power_w),
            },
            title="Fig. 16 — power over time (W)",
        )
    )
    print()
    print(format_table1(study))
    print()
    print(format_table2(study))
    return 0


def _run_observed_sim(args, observers):
    """Shared driver for ``trace``/``metrics``: one observed simulator run."""
    from .power import calibrate_from_cost_model
    from .power.governor import make_policy
    from .sim import CostModel, MachineSpec
    from .sim.machine import MachineSimulator, SimConfig
    from .uplink import RandomizedParameterModel

    cost = CostModel(
        machine=MachineSpec(num_cores=args.workers + 2, num_workers=args.workers)
    )
    estimator = calibrate_from_cost_model(cost)
    policy = make_policy(args.policy.upper(), args.workers, estimator)
    model = RandomizedParameterModel(total_subframes=args.subframes, seed=args.seed)
    sim = MachineSimulator(
        cost,
        policy=policy,
        config=SimConfig(drain_margin_s=0.2),
        observers=observers,
    )
    return sim.run(model, num_subframes=args.subframes)


def cmd_trace(args) -> int:
    from collections import Counter

    from .obs import (
        EventRecorder,
        SchedulerInvariantChecker,
        read_jsonl,
        write_chrome_trace,
    )

    if args.from_path is not None:
        # Convert an existing JSONL trace. Records stay plain dicts all the
        # way through, so kinds written by newer (or older) revisions that
        # this build does not know are passed through, not rejected.
        records = read_jsonl(args.from_path)
        out = args.out or "trace.json"
        if args.format != "chrome":
            print("--from requires --format chrome (JSONL->JSONL is a copy)")
            return 2
        written = write_chrome_trace(out, records, clock="cycles")
        kinds = Counter(str(r.get("kind", "?")) for r in records)
        counts = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        print(f"{len(records)} events read from {args.from_path}")
        print(f"event counts: {counts}")
        print(f"{written} Chrome trace events written to {out}")
        return 0

    recorder = EventRecorder(capacity=args.ring)
    checker = SchedulerInvariantChecker(strict=False)
    try:
        result = _run_observed_sim(args, [recorder, checker])
    except BaseException as exc:
        # Crash-safe flush: whatever was traced before the failure is
        # still written, so abnormal exits leave a usable partial trace.
        out = args.out or ("trace.json" if args.format == "chrome" else "trace.jsonl")
        partial = out + ".partial.jsonl"
        written = recorder.write_jsonl(partial)
        print(
            f"run failed ({type(exc).__name__}); "
            f"{written} events flushed to {partial}",
            file=sys.stderr,
        )
        if isinstance(exc, KeyboardInterrupt):
            return 130
        raise
    print(f"policy {args.policy}: {args.subframes} subframes, "
          f"{result.tasks_executed} tasks")
    if args.format == "chrome":
        from .obs import gating_events_from_active_workers

        out = args.out or "trace.json"
        machine = result.machine
        gating = gating_events_from_active_workers(
            result.active_workers, machine.subframe_period_cycles
        )
        written = write_chrome_trace(
            out,
            recorder.events,
            clock="cycles",
            clock_hz=machine.clock_hz,
            extra=gating,
            metadata={"policy": args.policy, "subframes": args.subframes},
        )
        print(f"{written} Chrome trace events written to {out} "
              f"({recorder.dropped} dropped by ring buffer); "
              f"load in Perfetto or chrome://tracing")
    else:
        out = args.out or "trace.jsonl"
        written = recorder.write_jsonl(out)
        print(f"{written} events written to {out} "
              f"({recorder.dropped} dropped by ring buffer)")
    counts = ", ".join(f"{k}={v}" for k, v in sorted(recorder.counts().items()))
    print(f"event counts: {counts}")
    print(checker.summary())
    return 0 if checker.ok else 1


def cmd_metrics(args) -> int:
    import json

    from .experiments import format_metrics
    from .obs import MetricsCollector

    fmt = args.format or ("json" if args.json else "text")
    collector = MetricsCollector()
    _run_observed_sim(args, [collector])
    if fmt == "json":
        print(json.dumps(collector.registry.summary(), indent=2))
    elif fmt == "prometheus":
        from .obs import render_prometheus

        print(render_prometheus(collector.registry), end="")
    else:
        print(format_metrics(collector.registry))
    return 0


def cmd_top(args) -> int:
    import time

    from .obs import SLOEngine, TelemetryCollector, render_dashboard

    if args.from_path is not None:
        from .obs.dashboard import TraceTailer

        engine = SLOEngine(TelemetryCollector())
        try:
            # Binary mode: a live writer can leave a partial multi-byte
            # UTF-8 sequence at EOF, which a text-mode read() would
            # raise on; the tailer buffers partial lines as bytes.
            with open(args.from_path, "rb") as fh:
                tailer = TraceTailer(fh, engine)
                tailer.advance()
                if args.follow and not args.once:
                    try:
                        while True:
                            print("\x1b[H\x1b[2J", end="")
                            print(
                                render_dashboard(
                                    tailer.snapshot(),
                                    tailer.slo_report(),
                                    width=args.width,
                                    title=f"repro top · {args.from_path}",
                                )
                            )
                            time.sleep(max(0.05, args.interval))
                            tailer.advance()
                    except KeyboardInterrupt:
                        print()
                        return 130
        except OSError as exc:
            print(f"cannot read {args.from_path}: {exc}", file=sys.stderr)
            return 2
        print(
            render_dashboard(
                tailer.snapshot(),
                tailer.slo_report(),
                width=args.width,
                title=f"repro top · {args.from_path}",
            )
        )
        print(
            f"{tailer.records} events replayed"
            + (f", {tailer.skipped} skipped" if tailer.skipped else "")
        )
        return 0

    engine = SLOEngine(TelemetryCollector())
    observers = [engine]
    if not args.once:
        # Live mode: piggyback a throttled re-render on the event stream.
        last_render = [0.0]

        def live_render(event) -> None:
            now = time.monotonic()
            if now - last_render[0] >= max(0.05, args.interval):
                last_render[0] = now
                print("\x1b[H\x1b[2J", end="")
                print(
                    render_dashboard(
                        engine.telemetry.snapshot(),
                        engine.slo_report(),
                        width=args.width,
                    )
                )

        observers.append(live_render)
    try:
        _run_observed_sim(args, observers)
    except KeyboardInterrupt:
        print()
        return 130
    if not args.once:
        print("\x1b[H\x1b[2J", end="")
    print(
        render_dashboard(
            engine.telemetry.snapshot(),
            engine.slo_report(),
            width=args.width,
        )
    )
    return 0


def cmd_bench(args) -> int:
    from .faults import hang_guard

    with hang_guard(args.timeout):
        try:
            return _bench_impl(args)
        except KeyboardInterrupt:
            print("\ninterrupted — no report written", file=sys.stderr)
            return 130


def _bench_impl(args) -> int:
    import json

    from .bench import (
        compare_reports,
        default_report_path,
        new_scenario_rows,
        run_bench,
        validate_bench_report,
        write_bench_report,
    )

    if args.history is not None:
        from .bench import find_history_regressions, format_history, history_table, load_history

        reports = load_history(args.history)
        if not reports:
            print(f"no BENCH_*.json snapshots under {args.history}")
            return 2
        history = history_table(reports, threshold=args.threshold)
        if args.json:
            print(json.dumps(history, indent=2))
        else:
            print(format_history(history))
        return 1 if find_history_regressions(history) else 0

    baseline = None
    if args.compare is not None:
        try:
            with open(args.compare, "r", encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.compare}: {exc}")
            return 2
        issues = validate_bench_report(baseline)
        if issues:
            for issue in issues:
                print(f"baseline invalid: {issue}")
            return 2

    scenarios = tuple(args.scenario) if args.scenario else None
    report = run_bench(
        scale=args.scale,
        seed=args.seed,
        scenarios=scenarios,
        include_overhead=not args.no_overhead,
    )
    issues = validate_bench_report(report)
    if issues:
        for issue in issues:
            print(f"report invalid: {issue}")
        return 2

    out = args.out or default_report_path()
    write_bench_report(report, out)
    print(f"bench scale={args.scale} seed={args.seed} rev={report['revision']}")
    for name, scenario in report["scenarios"].items():
        line = (f"  {name:>12}: {scenario['throughput_sf_per_s']:9.1f} sf/s "
                f"({scenario['wall_s']:.3f} s wall)")
        det = scenario.get("deterministic")
        if det:
            line += f", deadline-miss {det['deadline_miss_rate'] * 100:.1f}%"
        top = max(
            scenario["kernel_breakdown"].items(),
            key=lambda kv: kv[1]["share"],
            default=None,
        )
        if top:
            line += f", top kernel {top[0]} ({top[1]['share'] * 100:.0f}%)"
        print(line)
    if report.get("obs_overhead_pct") is not None:
        print(f"  observability overhead: {report['obs_overhead_pct']:.1f}%")
    if report.get("fault_overhead_pct") is not None:
        print(f"  resilience (zero-fault) overhead: "
              f"{report['fault_overhead_pct']:.1f}%")
    if report.get("supervision_overhead_pct") is not None:
        print(f"  supervision (zero-death) overhead: "
              f"{report['supervision_overhead_pct']:.1f}%")
    print(f"report written to {out}")

    if baseline is not None:
        # Candidate-only rows are reported, not silently skipped: a
        # freshly-added backend shows up as "new" until the baseline is
        # regenerated (informational, never a regression).
        for name in new_scenario_rows(baseline, report):
            print(f"  scenario {name}: new (absent from baseline, not compared)")
        regressions = compare_reports(
            baseline,
            report,
            threshold=args.threshold,
            det_threshold=args.det_threshold,
            deterministic_only=args.deterministic_only,
        )
        if regressions:
            print(f"REGRESSION vs {args.compare}:")
            for problem in regressions:
                print(f"  {problem}")
            return 1
        print(f"no regression vs {args.compare}")
    return 0


def cmd_report(args) -> int:
    import json

    from .experiments import run_full_reproduction, write_report

    report = run_full_reproduction(num_subframes=args.subframes, seed=args.seed)
    path = write_report(report, args.output)
    print(json.dumps(report["shape_checks"], indent=2))
    print(f"full report written to {path}")
    return 0 if all(report["shape_checks"].values()) else 1


def cmd_chaos(args) -> int:
    import json

    from .faults import hang_guard
    from .faults import chaos

    backends = ("sim", "threaded") if args.backend == "all" else (args.backend,)
    with hang_guard(args.timeout):
        try:
            progress = None if args.json else print
            if progress:
                matrix = chaos.build_matrix(
                    scale=args.scale, seeds=args.seeds, backends=backends
                )
                print(
                    f"chaos campaign: {len(matrix)} scenarios "
                    f"(scale={args.scale}, seeds={args.seeds}, "
                    f"backends={','.join(backends)})"
                )
            report = chaos.run_campaign(
                scale=args.scale,
                seeds=args.seeds,
                backends=backends,
                progress=progress,
            )
        except KeyboardInterrupt:
            print("\ninterrupted — campaign abandoned", file=sys.stderr)
            return 130
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print()
        print(report.format())
    return 0 if report.passed else 1


def cmd_serve(args) -> int:
    import json

    from .faults import hang_guard
    from .serve import ServeConfig, serve, validate_serve_report

    config = ServeConfig(
        cells=args.cells,
        subframes=args.subframes,
        delta_s=args.delta,
        arrival=args.arrival,
        rate=args.rate,
        daily_users=args.daily_users,
        subframes_per_hour=args.subframes_per_hour,
        burst_size=args.burst_size,
        burst_period=args.burst_period,
        burst_window=args.burst_window,
        mix=args.mix,
        max_users=args.users,
        backend=args.backend,
        workers=args.workers,
        queue_depth=args.queue_depth,
        backpressure=args.backpressure,
        pace=not args.no_pace,
        synthesize=args.synthesize,
        max_activity=args.max_activity,
        seed=args.seed,
        faults=args.faults,
        trace_path=args.trace,
        keep_results=False,
        adaptive=args.adaptive,
        respawn=args.respawn,
        checkpoint_path=args.checkpoint,
        checkpoint_every_s=args.checkpoint_every,
        resume_path=args.resume,
        max_wall_s=args.max_wall,
    )
    with hang_guard(args.timeout):
        try:
            result = serve(config)
        except KeyboardInterrupt:
            print("\ninterrupted — cells shut down cleanly", file=sys.stderr)
            return 130
        except ValueError as exc:
            # Config rejection or a non-resumable checkpoint: exit 2,
            # the CLI's configuration-error convention.
            print(f"serve: {exc}", file=sys.stderr)
            return 2
    report = result.report
    problems = validate_serve_report(report)
    if args.json_out:
        from .ioutil import atomic_write_json

        atomic_write_json(args.json_out, report)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        counts = report["terminal_counts"]
        print(
            f"served {report['cells']} cells x "
            f"{report['subframes_per_cell']} subframes "
            f"({report['arrival']} arrivals, {report['backend']} backend"
            f"{', paced' if report['paced'] else ', unpaced'}) "
            f"in {report['wall_s']:.3f} s"
        )
        print(
            f"  {report['dispatched']} dispatched: "
            + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
        print(
            f"  users: offered {report['offered_users']}, admitted "
            f"{report['admitted_users']}, shed {report['shed_users']}, "
            f"served {report['served_users']} "
            f"({report['users_per_hour']:,.0f}/hour)"
        )
        print(
            f"  backpressure hits {report['backpressure_hits']}, "
            f"throughput {report['throughput_sf_per_s']:.1f} sf/s, "
            f"ledger {'OK' if report['ledger_ok'] else 'BROKEN'}"
        )
        if args.faults:
            print(
                "  chaos: shedding "
                + (
                    "engaged"
                    if report["faults"]["shedding_engaged"]
                    else "NOT ENGAGED"
                )
                + f", {report['faults']['faults_seen']} fault(s) fired"
            )
        supervisor = report["supervisor"]
        if supervisor.get("enabled"):
            print(
                f"  supervisor: {supervisor['deaths']} death(s), "
                f"{supervisor['respawns']} respawn(s)"
                + (", FAIL-STOP" if supervisor["fail_stop"] else "")
            )
        adaptive = report["adaptive"]
        if adaptive.get("enabled"):
            print(
                f"  adaptive: load_factor {adaptive['load_factor']:.3f}, "
                f"{adaptive['degrades']} degrade(s), "
                f"{adaptive['recovers']} recover(s)"
            )
        ckpt = report["checkpoint"]
        if ckpt.get("enabled"):
            print(
                f"  checkpoint: segment {ckpt['segments']}, "
                f"{ckpt['writes']} write(s), "
                + ("complete" if ckpt["completed"] else "resumable")
            )
        if report["max_wall"]["hit"]:
            print(
                f"  max-wall: guard tripped at "
                f"{report['max_wall']['limit_s']}s — exiting 124",
                file=sys.stderr,
            )
        for line in result.errors:
            print(f"  error: {line}", file=sys.stderr)
        for line in problems:
            print(f"  report schema: {line}", file=sys.stderr)
    failed = (
        not report["ledger_ok"]
        or bool(problems)
        or bool(result.errors)
        or (args.faults and not report["faults"]["shedding_engaged"])
    )
    if failed:
        return 1
    if report["max_wall"]["hit"]:
        # timeout(1)'s convention: the guard tripped, the run is clean
        # but incomplete (and resumable when --checkpoint was set).
        return 124
    return 0


def cmd_lint(args) -> int:
    from .analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "run": cmd_run,
    "workload": cmd_workload,
    "calibrate": cmd_calibrate,
    "estimate": cmd_estimate,
    "power-study": cmd_power_study,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "top": cmd_top,
    "serve": cmd_serve,
    "bench": cmd_bench,
    "report": cmd_report,
    "lint": cmd_lint,
    "chaos": cmd_chaos,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
