"""Command-line interface: ``python -m repro <command>``.

Commands mirror the benchmark binary and the evaluation drivers:

``quickstart``
    Decode one synthesized subframe serially and on the thread runtime,
    verify both agree (Section IV-D).
``workload``
    Print the Figs. 7-9 workload-trace summary of the randomized model.
``calibrate``
    Run the Fig. 11 steady-state calibration and print the k_LM table.
``estimate``
    Run the Fig. 12 estimated-vs-measured comparison (with an ASCII plot).
``power-study``
    Run the Section VI study and print Tables I and II (with an ASCII
    rendering of Fig. 16).
``trace``
    Run the simulator with structured event tracing and the invariant
    checker attached; export the event stream as JSONL.
``metrics``
    Run the simulator with the metrics collector attached and print the
    scheduler-metrics summary (counters, gauges, histograms).
``lint``
    Run the project's AST-based static analyzers (lock discipline,
    sim determinism, obs schema consistency — see
    ``docs/static_analysis.md``) over the given paths.
"""

from __future__ import annotations

import argparse
import sys


def _add_scale(parser: argparse.ArgumentParser, default: int) -> None:
    parser.add_argument(
        "--subframes",
        type=int,
        default=default,
        help=f"evaluation length in subframes (default {default}; paper: 68000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LTE Uplink Receiver PHY benchmark & power-management reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="decode one subframe, verify runtimes")
    quick.add_argument("--workers", type=int, default=4)
    quick.add_argument("--seed", type=int, default=42)

    workload = sub.add_parser("workload", help="Figs. 7-9 workload summary")
    _add_scale(workload, 6_800)
    workload.add_argument("--stride", type=int, default=25)

    calibrate = sub.add_parser("calibrate", help="Fig. 11 k_LM calibration")
    calibrate.add_argument(
        "--points", type=int, default=5, help="PRB sweep points per configuration"
    )

    estimate = sub.add_parser("estimate", help="Fig. 12 estimated vs measured")
    _add_scale(estimate, 2_000)

    study = sub.add_parser("power-study", help="Tables I-II, Figs. 13-16")
    _add_scale(study, 2_000)

    def _add_obs_run(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--policy",
            choices=["nonap", "idle", "nap", "nap+idle"],
            default="nap+idle",
            help="power-management policy to simulate (default nap+idle)",
        )
        subparser.add_argument(
            "--workers", type=int, default=8, help="worker core count"
        )

    trace = sub.add_parser(
        "trace", help="simulate with event tracing on, export JSONL"
    )
    _add_scale(trace, 100)
    _add_obs_run(trace)
    trace.add_argument(
        "--out", default="trace.jsonl", help="output JSONL path"
    )
    trace.add_argument(
        "--ring",
        type=int,
        default=None,
        help="ring-buffer capacity (default: keep every event)",
    )

    metrics = sub.add_parser(
        "metrics", help="simulate with metrics collection on, print summary"
    )
    _add_scale(metrics, 100)
    _add_obs_run(metrics)
    metrics.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    report = sub.add_parser(
        "report", help="run every experiment, emit a JSON paper-vs-measured report"
    )
    _add_scale(report, 2_000)
    report.add_argument(
        "--output", default="reproduction_report.json", help="output JSON path"
    )

    lint = sub.add_parser(
        "lint", help="run the repro static analyzers (REP* rules)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default text)",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of accepted findings to filter out",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def cmd_quickstart(args) -> int:
    import numpy as np

    from .phy import Modulation
    from .sched import ThreadedRuntime
    from .uplink import (
        SubframeFactory,
        UserParameters,
        process_subframe_serial,
        verify_against_serial,
    )

    users = [
        UserParameters(0, 8, 1, Modulation.QPSK),
        UserParameters(1, 16, 2, Modulation.QAM16),
    ]
    subframe = SubframeFactory(seed=args.seed).synthesize(users, 0)
    serial = process_subframe_serial(subframe)
    for result in serial.user_results:
        expected = subframe.expected_payloads[result.user_id]
        print(
            f"user {result.user_id}: CRC {'OK' if result.crc_ok else 'FAIL'}, "
            f"{expected.size} bits, errors "
            f"{int(np.count_nonzero(result.payload != expected))}"
        )
    parallel = ThreadedRuntime(num_workers=args.workers).run([subframe])
    report = verify_against_serial([serial], parallel)
    print(report)
    return 0 if report.passed else 1


def cmd_workload(args) -> int:
    from .experiments import collect_workload_trace, format_workload_summary
    from .uplink import RandomizedParameterModel

    model = RandomizedParameterModel(total_subframes=args.subframes, seed=args.seed)
    trace = collect_workload_trace(model, stride=args.stride)
    print(format_workload_summary(trace))
    return 0


def cmd_calibrate(args) -> int:
    import numpy as np

    from .experiments import format_calibration
    from .power import calibrate_from_simulation
    from .sim import CostModel

    prb_values = [int(p) for p in np.linspace(2, 200, max(2, args.points))]
    prb_values = sorted({p - p % 2 or 2 for p in prb_values})
    estimator, sweeps = calibrate_from_simulation(CostModel(), prb_values=prb_values)
    print(format_calibration(sweeps, estimator.slopes))
    return 0


def cmd_estimate(args) -> int:
    from .experiments import format_estimation, run_estimation_experiment
    from .experiments.asciiplot import render_series

    result = run_estimation_experiment(num_subframes=args.subframes, seed=args.seed)
    print(
        render_series(
            {
                "measured": (result.times_s, result.measured),
                "estimated": (result.times_s, result.estimated),
            },
            title="Fig. 12 — activity over time",
            y_min=0.0,
            y_max=1.0,
        )
    )
    print()
    print(format_estimation(result))
    return 0


def cmd_power_study(args) -> int:
    from .experiments import format_table1, format_table2, run_power_study
    from .experiments.asciiplot import render_series

    study = run_power_study(num_subframes=args.subframes, seed=args.seed)
    times = study.runs["NONAP"].power.times_s
    print(
        render_series(
            {
                "NONAP": (times, study.runs["NONAP"].power.total_w),
                "IDLE": (times, study.runs["IDLE"].power.total_w),
                "NAP+IDLE": (times, study.runs["NAP+IDLE"].power.total_w),
                "PowerGating": (times, study.gated_power_w),
            },
            title="Fig. 16 — power over time (W)",
        )
    )
    print()
    print(format_table1(study))
    print()
    print(format_table2(study))
    return 0


def _run_observed_sim(args, observers):
    """Shared driver for ``trace``/``metrics``: one observed simulator run."""
    from .power import calibrate_from_cost_model
    from .power.governor import make_policy
    from .sim import CostModel, MachineSpec
    from .sim.machine import MachineSimulator, SimConfig
    from .uplink import RandomizedParameterModel

    cost = CostModel(
        machine=MachineSpec(num_cores=args.workers + 2, num_workers=args.workers)
    )
    estimator = calibrate_from_cost_model(cost)
    policy = make_policy(args.policy.upper(), args.workers, estimator)
    model = RandomizedParameterModel(total_subframes=args.subframes, seed=args.seed)
    sim = MachineSimulator(
        cost,
        policy=policy,
        config=SimConfig(drain_margin_s=0.2),
        observers=observers,
    )
    return sim.run(model, num_subframes=args.subframes)


def cmd_trace(args) -> int:
    from .obs import EventRecorder, SchedulerInvariantChecker

    recorder = EventRecorder(capacity=args.ring)
    checker = SchedulerInvariantChecker(strict=False)
    result = _run_observed_sim(args, [recorder, checker])
    written = recorder.write_jsonl(args.out)
    counts = ", ".join(f"{k}={v}" for k, v in sorted(recorder.counts().items()))
    print(f"policy {args.policy}: {args.subframes} subframes, "
          f"{result.tasks_executed} tasks")
    print(f"{written} events written to {args.out} "
          f"({recorder.dropped} dropped by ring buffer)")
    print(f"event counts: {counts}")
    print(checker.summary())
    return 0 if checker.ok else 1


def cmd_metrics(args) -> int:
    import json

    from .experiments import format_metrics
    from .obs import MetricsCollector

    collector = MetricsCollector()
    _run_observed_sim(args, [collector])
    if args.json:
        print(json.dumps(collector.registry.summary(), indent=2))
    else:
        print(format_metrics(collector.registry))
    return 0


def cmd_report(args) -> int:
    import json

    from .experiments import run_full_reproduction, write_report

    report = run_full_reproduction(num_subframes=args.subframes, seed=args.seed)
    path = write_report(report, args.output)
    print(json.dumps(report["shape_checks"], indent=2))
    print(f"full report written to {path}")
    return 0 if all(report["shape_checks"].values()) else 1


def cmd_lint(args) -> int:
    from .analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "workload": cmd_workload,
    "calibrate": cmd_calibrate,
    "estimate": cmd_estimate,
    "power-study": cmd_power_study,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "report": cmd_report,
    "lint": cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
