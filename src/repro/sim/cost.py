"""Per-kernel cycle cost model for the TILEPro64-like timing simulator.

The paper measures *activity* — useful compute cycles over total cycles
(Eqs. 1-2) — on real hardware. We substitute an analytic cost model with
the properties the paper measures (Fig. 11):

* per-user compute cycles are **linear in the PRB count** for a fixed
  (layers, modulation) configuration;
* the slope grows with the layer count (channel estimation, antenna
  combining, and demapping all scale with layers; the combiner-weight
  solve adds a super-linear layer term);
* the slope grows with modulation order (soft demapping dominates the
  serial tail since turbo decoding is a pass-through).

The absolute scale is **calibrated** the same way the paper's numbers come
about: a single maximum user (200 PRBs, 4 layers, 64-QAM) saturates 62
workers at the observed one-subframe-per-5-ms rate, i.e. its cycles equal
(just under) ``62 × 5 ms × f_clk``.

Every task also carries a constant scheduling/locality overhead
(``task_overhead_cycles``) that is *not* proportional to PRBs — this is
what the paper's origin-through linear estimator (Eq. 3) cannot see, and
one source of its small estimation error (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..phy.params import Modulation
from ..uplink.tasks import (
    TaskDescriptor,
    describe_user_tasks,
    describe_user_tasks_batched,
)
from ..uplink.user import UserParameters

__all__ = ["MachineSpec", "CostModel", "DEFAULT_MACHINE"]


@dataclass(frozen=True)
class MachineSpec:
    """Static parameters of the simulated machine (TILEPro64-like).

    The paper dedicates one core to drivers and one to the maintenance
    thread, leaving 62 worker cores; at maximum workload it sustains one
    subframe per 5 ms.
    """

    num_cores: int = 64
    num_workers: int = 62
    clock_hz: float = 700e6
    subframe_period_s: float = 5e-3  # DELTA: dispatch interval
    base_power_w: float = 14.0

    def __post_init__(self) -> None:
        if not 1 <= self.num_workers <= self.num_cores:
            raise ValueError("num_workers must be in [1, num_cores]")
        if self.clock_hz <= 0 or self.subframe_period_s <= 0:
            raise ValueError("clock and subframe period must be positive")

    @property
    def subframe_period_cycles(self) -> int:
        """DELTA in clock cycles."""
        return int(round(self.subframe_period_s * self.clock_hz))

    @property
    def cycles_per_subframe_budget(self) -> int:
        """Total worker cycles available per dispatch interval."""
        return self.num_workers * self.subframe_period_cycles


DEFAULT_MACHINE = MachineSpec()

# Abstract per-PRB cost units per kernel (see module docstring). The
# absolute scale is fixed by calibration below. Proportions for the
# maximum user (200 PRB / 4 layers / 64-QAM): channel estimation ~11 %,
# combiner weights ~3 % (serial join), per-symbol combining+IFFT ~44 %,
# deinterleave/demap/CRC tail ~42 % (serial join; demapping is the only
# modulation-sensitive kernel because turbo decoding is a pass-through,
# which is why the modulation slope spread in Fig. 11 comes from here).
_U_CHEST_PER_PRB = 1200.0  # per (antenna × layer) task, both slots
_U_COMBINER_LA = 150.0  # per PRB × layer × antenna
_U_COMBINER_L3 = 60.0  # per PRB × layers³ (the per-subcarrier solve)
_U_SYMBOL_PER_PRB = 1800.0  # per (data symbol × layer) task
_U_DEINTERLEAVE = 100.0  # per PRB × data symbol × layer
_U_DEMAP = {
    Modulation.QPSK: 200.0,
    Modulation.QAM16: 600.0,
    Modulation.QAM64: 1500.0,
}
_U_PER_BIT = 40.0  # CRC + bit shuffling, per PRB × symbol × layer × bit

_DATA_SYMBOLS = 12


@dataclass
class CostModel:
    """Maps :class:`TaskDescriptor` work records to cycle costs.

    Parameters
    ----------
    machine:
        The machine whose budget calibrates the absolute scale.
    saturation_fraction:
        Fraction of the machine's per-subframe cycle budget consumed by the
        maximum single user (200 PRB / 4 layers / 64-QAM). Just under 1.0
        so the calibration point sits at ~100 % activity.
    task_overhead_cycles:
        Constant per-task cost (scheduling, cache warm-up, steal traffic).
    """

    machine: MachineSpec = field(default_factory=MachineSpec)
    saturation_fraction: float = 0.98
    task_overhead_cycles: int = 6_000
    #: Optional :class:`repro.sim.memory.CacheModel`; adds working-set
    #: overflow cycles on top of the calibrated per-PRB units.
    cache: object | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.saturation_fraction <= 1.0:
            raise ValueError("saturation_fraction must be in (0, 1]")
        if self.task_overhead_cycles < 0:
            raise ValueError("task_overhead_cycles must be >= 0")
        max_user = UserParameters(
            user_id=0, num_prb=200, layers=4, modulation=Modulation.QAM64
        )
        units = self._user_units(max_user.num_prb, 4, Modulation.QAM64, antennas=4)
        budget = self.saturation_fraction * self.machine.cycles_per_subframe_budget
        self._scale = budget / units

    # -------------------------------------------------------------- units
    @staticmethod
    def _chest_units(num_prb: int) -> float:
        return _U_CHEST_PER_PRB * num_prb

    @staticmethod
    def _combiner_units(num_prb: int, layers: int, antennas: int) -> float:
        return num_prb * (_U_COMBINER_LA * layers * antennas + _U_COMBINER_L3 * layers**3)

    @staticmethod
    def _symbol_units(num_prb: int) -> float:
        return _U_SYMBOL_PER_PRB * num_prb

    @staticmethod
    def _finalize_units(num_prb: int, layers: int, bits_per_symbol: int) -> float:
        modulation = {2: Modulation.QPSK, 4: Modulation.QAM16, 6: Modulation.QAM64}[
            bits_per_symbol
        ]
        per_symbol = _U_DEINTERLEAVE + _U_DEMAP[modulation] + _U_PER_BIT * bits_per_symbol
        return num_prb * _DATA_SYMBOLS * layers * per_symbol

    def _user_units(
        self, num_prb: int, layers: int, modulation: Modulation, antennas: int
    ) -> float:
        return (
            antennas * layers * self._chest_units(num_prb)
            + self._combiner_units(num_prb, layers, antennas)
            + _DATA_SYMBOLS * layers * self._symbol_units(num_prb)
            + self._finalize_units(num_prb, layers, modulation.bits_per_symbol)
        )

    # -------------------------------------------------------------- cycles
    def task_cycles(self, task: TaskDescriptor) -> int:
        """Cycle cost of one schedulable task.

        The ``*_batch`` kinds are the vectorized backend's fused stage
        tasks: each carries the compute units of the whole per-task stage
        fan-out but only one ``task_overhead_cycles`` — the overhead
        collapse is the modelled benefit of batching.
        """
        if task.kind == "chest":
            units = self._chest_units(task.num_prb)
        elif task.kind == "combiner":
            units = self._combiner_units(task.num_prb, task.layers, task.antennas)
        elif task.kind == "symbol":
            units = self._symbol_units(task.num_prb)
        elif task.kind == "finalize":
            units = self._finalize_units(
                task.num_prb, task.layers, task.bits_per_symbol
            )
        elif task.kind == "chest_batch":
            units = task.antennas * task.layers * self._chest_units(task.num_prb)
        elif task.kind == "combiner_batch":
            units = self._combiner_units(task.num_prb, task.layers, task.antennas)
        elif task.kind == "symbol_batch":
            units = _DATA_SYMBOLS * task.layers * self._symbol_units(task.num_prb)
        elif task.kind == "finalize_batch":
            units = self._finalize_units(
                task.num_prb, task.layers, task.bits_per_symbol
            )
        else:
            raise ValueError(f"unknown task kind {task.kind!r}")
        cycles = int(round(units * self._scale)) + self.task_overhead_cycles
        if self.cache is not None:
            cycles += self.cache.extra_cycles(task)
        return cycles

    def user_cycles(self, user: UserParameters, antennas: int = 4) -> int:
        """Total compute cycles of one user (all tasks + joins)."""
        chest, combiner, data, finalize = describe_user_tasks(user, antennas)
        total = sum(self.task_cycles(t) for t in chest)
        total += self.task_cycles(combiner)
        total += sum(self.task_cycles(t) for t in data)
        total += self.task_cycles(finalize)
        return total

    def user_cycles_batched(self, user: UserParameters, antennas: int = 4) -> int:
        """Total compute cycles of one user on the vectorized backend.

        Same stage work as :meth:`user_cycles`, but charged as four fused
        tasks, so the difference between the two is exactly
        ``(num_tasks - 4) * task_overhead_cycles`` (minus cache effects).
        """
        return sum(
            self.task_cycles(t) for t in describe_user_tasks_batched(user, antennas)
        )

    def user_activity(self, user: UserParameters, antennas: int = 4) -> float:
        """This user's share of the per-dispatch-interval cycle budget."""
        return self.user_cycles(user, antennas) / self.machine.cycles_per_subframe_budget

    def subframe_cycles(self, users: list[UserParameters], antennas: int = 4) -> int:
        """Total compute cycles of a whole subframe."""
        return sum(self.user_cycles(u, antennas) for u in users)
