"""Minimal discrete-event engine (time in clock cycles)."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable

__all__ = ["EventEngine"]


class EventEngine:
    """A heap-ordered event queue.

    Events are ``(time, callback)``; ties break in scheduling order so the
    simulation is fully deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[int], None]]] = []
        self._counter = count()
        self.now: int = 0

    def schedule(self, time: int, callback: Callable[[int], None]) -> None:
        """Schedule ``callback(time)`` at an absolute time (cycles)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def schedule_in(self, delay: int, callback: Callable[[int], None]) -> None:
        """Schedule ``callback`` after a relative delay (cycles)."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.schedule(self.now + delay, callback)

    def run_until(self, end_time: int) -> None:
        """Process events up to and including ``end_time``."""
        while self._heap and self._heap[0][0] <= end_time:
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback(time)
        self.now = max(self.now, end_time)

    def run_until_idle(self, hard_limit: int | None = None) -> None:
        """Process all events (optionally bounded by a hard time limit)."""
        while self._heap:
            if hard_limit is not None and self._heap[0][0] > hard_limit:
                self.now = hard_limit
                return
            time, _, callback = heapq.heappop(self._heap)
            self.now = time
            callback(time)

    @property
    def pending(self) -> int:
        return len(self._heap)
