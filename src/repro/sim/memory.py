"""Cache hierarchy model (Section V-B: 16 kB L1I, 8 kB L1D, 64 kB L2 per
core, forming a virtual 4 MB L3 across the mesh).

An analytic working-set model: each task touches a footprint proportional
to its data (complex samples of the user's allocation), and the part that
does not fit in the private caches streams from the distributed L3 /
memory at a per-line penalty. Like the NoC model this is opt-in: the
default cost model folds average memory behaviour into its per-PRB units,
and this module supports sensitivity studies on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.params import DATA_SYMBOLS_PER_SUBFRAME, SUBCARRIERS_PER_PRB
from ..uplink.tasks import TaskDescriptor

__all__ = ["CacheSpec", "CacheModel"]

_BYTES_PER_SAMPLE = 8  # complex64 in the C benchmark


@dataclass(frozen=True)
class CacheSpec:
    """Per-core cache sizes (TILEPro64 values)."""

    l1d_bytes: int = 8 * 1024
    l2_bytes: int = 64 * 1024
    line_bytes: int = 64
    #: Cycles to pull one line from the distributed L3 / next level.
    remote_line_cycles: int = 40

    def __post_init__(self) -> None:
        if min(self.l1d_bytes, self.l2_bytes, self.line_bytes) < 1:
            raise ValueError("cache sizes must be positive")
        if self.remote_line_cycles < 0:
            raise ValueError("remote_line_cycles must be >= 0")


class CacheModel:
    """Analytic extra-cycles model from task working sets."""

    def __init__(self, spec: CacheSpec | None = None) -> None:
        self.spec = spec or CacheSpec()

    def task_footprint_bytes(self, task: TaskDescriptor) -> int:
        """Approximate bytes a task reads + writes."""
        # Subcarriers of the allocation (frequency width, one slot).
        width = (task.num_prb // 2) * SUBCARRIERS_PER_PRB
        if task.kind == "chest":
            # One reference symbol per slot in, one estimate per slot out.
            samples = 2 * (2 * width)
        elif task.kind == "combiner":
            # All antenna-layer estimates in, weights out, both slots.
            samples = 2 * width * task.antennas * task.layers * 2
        elif task.kind == "symbol":
            # One SC-FDMA symbol across antennas in, one layer out.
            samples = width * (task.antennas + 1)
        elif task.kind == "finalize":
            # Every despread data symbol of every layer.
            samples = width * DATA_SYMBOLS_PER_SUBFRAME * task.layers * 2
        else:
            raise ValueError(f"unknown task kind {task.kind!r}")
        return samples * _BYTES_PER_SAMPLE

    def payload_lines(self, task: TaskDescriptor) -> int:
        """Cache lines of input data a thief must pull across the mesh."""
        return -(-self.task_footprint_bytes(task) // self.spec.line_bytes)

    def extra_cycles(self, task: TaskDescriptor) -> int:
        """Cycles spent missing past the private caches."""
        footprint = self.task_footprint_bytes(task)
        overflow = max(0, footprint - self.spec.l2_bytes)
        lines = -(-overflow // self.spec.line_bytes)
        return lines * self.spec.remote_line_cycles
