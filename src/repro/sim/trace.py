"""Per-window state-occupancy traces.

The paper's DAQ samples power and computes a 100 ms RMS; its activity plots
average over 1 s. The simulator mirrors this by binning every core-state
segment into fixed windows. Each window records, per core state, how many
core-cycles were spent in that state; the power model turns occupancies
into watts and the experiments turn COMPUTE occupancy into activity
(Eqs. 1-2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CoreState", "OccupancyTrace"]


class CoreState(enum.Enum):
    """What a worker core is doing at a point in simulated time."""

    COMPUTE = "compute"  # executing a task or a join continuation
    SPIN = "spin"  # busy-waiting, polling queues for work
    NAP = "nap"  # reactive clock-gated idle (periodic wake checks)
    DISABLED = "disabled"  # proactively napped by the NAP governor


@dataclass
class OccupancyTrace:
    """Accumulates core-state segments into fixed windows.

    Parameters
    ----------
    window_cycles:
        Window length in clock cycles (100 ms at the machine clock).
    num_windows:
        Total windows covering the simulated horizon.
    num_workers:
        Worker count; used to convert occupancy into activity.
    """

    window_cycles: int
    num_windows: int
    num_workers: int
    _bins: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.window_cycles < 1 or self.num_windows < 1 or self.num_workers < 1:
            raise ValueError("window_cycles, num_windows, num_workers must be >= 1")
        self._bins = np.zeros((len(CoreState), self.num_windows), dtype=np.float64)

    def add_segment(self, state: CoreState, start: int, end: int) -> None:
        """Record that one core was in ``state`` during [start, end) cycles."""
        if end < start:
            raise ValueError("segment must not end before it starts")
        horizon = self.window_cycles * self.num_windows
        start = min(start, horizon)
        end = min(end, horizon)
        # Re-check emptiness *after* clamping: a segment lying entirely
        # at/past the horizon collapses to start == end == horizon, and
        # falling through would index window ``num_windows`` (one past the
        # last) in the single-window branch below.
        if end <= start:
            return
        row = list(CoreState).index(state)
        first = start // self.window_cycles
        last = (end - 1) // self.window_cycles
        if first == last:
            self._bins[row, first] += end - start
            return
        # Split across windows.
        self._bins[row, first] += (first + 1) * self.window_cycles - start
        if last > first + 1:
            self._bins[row, first + 1 : last] += self.window_cycles
        self._bins[row, last] += end - last * self.window_cycles

    # ------------------------------------------------------------- queries
    def occupancy_cycles(self, state: CoreState) -> np.ndarray:
        """Per-window core-cycles spent in ``state``."""
        return self._bins[list(CoreState).index(state)].copy()

    def occupancy_fraction(self, state: CoreState) -> np.ndarray:
        """Per-window occupancy as a fraction of all worker cycles."""
        return self.occupancy_cycles(state) / (self.window_cycles * self.num_workers)

    def activity(self) -> np.ndarray:
        """Eq. 2: compute cycles over total worker cycles, per window."""
        return self.occupancy_fraction(CoreState.COMPUTE)

    def total_cycles(self, state: CoreState) -> float:
        return float(self.occupancy_cycles(state).sum())

    def window_times_s(self, clock_hz: float) -> np.ndarray:
        """Window-center timestamps in seconds."""
        centers = (np.arange(self.num_windows) + 0.5) * self.window_cycles
        return centers / clock_hz

    def check_conservation(self, atol_cycles: float = 1.0) -> bool:
        """True when every window's occupancies sum to the worker budget.

        Only meaningful after a run that covered the whole horizon.
        """
        per_window = self._bins.sum(axis=0)
        budget = self.window_cycles * self.num_workers
        return bool(np.all(np.abs(per_window - budget) <= atol_cycles))
