"""On-chip mesh network model (Section V-B: the TILEPro64's 64 cores "are
connected through an on-chip mesh network").

Work stealing is not free on a mesh: a steal crosses the network to the
victim's queue and the task's input data crosses back. This module models
an 8x8 mesh with dimension-ordered (XY) routing and charges stolen tasks a
distance-dependent latency. It is optional — the baseline cost model folds
average steal cost into the per-task constant — and exists to support the
locality ablation (random vs. nearest-neighbour victim selection).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MeshTopology", "NocModel"]


@dataclass(frozen=True)
class MeshTopology:
    """An R x C mesh of cores with XY routing."""

    rows: int = 8
    cols: int = 8

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("rows and cols must be >= 1")

    @property
    def num_cores(self) -> int:
        return self.rows * self.cols

    def coordinates(self, core: int) -> tuple[int, int]:
        """(x, y) position of a core index (row-major)."""
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} outside the {self.rows}x{self.cols} mesh")
        return core % self.cols, core // self.cols

    def hops(self, src: int, dst: int) -> int:
        """XY-routed hop count between two cores."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def neighbours_by_distance(self, core: int) -> list[int]:
        """All other cores ordered by hop distance (then index)."""
        others = [c for c in range((self.num_cores)) if c != core]
        return sorted(others, key=lambda c: (self.hops(core, c), c))


@dataclass(frozen=True)
class NocModel:
    """Cycle costs of crossing the mesh.

    ``steal_base_cycles`` covers the queue CAS and bookkeeping;
    ``cycles_per_hop`` is the per-hop request latency; task input data
    (``payload_lines`` cache lines) streams back at ``cycles_per_line_hop``
    per line per hop.
    """

    topology: MeshTopology = MeshTopology()
    steal_base_cycles: int = 100
    cycles_per_hop: int = 2
    cycles_per_line_hop: float = 0.5

    def __post_init__(self) -> None:
        if self.steal_base_cycles < 0 or self.cycles_per_hop < 0:
            raise ValueError("cycle costs must be >= 0")
        if self.cycles_per_line_hop < 0:
            raise ValueError("cycles_per_line_hop must be >= 0")

    def steal_penalty(self, thief: int, victim: int, payload_lines: int = 0) -> int:
        """Extra cycles a stolen task costs the thief."""
        if payload_lines < 0:
            raise ValueError("payload_lines must be >= 0")
        hops = self.topology.hops(thief, victim)
        transfer = self.cycles_per_line_hop * payload_lines * hops
        # Request goes out, response comes back: 2x the one-way latency.
        return int(round(self.steal_base_cycles + 2 * hops * self.cycles_per_hop + transfer))
