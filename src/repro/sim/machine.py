"""Discrete-event simulation of the benchmark on a TILEPro64-like machine.

Substitutes for the paper's hardware platform (Section V-B): ``num_workers``
cores execute the Fig. 5 task graph under work stealing, a maintenance
"thread" dispatches one subframe's users every DELTA onto the global user
queue, and a pluggable policy decides how many workers are proactively
napped (NAP) and whether idle workers nap reactively (IDLE).

The simulation is at task granularity: each task's duration comes from the
calibrated :class:`~repro.sim.cost.CostModel`; queue/steal overheads are
folded into the per-task constant. Cores move between four states —
COMPUTE, SPIN (busy-wait polling), NAP (reactive clock-gated idle with
periodic wake checks), DISABLED (proactively napped by the governor) — and
every state segment is binned into 100 ms windows for the power model.

Scheduling fidelity vs. the Pthreads version (Section IV-C):

* an idle worker checks the global user queue before stealing;
* the worker that dequeues a user becomes its *user thread*: it runs that
  user's combiner-weight and finalize joins, processes its own job's tasks
  first, and helps (steals) elsewhere while waiting for stolen results;
* other workers steal individual channel-estimation / symbol tasks.

Periodic nap wake-checks are not simulated as events (that would be ~20 M
events per run); instead a napping core is woken *at its next periodic
boundary* when work exists for it, and the wake-check energy overhead is
charged analytically by the power model from NAP occupancy.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..faults.accounting import TerminalState
from ..faults.plan import FaultKind, FaultSpec
from ..faults.watchdog import ResilienceConfig
from ..obs.events import Event, EventKind
from ..uplink.parameter_model import ParameterModel
from ..uplink.tasks import describe_user_tasks
from ..uplink.user import UserParameters
from .cost import CostModel, MachineSpec
from .engine import EventEngine
from .trace import CoreState, OccupancyTrace

__all__ = ["SimConfig", "AlwaysOnPolicy", "SimResult", "MachineSimulator"]


@dataclass(frozen=True)
class SimConfig:
    """Simulator tuning knobs.

    ``wake_period_s`` is how often a napping core wakes to look for work
    (the TILEPro64 nap instruction has no external wake-up, Section V-B);
    ``wake_check_cycles`` is what one check costs; ``window_s`` is the
    trace/power window (the paper's 100 ms RMS).
    """

    wake_period_s: float = 1e-3
    wake_check_cycles: int = 500
    window_s: float = 0.1
    drain_margin_s: float = 0.5

    def __post_init__(self) -> None:
        if self.wake_period_s <= 0 or self.window_s <= 0:
            raise ValueError("wake_period_s and window_s must be positive")
        if self.wake_check_cycles < 0 or self.drain_margin_s < 0:
            raise ValueError("wake_check_cycles/drain_margin_s must be >= 0")


class AlwaysOnPolicy:
    """The NONAP/IDLE family: every worker is always available.

    ``reactive_nap`` distinguishes NONAP (False: idle workers busy-spin)
    from IDLE (True: idle workers nap and wake periodically).
    """

    def __init__(self, num_workers: int, reactive_nap: bool = False) -> None:
        self.num_workers = num_workers
        self.reactive_nap = reactive_nap

    def target_active_workers(
        self, users: list[UserParameters], subframe_index: int
    ) -> int:
        return self.num_workers


class _Job:
    """One user's in-flight task graph."""

    __slots__ = (
        "user",
        "subframe_index",
        "stages",
        "stage_index",
        "ready",
        "outstanding",
        "user_core",
        "continuation_pending",
        "steal_lines",
        "stage_opened_at",
        "stage_kind",
        "cancelled",
    )

    def __init__(
        self,
        user: UserParameters,
        subframe_index: int,
        cost: CostModel,
        antennas: int,
        cache=None,
        slot_pipelined: bool = False,
    ):
        chest, combiner, data, finalize = describe_user_tasks(user, antennas)
        self.user = user
        self.subframe_index = subframe_index
        chest_cycles = [cost.task_cycles(t) for t in chest]
        combiner_cycles = cost.task_cycles(combiner)
        symbol_cycles = [cost.task_cycles(t) for t in data]
        finalize_cycles = cost.task_cycles(finalize)
        chest_lines = cache.payload_lines(chest[0]) if cache is not None else 0
        data_lines = cache.payload_lines(data[0]) if cache is not None else 0
        # The stage program: ("par", [task cycles...], steal lines, kernel)
        # fans out to thieves; ("ser", cycles, kernel) runs on the user
        # thread. The trailing kernel name (one of
        # :data:`repro.uplink.tasks.KERNEL_KINDS`) labels the stage's
        # task events for the profiling layer. The default is the paper's
        # whole-subframe sequence; slot-pipelined splits channel
        # estimation / combining / demodulation per slot.
        if not slot_pipelined:
            self.stages: list[tuple] = [
                ("par", chest_cycles, chest_lines, "chest"),
                ("ser", combiner_cycles, "combiner"),
                ("par", symbol_cycles, data_lines, "symbol"),
                ("ser", finalize_cycles, "finalize"),
            ]
        else:
            half_comb = combiner_cycles // 2
            half_data = len(symbol_cycles) // 2
            self.stages = [
                ("par", [c // 2 for c in chest_cycles], chest_lines, "chest"),
                ("ser", half_comb, "combiner"),
                ("par", symbol_cycles[:half_data], data_lines, "symbol"),
                ("par", [c - c // 2 for c in chest_cycles], chest_lines, "chest"),
                ("ser", combiner_cycles - half_comb, "combiner"),
                ("par", symbol_cycles[half_data:], data_lines, "symbol"),
                ("ser", finalize_cycles, "finalize"),
            ]
        self.stage_index = -1
        self.stage_kind = ""
        # Owner pops from the right (LIFO), thieves pop from the left
        # (FIFO) — a deque keeps both ends O(1) on the hot steal path.
        self.ready: deque[int] = deque()
        self.steal_lines = 0
        self.outstanding = 0
        self.user_core: "_Core | None" = None
        self.continuation_pending = False
        self.stage_opened_at = 0
        # Set when the job is voided (core crash retry, deadline abort):
        # in-flight tasks of a cancelled job finish without advancing it.
        self.cancelled = False


class _Core:
    """One simulated worker core."""

    __slots__ = (
        "index",
        "state",
        "state_since",
        "job",
        "wake_scheduled",
        "busy",
        "crashed",
        "slow_factor",
        "epoch",
        "running",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = CoreState.SPIN
        self.state_since = 0
        self.job: _Job | None = None
        self.wake_scheduled = False
        self.busy = False
        # --- fault-injection state (repro.faults) ---
        # A crashed core reuses the DISABLED occupancy (the power model
        # sees a powered-down core) but can never be re-enabled.
        self.crashed = False
        self.slow_factor = 1.0
        # Bumped on crash so the in-flight task's scheduled finish
        # callback (already in the event heap) knows it went stale.
        self.epoch = 0
        # (job, cycles) of the task currently executing, for crash
        # accounting; None when idle or stalling.
        self.running: tuple[_Job, int] | None = None


@dataclass
class SimResult:
    """Everything one simulated run produced."""

    trace: OccupancyTrace
    machine: MachineSpec
    config: SimConfig
    #: Governor decision per subframe (actual worker cap in force).
    active_workers: np.ndarray
    #: Dispatch-to-last-user-completion latency per subframe, seconds.
    subframe_latency_s: np.ndarray
    #: Per-subframe total compute cycles (from the cost model).
    subframe_cycles: np.ndarray
    tasks_executed: int
    steals: int
    users_processed: int
    #: Terminal state per subframe index ("ok" | "crc_failed" | "shed" |
    #: "aborted"); every dispatched subframe appears exactly once.
    terminal_states: dict[int, str] = field(default_factory=dict)
    #: Injected faults that actually applied, in firing order.
    faults_applied: list[dict] = field(default_factory=list)
    shed_users: int = 0
    aborted_users: int = 0
    retried_users: int = 0

    def terminal_counts(self) -> dict[str, int]:
        """Histogram over the four terminal states (all keys present)."""
        out = {state.value: 0 for state in TerminalState}
        for state in self.terminal_states.values():
            out[state] += 1
        return out

    @property
    def activity(self) -> np.ndarray:
        """Per-window measured activity (Eq. 2)."""
        return self.trace.activity()

    def mean_activity(self) -> float:
        return float(self.activity.mean())


class MachineSimulator:
    """Runs a parameter model through the simulated machine.

    Parameters
    ----------
    cost:
        Calibrated cycle cost model (also supplies the machine spec).
    policy:
        Resource-management policy: must expose ``reactive_nap`` and
        ``target_active_workers(users, subframe_index)``.
    config:
        Simulator knobs.
    observers:
        Optional event observers (see :mod:`repro.obs`): callables
        receiving every :class:`~repro.obs.events.Event`, with optional
        ``on_run_start(sim)`` / ``on_run_end(sim, result)`` hooks. When no
        observer is attached the tracing hook is ``None`` and emission
        sites cost a single identity check (no event allocation). Setting
        the ``REPRO_INVARIANTS`` environment variable auto-attaches a
        strict :class:`~repro.obs.invariants.SchedulerInvariantChecker`.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`. Its simulator
        kinds (core crash/stall/slowdown, overload) fire at their planned
        subframes, purely cycle-based — a faulted run is exactly as
        deterministic as a clean one.
    resilience:
        :class:`~repro.faults.watchdog.ResilienceConfig`. The simulator
        uses ``max_retries`` (per-user requeues after a core crash) and
        ``deadline_subframes`` (abort a subframe still pending after that
        many DELTA periods); the wall-clock knobs are threaded-only.
    admission:
        Optional :class:`~repro.faults.admission.AdmissionController`:
        sheds users at dispatch when the Eq. 4 estimate exceeds the
        activity budget (see ``docs/robustness.md``).
    ledger:
        Optional :class:`~repro.faults.accounting.SubframeLedger`
        mirroring the run's terminal accounting for external checking.
    """

    def __init__(
        self,
        cost: CostModel,
        policy=None,
        config: SimConfig | None = None,
        noc=None,
        cache=None,
        slot_pipelined: bool = False,
        observers=None,
        faults=None,
        resilience: ResilienceConfig | None = None,
        admission=None,
        ledger=None,
    ) -> None:
        self.cost = cost
        self.machine = cost.machine
        self.policy = policy or AlwaysOnPolicy(self.machine.num_workers)
        self.config = config or SimConfig()
        #: Optional :class:`repro.sim.noc.NocModel`: charges stolen tasks a
        #: distance-dependent mesh latency (thief ↔ the job's user core).
        self.noc = noc
        #: Optional :class:`repro.sim.memory.CacheModel`: sizes the data a
        #: thief pulls across the mesh (only used together with ``noc``).
        self.cache = cache
        #: Split each user's processing per slot (chest/combine/demodulate
        #: slot 0, then slot 1) instead of the default whole-subframe
        #: stages — an ablation on the Fig. 5 structure.
        self.slot_pipelined = slot_pipelined
        #: Attached event observers (see :mod:`repro.obs`).
        self.observers = list(observers) if observers is not None else []
        self._emit = None
        self.faults = faults
        self.admission = admission
        self.ledger = ledger
        self._resilience = resilience or ResilienceConfig()

    def attach_observer(self, observer):
        """Attach an event observer for subsequent runs; returns it."""
        self.observers.append(observer)
        return observer

    # ------------------------------------------------------------------ run
    def run(
        self,
        model: ParameterModel,
        num_subframes: int,
        start: int = 0,
    ) -> SimResult:
        if num_subframes < 1:
            raise ValueError("num_subframes must be >= 1")
        machine = self.machine
        cfg = self.config
        clock = machine.clock_hz
        delta = machine.subframe_period_cycles
        window_cycles = int(round(cfg.window_s * clock))
        horizon = num_subframes * delta + int(round(cfg.drain_margin_s * clock))
        num_windows = max(1, -(-horizon // window_cycles))  # ceil: never truncate
        horizon = num_windows * window_cycles

        self._engine = EventEngine()
        self._trace = OccupancyTrace(
            window_cycles=window_cycles,
            num_windows=num_windows,
            num_workers=machine.num_workers,
        )
        self._cores = [_Core(i) for i in range(machine.num_workers)]
        self._user_queue: deque[_Job] = deque()
        self._jobs_with_ready: deque[_Job] = deque()
        self._idle_spin: set[int] = set(range(machine.num_workers))
        self._idle_nap: dict[int, int] = {}
        self._disabled: set[int] = set()
        self._active_workers = machine.num_workers
        self._wake_period_cycles = max(1, int(round(cfg.wake_period_s * clock)))
        self._horizon = horizon

        self._tasks_executed = 0
        self._steals = 0
        self._users_processed = 0
        self._active_trace = np.zeros(num_subframes, dtype=np.int64)
        self._dispatch_cycle = np.zeros(num_subframes, dtype=np.int64)
        self._complete_cycle = np.zeros(num_subframes, dtype=np.int64)
        self._pending_users = np.zeros(num_subframes, dtype=np.int64)
        self._subframe_cycles = np.zeros(num_subframes, dtype=np.float64)
        self._start_index = start
        self._num_subframes = num_subframes
        self._antennas = 4

        # --- fault-injection / resilience bookkeeping (repro.faults) ---
        self._sf_resolved: set[int] = set()
        self._sf_shed: set[int] = set()
        self._sf_user_aborted: set[int] = set()
        self._retry_counts: dict[tuple[int, int], int] = {}
        self._terminal_states: dict[int, str] = {}
        self._faults_applied: list[dict] = []
        self._shed_users = 0
        self._aborted_users = 0
        self._retried_users = 0
        self._overload: dict[int, float] = {}
        if self.faults is not None:
            for spec in self.faults.specs:
                if not 0 <= spec.subframe < num_subframes:
                    continue
                if spec.kind is FaultKind.OVERLOAD:
                    self._overload[spec.subframe] = spec.param
                elif spec.kind in (
                    FaultKind.CORE_STALL,
                    FaultKind.CORE_SLOWDOWN,
                ):
                    # Stalls and slowdowns fire before the subframe's
                    # dispatch (same timestamp, FIFO): they need the core
                    # still idle for the fault to take hold.
                    self._engine.schedule(
                        spec.subframe * delta, self._make_core_fault(spec)
                    )

        observers = self._resolve_observers()
        for observer in observers:
            hook = getattr(observer, "on_run_start", None)
            if hook is not None:
                hook(self)

        for i in range(num_subframes):
            users = model.uplink_parameters(start + i)
            when = i * delta
            self._engine.schedule(
                when, self._make_dispatch(i, users)
            )
        if self.faults is not None:
            # Crashes fire after the subframe's dispatch (same timestamp,
            # FIFO): the fail-stop model is only interesting when the dead
            # core can be holding that subframe's in-flight work.
            for spec in self.faults.specs:
                if (
                    spec.kind is FaultKind.CORE_CRASH
                    and 0 <= spec.subframe < num_subframes
                ):
                    self._engine.schedule(
                        spec.subframe * delta, self._make_core_fault(spec)
                    )
        # Every core looks for work once at t=0 so idle cores settle into
        # the policy's idle state (spin vs nap vs disabled) immediately.
        for core in self._cores:
            self._engine.schedule(0, self._make_initial_seek(core))
        self._engine.run_until_idle(hard_limit=horizon)
        # Subframes the horizon truncated (still pending at the end of the
        # simulated time) are accounted as aborted: no dispatched subframe
        # ever goes missing from the terminal ledger.
        for index in range(num_subframes):
            if index not in self._sf_resolved:
                self._resolve_subframe(
                    index,
                    horizon,
                    state=TerminalState.ABORTED,
                    reason="horizon truncation",
                )
        self._finalize_trace(horizon)

        latency = (self._complete_cycle - self._dispatch_cycle) / clock
        result = SimResult(
            trace=self._trace,
            machine=machine,
            config=cfg,
            active_workers=self._active_trace,
            subframe_latency_s=latency,
            subframe_cycles=self._subframe_cycles,
            tasks_executed=self._tasks_executed,
            steals=self._steals,
            users_processed=self._users_processed,
            terminal_states=dict(self._terminal_states),
            faults_applied=list(self._faults_applied),
            shed_users=self._shed_users,
            aborted_users=self._aborted_users,
            retried_users=self._retried_users,
        )
        for observer in observers:
            hook = getattr(observer, "on_run_end", None)
            if hook is not None:
                hook(self, result)
        return result

    def _resolve_observers(self) -> list:
        """Observers for this run; sets the (None-when-off) emit hook."""
        observers = list(self.observers)
        if os.environ.get("REPRO_INVARIANTS", "") not in ("", "0"):
            from ..obs.invariants import SchedulerInvariantChecker

            if not any(
                isinstance(o, SchedulerInvariantChecker) for o in observers
            ):
                observers.append(SchedulerInvariantChecker(strict=True))
        if not observers:
            self._emit = None
        elif len(observers) == 1:
            self._emit = observers[0]
        else:
            fanout = tuple(observers)

            def emit(event, _observers=fanout):
                for observer in _observers:
                    observer(event)

            self._emit = emit
        return observers

    # --------------------------------------------------------------- events
    def _make_dispatch(self, index: int, users: list[UserParameters]):
        def dispatch(t: int) -> None:
            admitted = list(users)
            if self.admission is not None:
                decision = self.admission.admit(
                    admitted, load_factor=self._overload.get(index)
                )
                admitted = list(decision.admitted)
                if decision.shed_any:
                    self._sf_shed.add(index)
                    self._shed_users += len(decision.shed)
                    if self._emit is not None:
                        self._emit(
                            Event(
                                EventKind.SHED,
                                t,
                                -1,
                                {
                                    "subframe": index,
                                    "users": len(decision.shed),
                                    "user_ids": list(decision.shed_user_ids),
                                    "estimated_activity": decision.estimated_activity,
                                    "budget_activity": decision.budget_activity,
                                },
                            )
                        )
            self._dispatch_cycle[index] = t
            self._complete_cycle[index] = t  # empty subframes: zero latency
            self._pending_users[index] = len(admitted)
            self._subframe_cycles[index] = sum(
                self.cost.user_cycles(u, self._antennas) for u in admitted
            )
            target = self.policy.target_active_workers(
                admitted, self._start_index + index
            )
            target = max(1, min(self.machine.num_workers, int(target)))
            self._active_trace[index] = target
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.GOVERNOR,
                        t,
                        -1,
                        {"subframe": index, "target": target},
                    )
                )
            self._set_active_workers(target, t)
            if self.ledger is not None:
                self.ledger.dispatch(self._start_index + index, len(admitted))
            for user in admitted:
                self._user_queue.append(
                    _Job(
                        user,
                        index,
                        self.cost,
                        self._antennas,
                        cache=self.cache,
                        slot_pipelined=self.slot_pipelined,
                    )
                )
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.DISPATCH,
                        t,
                        -1,
                        {
                            "subframe": index,
                            "users": len(admitted),
                            "queue_depth": len(self._user_queue),
                        },
                    )
                )
            if not admitted:
                # Nothing to process: the subframe is terminal at dispatch
                # (shed under overload, or genuinely empty).
                self._resolve_subframe(
                    index,
                    t,
                    reason="all users shed" if index in self._sf_shed else "",
                )
                return
            if self._resilience.deadline_subframes is not None:
                deadline = int(
                    self._resilience.deadline_subframes
                    * self.machine.subframe_period_cycles
                )
                self._engine.schedule(
                    t + deadline, self._make_deadline_check(index)
                )
            self._distribute_work(t)

        return dispatch

    # ------------------------------------------------- faults and resilience
    def _resolve_subframe(
        self,
        index: int,
        t: int,
        state: TerminalState | None = None,
        reason: str = "",
    ) -> None:
        """Record one subframe's single terminal state (first call wins)."""
        if index in self._sf_resolved:
            return
        self._sf_resolved.add(index)
        if state is None:
            if index in self._sf_user_aborted:
                state = TerminalState.ABORTED
            elif index in self._sf_shed:
                state = TerminalState.SHED
            else:
                state = TerminalState.OK
        self._terminal_states[index] = state.value
        if self.ledger is not None:
            self.ledger.resolve(self._start_index + index, state, reason)
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.SUBFRAME_TERMINAL,
                    t,
                    -1,
                    {"subframe": index, "state": state.value, "reason": reason},
                )
            )

    def _make_deadline_check(self, index: int):
        def check(t: int) -> None:
            if index in self._sf_resolved or self._pending_users[index] <= 0:
                return
            self._abort_subframe(index, t, reason="deadline expired")

        return check

    def _abort_subframe(self, index: int, t: int, reason: str) -> None:
        """Give up on a subframe: drop queued users, cancel in-flight jobs.

        In-flight *tasks* of cancelled jobs run to completion (a simulated
        core cannot be preempted mid-task) but their finish is a no-op for
        the job; no new work of this subframe is started.
        """
        dropped = [j for j in self._user_queue if j.subframe_index == index]
        if dropped:
            self._user_queue = deque(
                j for j in self._user_queue if j.subframe_index != index
            )
        for job in dropped:
            job.cancelled = True
            self._abort_user(job, t, was_adopted=False, reason=reason)
        for core in self._cores:
            job = core.job
            if job is not None and job.subframe_index == index:
                core.job = None
                job.user_core = None
                job.cancelled = True
                job.ready.clear()
                self._abort_user(job, t, was_adopted=True, reason=reason)
        self._pending_users[index] = 0
        self._complete_cycle[index] = t
        self._sf_user_aborted.add(index)
        self._resolve_subframe(
            index, t, state=TerminalState.ABORTED, reason=reason
        )

    def _abort_user(
        self, job: _Job, t: int, was_adopted: bool, reason: str
    ) -> None:
        self._aborted_users += 1
        self._sf_user_aborted.add(job.subframe_index)
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_ABORTED,
                    t,
                    -1,
                    {
                        "subframe": job.subframe_index,
                        "user": job.user.user_id,
                        "was_adopted": was_adopted,
                        "reason": reason,
                    },
                )
            )

    def _retry_or_abort_user(self, job: _Job, t: int, reason: str) -> None:
        """A job lost its user thread: requeue it fresh, or abort it."""
        index = job.subframe_index
        key = (index, job.user.user_id)
        attempts = self._retry_counts.get(key, 0)
        if attempts < self._resilience.max_retries:
            self._retry_counts[key] = attempts + 1
            self._retried_users += 1
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.USER_RETRY,
                        t,
                        -1,
                        {
                            "subframe": index,
                            "user": job.user.user_id,
                            "attempt": attempts + 1,
                            "reason": reason,
                        },
                    )
                )
            self._user_queue.append(
                _Job(
                    job.user,
                    index,
                    self.cost,
                    self._antennas,
                    cache=self.cache,
                    slot_pipelined=self.slot_pipelined,
                )
            )
            self._distribute_work(t)
            return
        self._abort_user(job, t, was_adopted=True, reason=reason)
        self._pending_users[index] -= 1
        if self._pending_users[index] == 0:
            self._complete_cycle[index] = t
            self._resolve_subframe(
                index, t, state=TerminalState.ABORTED, reason=reason
            )

    def _make_core_fault(self, spec: FaultSpec):
        def fire(t: int) -> None:
            core = self._cores[spec.target % len(self._cores)]
            if spec.kind is FaultKind.CORE_CRASH:
                self._crash_core(core, t)
            elif spec.kind is FaultKind.CORE_STALL:
                self._stall_core(core, max(1, int(spec.param)), t)
            elif spec.kind is FaultKind.CORE_SLOWDOWN:
                self._slow_core(core, float(spec.param), t)

        return fire

    def _record_fault(self, applied: bool, t: int, **data) -> None:
        record = {"applied": applied, "t": int(t), **data}
        self._faults_applied.append(record)
        if self._emit is not None:
            self._emit(Event(EventKind.FAULT, t, record.get("core", -1), record))

    def _crash_core(self, core: _Core, t: int) -> None:
        """Permanently kill one core (Section V's fail-stop model).

        The in-flight task is lost: a stolen task's cycles go back to its
        stage so a live core redoes the work; the core's own job loses its
        user thread and is retried from scratch (or aborted past the
        retry budget). The dead core reuses the DISABLED occupancy, so
        occupancy-trace conservation and the power model hold unchanged.
        """
        if core.crashed:
            self._record_fault(False, t, fault="core-crash", core=core.index)
            return
        self._record_fault(True, t, fault="core-crash", core=core.index)
        core.crashed = True
        core.epoch += 1  # strand the in-flight finish callback
        if core.busy:
            running = core.running
            core.running = None
            core.busy = False
            if running is not None:
                lost_job, lost_cycles = running
                if self._emit is not None:
                    self._emit(
                        Event(
                            EventKind.TASK_FINISH,
                            t,
                            core.index,
                            {
                                "cycles": lost_cycles,
                                "lost": True,
                                "kernel": lost_job.stage_kind,
                                "subframe": lost_job.subframe_index,
                            },
                        )
                    )
                if lost_job is not core.job and not lost_job.cancelled:
                    # A stolen task: hand it back to the stage for a live
                    # core to redo (outstanding was never decremented).
                    lost_job.ready.appendleft(lost_cycles)
                    self._jobs_with_ready.append(lost_job)
            elif self._emit is not None:
                self._emit(
                    Event(
                        EventKind.TASK_FINISH,
                        t,
                        core.index,
                        {"lost": True, "kernel": "stall", "subframe": -1},
                    )
                )
        job = core.job
        if job is not None:
            core.job = None
            job.user_core = None
        # Take the dead core out of every scheduling structure before any
        # retry/redistribute below can hand it work.
        self._idle_spin.discard(core.index)
        self._idle_nap.pop(core.index, None)
        self._disabled.add(core.index)
        self._set_state(core, CoreState.DISABLED, t)
        if job is not None and not job.cancelled:
            job.cancelled = True
            job.ready.clear()
            self._retry_or_abort_user(job, t, reason="core-crash")
        # Re-engage idle cores: the crash may have returned a stolen task
        # to its stage and/or requeued the dead core's user.
        self._distribute_work(t)

    def _stall_core(self, core: _Core, cycles: int, t: int) -> None:
        """Freeze one core for ``cycles``: it occupies COMPUTE producing
        nothing (a wedged core looks busy to the machine)."""
        if core.crashed or core.busy or core.state is CoreState.DISABLED:
            self._record_fault(
                False, t, fault="core-stall", core=core.index, cycles=cycles
            )
            return
        self._record_fault(
            True, t, fault="core-stall", core=core.index, cycles=cycles
        )
        self._idle_spin.discard(core.index)
        self._idle_nap.pop(core.index, None)
        core.busy = True
        core.running = None
        self._set_state(core, CoreState.COMPUTE, t)
        self._tasks_executed += 1
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.TASK_START,
                    t,
                    core.index,
                    {
                        "cycles": cycles,
                        "stolen": False,
                        "kernel": "stall",
                        "subframe": -1,
                    },
                )
            )
        epoch = core.epoch

        def finish(end: int) -> None:
            if core.epoch != epoch:
                return  # crashed mid-stall; the crash accounted the task
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.TASK_FINISH,
                        end,
                        core.index,
                        {"cycles": cycles, "kernel": "stall", "subframe": -1},
                    )
                )
            core.busy = False
            self._seek_work(core, end)

        self._engine.schedule(t + cycles, finish)

    def _slow_core(self, core: _Core, factor: float, t: int) -> None:
        """Degrade one core: every subsequent task runs ``factor`` slower
        (thermal-throttling model; already-running tasks are unaffected)."""
        if core.crashed or factor <= 0:
            self._record_fault(
                False, t, fault="core-slowdown", core=core.index, factor=factor
            )
            return
        self._record_fault(
            True, t, fault="core-slowdown", core=core.index, factor=factor
        )
        core.slow_factor = factor

    def _set_active_workers(self, target: int, t: int) -> None:
        previous = self._active_workers
        self._active_workers = target
        if target > previous:
            # Re-enable proactively disabled cores; they notice at their
            # next periodic wake check (modelled as half a period).
            delay = max(1, self._wake_period_cycles // 2)
            for core in self._cores[previous:target]:
                if core.index in self._disabled and not core.crashed:
                    self._disabled.discard(core.index)
                    self._engine.schedule_in(
                        delay, self._make_enable(core)
                    )
        # Shrinking happens lazily: surplus cores disable themselves when
        # they next look for work (they never abandon an owned job).

    def _make_initial_seek(self, core: _Core):
        def initial_seek(t: int) -> None:
            if core.busy or core.job is not None:
                return
            if core.state is CoreState.SPIN and core.index in self._idle_spin:
                self._idle_spin.discard(core.index)
                self._seek_work(core, t)

        return initial_seek

    def _make_enable(self, core: _Core):
        def enable(t: int) -> None:
            if core.state is CoreState.DISABLED and not core.crashed:
                self._set_state(core, CoreState.SPIN, t)
                # _seek_work either takes work or re-registers the core as
                # idle; pre-registering here would let _distribute_work
                # dispatch the same (now busy) core twice.
                self._seek_work(core, t)

        return enable

    # ----------------------------------------------------------- scheduling
    def _set_state(self, core: _Core, state: CoreState, t: int) -> None:
        if core.state is state:
            return
        self._trace.add_segment(core.state, core.state_since, t)
        previous = core.state
        core.state = state
        core.state_since = t
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.STATE_TRANSITION,
                    t,
                    core.index,
                    {"from": previous.value, "to": state.value},
                )
            )

    def _has_stealable_work(self) -> bool:
        if self._user_queue:
            return True
        while self._jobs_with_ready and not self._jobs_with_ready[0].ready:
            self._jobs_with_ready.popleft()
        return bool(self._jobs_with_ready)

    def _distribute_work(self, t: int) -> None:
        """Hand available work to idle cores (spinners first, then nappers).

        A spinner that declines the available work (e.g. a user thread
        waiting on stolen results cannot adopt a new user) is set aside for
        the rest of the pass so the loop always makes progress. Only cores
        that _go_idle actually returned to the spin set are deferred — a
        decliner that napped or disabled itself instead must not be
        re-registered as a spinner (it would end up in two idle sets at
        once, corrupting the occupancy accounting).
        """
        progress = True
        while progress and self._has_stealable_work():
            progress = False
            deferred: list[int] = []
            while self._has_stealable_work() and self._idle_spin:
                index = min(self._idle_spin)
                self._idle_spin.discard(index)
                if self._seek_work(self._cores[index], t):
                    progress = True
                elif index in self._idle_spin:
                    # _go_idle put it back; keep it out of this pass.
                    self._idle_spin.discard(index)
                    deferred.append(index)
            self._idle_spin.update(deferred)
        if self._has_stealable_work() and self._idle_nap:
            for index, nap_start in list(self._idle_nap.items()):
                core = self._cores[index]
                if core.wake_scheduled:
                    continue
                elapsed = t - nap_start
                periods = elapsed // self._wake_period_cycles + 1
                wake_at = nap_start + periods * self._wake_period_cycles
                core.wake_scheduled = True
                self._engine.schedule(wake_at, self._make_wake(core))

    def _make_wake(self, core: _Core):
        def wake(t: int) -> None:
            core.wake_scheduled = False
            if core.state is not CoreState.NAP:
                return
            self._idle_nap.pop(core.index, None)
            self._set_state(core, CoreState.SPIN, t)
            took_work = self._seek_work(core, t)
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.WAKE_CHECK,
                        t,
                        core.index,
                        {"took_work": took_work},
                    )
                )

        return wake

    def _go_idle(self, core: _Core, t: int) -> None:
        """No work found: spin or nap according to the policy."""
        if core.job is None and core.index >= self._active_workers:
            self._set_state(core, CoreState.DISABLED, t)
            self._disabled.add(core.index)
            return
        if self.policy.reactive_nap:
            self._set_state(core, CoreState.NAP, t)
            self._idle_nap[core.index] = t
        else:
            self._set_state(core, CoreState.SPIN, t)
            self._idle_spin.add(core.index)

    def _seek_work(self, core: _Core, t: int) -> bool:
        """Find the next thing for a free core to do (Section IV-C order).

        Returns True when the core took work, False when it went idle.
        """
        core.busy = False
        job = core.job
        # 0. A completed stage waiting for this core (its user thread).
        if job is not None and job.continuation_pending:
            job.continuation_pending = False
            if self._owner_advance(core, job, t):
                return True
            # The advance opened a parallel stage (fall through to pick a
            # task from it) or finished the job (job is now None).
            job = core.job
        # 1. This core's own job's ready tasks (owner LIFO).
        if job is not None and job.ready:
            cycles = job.ready.pop()
            self._execute_task(core, job, cycles, t, stolen=False)
            return True
        # A surplus worker (index beyond the governor's target) naps as soon
        # as it holds no job — it neither adopts users nor steals.
        if job is None and core.index >= self._active_workers:
            self._go_idle(core, t)
            return False
        # 2. The global user queue (only a free core can adopt a new user).
        if job is None and self._user_queue:
            new_job = self._user_queue.popleft()
            self._start_job(core, new_job, t)
            return True
        # 3. Steal from any job with ready tasks (thief FIFO).
        victim = self._pop_stealable(exclude=job)
        if victim is not None:
            victim_job, cycles = victim
            self._steals += 1
            if self._emit is not None:
                owner = victim_job.user_core
                self._emit(
                    Event(
                        EventKind.STEAL,
                        t,
                        core.index,
                        {
                            "victim": owner.index if owner is not None else -1,
                            "subframe": victim_job.subframe_index,
                            "wait": t - victim_job.stage_opened_at,
                        },
                    )
                )
            self._execute_task(core, victim_job, cycles, t, stolen=True)
            return True
        # 4. Nothing to do.
        self._go_idle(core, t)
        return False

    def _pop_stealable(self, exclude: _Job | None) -> tuple[_Job, int] | None:
        for _ in range(len(self._jobs_with_ready)):
            job = self._jobs_with_ready[0]
            if not job.ready:
                self._jobs_with_ready.popleft()
                continue
            if job is exclude:
                # Rotate: look for a different victim first.
                if len(self._jobs_with_ready) == 1:
                    return None
                self._jobs_with_ready.rotate(-1)
                continue
            return job, job.ready.popleft()
        return None

    def _start_job(self, core: _Core, job: _Job, t: int) -> None:
        self._users_processed += 1
        core.job = job
        job.user_core = core
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_START,
                    t,
                    core.index,
                    {"subframe": job.subframe_index, "user": job.user.user_id},
                )
            )
        if not self._owner_advance(core, job, t):
            self._seek_work(core, t)

    def _execute_task(
        self, core: _Core, job: _Job, cycles: int, t: int, stolen: bool
    ) -> None:
        core.busy = True
        self._set_state(core, CoreState.COMPUTE, t)
        self._tasks_executed += 1
        if stolen and self.noc is not None and job.user_core is not None:
            cycles += self.noc.steal_penalty(
                core.index, job.user_core.index, payload_lines=job.steal_lines
            )
        if core.slow_factor != 1.0:
            cycles = max(1, int(cycles * core.slow_factor))
        kernel = job.stage_kind
        core.running = (job, cycles)
        epoch = core.epoch
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.TASK_START,
                    t,
                    core.index,
                    {
                        "cycles": cycles,
                        "stolen": stolen,
                        "kernel": kernel,
                        "subframe": job.subframe_index,
                    },
                )
            )

        def finish(end: int) -> None:
            if core.epoch != epoch:
                return  # the core crashed mid-task; the crash accounted it
            core.running = None
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.TASK_FINISH,
                        end,
                        core.index,
                        {
                            "cycles": cycles,
                            "stolen": stolen,
                            "kernel": kernel,
                            "subframe": job.subframe_index,
                        },
                    )
                )
            self._task_finished(core, job, end)

        self._engine.schedule(t + cycles, finish)

    def _task_finished(self, core: _Core, job: _Job, t: int) -> None:
        if job.cancelled:
            # The job was voided (crash retry / deadline abort) while this
            # task was in flight: the work is discarded, the core moves on.
            self._seek_work(core, t)
            return
        job.outstanding -= 1
        if job.outstanding == 0 and not job.ready:
            self._stage_complete(job, t)
        self._seek_work(core, t)

    def _stage_complete(self, job: _Job, t: int) -> None:
        """All tasks of the current parallel stage finished."""
        if job.cancelled:
            return
        owner = job.user_core
        assert owner is not None
        if owner.busy:
            # The user thread is off helping elsewhere; it advances the job
            # when it next looks for work (Section IV-C's wait-and-help).
            job.continuation_pending = True
            return
        # The user thread was idle-waiting (spin or nap): it resumes at
        # once — remove it from the idle sets first.
        self._idle_spin.discard(owner.index)
        self._idle_nap.pop(owner.index, None)
        if not self._owner_advance(owner, job, t):
            self._seek_work(owner, t)

    def _advance_stage(self, job: _Job, t: int) -> str:
        """Move the job to its next stage; returns "par", "ser" or "done".

        A parallel stage's tasks become stealable immediately; the owner
        core is engaged by the caller (it competes for its own tasks like
        the Pthreads user thread draining its local queue).
        """
        job.stage_index += 1
        if job.stage_index >= len(job.stages):
            return "done"
        stage = job.stages[job.stage_index]
        job.stage_kind = stage[-1]
        if stage[0] == "par":
            _, cycles_list, lines, _kind = stage
            job.ready = deque(cycles_list)
            job.steal_lines = lines
            job.outstanding = len(job.ready)
            if not job.ready:  # degenerate empty fan-out
                return self._advance_stage(job, t)
            job.stage_opened_at = t
            self._jobs_with_ready.append(job)
            return "par"
        return "ser"

    def _owner_advance(self, core: _Core, job: _Job, t: int) -> bool:
        """Advance the owned job; True when this call engaged the core."""
        outcome = self._advance_stage(job, t)
        if outcome == "ser":
            self._run_continuation(core, t)
            return True
        if outcome == "done":
            self._finish_job(core, t)
            return False
        # "par": hand surplus tasks to other cores; the caller's subsequent
        # _seek_work lets the owner grab its own first task.
        self._distribute_work(t)
        return False

    def _run_continuation(self, core: _Core, t: int) -> None:
        """Run the current serial stage (combiner/finalize) on the owner."""
        job = core.job
        assert job is not None
        stage = job.stages[job.stage_index]
        assert stage[0] == "ser", "continuation outside a serial stage"
        core.busy = True
        self._set_state(core, CoreState.COMPUTE, t)
        self._tasks_executed += 1
        cycles = stage[1]
        if core.slow_factor != 1.0:
            cycles = max(1, int(cycles * core.slow_factor))
        kernel = stage[2]
        core.running = (job, cycles)
        epoch = core.epoch
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.TASK_START,
                    t,
                    core.index,
                    {
                        "cycles": cycles,
                        "stolen": False,
                        "serial": True,
                        "kernel": kernel,
                        "subframe": job.subframe_index,
                    },
                )
            )

        def finish(end: int) -> None:
            if core.epoch != epoch:
                return  # the core crashed mid-stage; the crash accounted it
            core.running = None
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.TASK_FINISH,
                        end,
                        core.index,
                        {
                            "cycles": cycles,
                            "serial": True,
                            "kernel": kernel,
                            "subframe": job.subframe_index,
                        },
                    )
                )
            core.busy = False
            if job.cancelled:
                self._seek_work(core, end)
                return
            if not self._owner_advance(core, job, end):
                self._seek_work(core, end)

        self._engine.schedule(t + cycles, finish)

    def _finish_job(self, core: _Core, t: int) -> None:
        """Bookkeeping when a job's last stage completes (no work seeking)."""
        job = core.job
        assert job is not None
        core.job = None
        job.user_core = None
        index = job.subframe_index
        self._pending_users[index] -= 1
        if self._pending_users[index] == 0:
            self._complete_cycle[index] = t
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_FINISH,
                    t,
                    core.index,
                    {
                        "subframe": index,
                        "user": job.user.user_id,
                        "pending": int(self._pending_users[index]),
                    },
                )
            )
        if self._pending_users[index] == 0:
            self._resolve_subframe(index, t)

    def _finalize_trace(self, horizon: int) -> None:
        for core in self._cores:
            self._trace.add_segment(core.state, core.state_since, horizon)
            core.state_since = horizon
