"""TILEPro64-like discrete-event multicore simulator: event engine,
calibrated per-kernel cycle cost model, core/nap semantics, and per-window
state-occupancy traces consumed by the power model.
"""

from .cost import DEFAULT_MACHINE, CostModel, MachineSpec
from .engine import EventEngine
from .machine import AlwaysOnPolicy, MachineSimulator, SimConfig, SimResult
from .memory import CacheModel, CacheSpec
from .noc import MeshTopology, NocModel
from .trace import CoreState, OccupancyTrace

__all__ = [
    "DEFAULT_MACHINE",
    "CostModel",
    "MachineSpec",
    "CacheModel",
    "CacheSpec",
    "MeshTopology",
    "NocModel",
    "EventEngine",
    "AlwaysOnPolicy",
    "MachineSimulator",
    "SimConfig",
    "SimResult",
    "CoreState",
    "OccupancyTrace",
]
