"""Thread-based work-stealing runtime (the Pthreads version, Section IV).

This is the functional twin of the paper's default Pthreads benchmark: a
maintenance thread dispatches subframes onto a global user queue, worker
threads pick users up, decompose them into the Fig. 5 task graph, and
steal from each other when idle.

Because of the CPython GIL this runtime demonstrates *correctness* (the
parallel execution produces bit-identical results to the serial version,
Section IV-D), not wall-clock scaling; timing behaviour is studied with
``repro.sim`` instead.

Fault tolerance (see ``docs/robustness.md``): a worker thread that fails
no longer dies silently — task exceptions are retried up to the
:class:`~repro.faults.watchdog.ResilienceConfig` budget and then abort the
user; a dying worker requeues the user it held (orphan reclamation) and
reports a :class:`~repro.faults.watchdog.WorkerFailure` so
:meth:`ThreadedRuntime.drain` fails loudly instead of blocking forever; an
optional watchdog thread aborts subframes that miss their wall-clock
deadline. Every dispatched subframe reaches exactly one terminal state in
the runtime's :class:`~repro.faults.accounting.SubframeLedger`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, ClassVar

from ..faults.accounting import SubframeLedger, TerminalState
from ..faults.injector import InjectedTaskError, InjectedWorkerDeath
from ..faults.watchdog import (
    ResilienceConfig,
    RuntimeHung,
    WorkerFailure,
    monotonic_ns,
    ns_from_s,
)
from ..obs.events import Event, EventKind
from ..obs.lockdep import tracked_lock
from ..phy.chest import ChestConfig
from ..uplink.serial import SubframeResult
from ..uplink.subframe import SubframeInput, UserSlice
from ..uplink.tasks import UserJob
from .policy import RandomVictimPolicy
from .queues import GlobalQueue, WorkStealingDeque

__all__ = ["ThreadedRuntime", "RuntimeStats", "WorkerFailuresError"]


class WorkerFailuresError(RuntimeError):
    """Unexpected worker-thread failures propagated by ``drain()``."""

    def __init__(self, failures: list[WorkerFailure]) -> None:
        self.failures = list(failures)
        lines = "; ".join(str(f) for f in failures)
        super().__init__(f"{len(failures)} worker failure(s): {lines}")


@dataclass
class RuntimeStats:
    """Counters describing one run (useful for scheduling tests).

    Worker threads update the per-worker slots concurrently and callers
    may sum them mid-run, so every access goes through ``lock`` (the
    ``_GUARDED_BY`` map below is enforced statically by ``repro lint``'s
    REP101 rule).
    """

    _GUARDED_BY: ClassVar[dict[str, str]] = {
        "tasks_executed": "lock",
        "steals": "lock",
        "users_processed": "lock",
        "retries": "lock",
        "aborted_users": "lock",
    }

    tasks_executed: list[int] = field(default_factory=list)
    steals: list[int] = field(default_factory=list)
    users_processed: list[int] = field(default_factory=list)
    retries: int = 0
    aborted_users: int = 0
    lock: threading.Lock = field(
        default_factory=lambda: tracked_lock("RuntimeStats.lock"),
        repr=False,
        compare=False,
    )

    @property
    def total_tasks(self) -> int:
        with self.lock:
            return sum(self.tasks_executed)

    @property
    def total_steals(self) -> int:
        with self.lock:
            return sum(self.steals)


class _Latch:
    """Counts task completions so the user thread can join a stage."""

    def __init__(self, count: int) -> None:
        self._count = count  # guarded-by: _lock
        self._lock = tracked_lock("_Latch._lock")
        self._event = threading.Event()
        if count == 0:
            self._event.set()

    def count_down(self) -> None:
        with self._lock:
            self._count -= 1
            if self._count <= 0:
                self._event.set()

    def wait(self, help_while_waiting: Callable[[], bool] | None = None) -> None:
        """Block until all tasks completed, optionally helping other work."""
        while not self._event.is_set():
            if help_while_waiting is None or not help_while_waiting():
                self._event.wait(timeout=0.0005)


@dataclass
class _PendingSubframe:
    subframe: SubframeInput
    remaining_users: int  # guarded-by: lock
    result: SubframeResult  # guarded-by: lock
    lock: threading.Lock = field(
        default_factory=lambda: tracked_lock("_PendingSubframe.lock")
    )
    resolved: bool = False  # guarded-by: lock
    aborted_ids: list[int] = field(default_factory=list)  # guarded-by: lock
    retries: dict[int, int] = field(default_factory=dict)  # guarded-by: lock
    #: Wall-clock abort deadline (monotonic ns), set before sharing.
    deadline_ns: int | None = None


class ThreadedRuntime:
    """Work-stealing execution of the benchmark on real threads.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper uses up to 62 on the TILEPro64).
    config, codec:
        Forwarded to the per-user receiver chain.
    steal_seed:
        Seed for the random victim policy.
    observers:
        Optional event observers (see :mod:`repro.obs`). Events carry
        ``time.monotonic_ns()`` timestamps and are emitted from worker
        threads — observers must tolerate concurrent calls (the built-in
        :class:`~repro.obs.recorder.EventRecorder` appends are atomic
        under the GIL). With no observer attached, emission sites cost one
        identity check.
    emit_spans:
        When observers are attached, also emit hierarchical profiling
        spans (``SPAN_BEGIN``/``SPAN_END`` per subframe and per Fig. 5
        kernel stage). ``False`` keeps task/user/steal tracing but drops
        the span edges — the "spans disabled" baseline that
        ``benchmarks/test_obs_overhead.py`` bounds the span cost against.
    faults:
        Optional :class:`~repro.faults.injector.ThreadFaultInjector`
        (or a bare :class:`~repro.faults.plan.FaultPlan`, which is wrapped
        in one) carrying a seeded fault plan (worker death/hangs, per-task
        exceptions) to inject into this run.
    resilience:
        Fault-tolerance knobs (:class:`~repro.faults.watchdog.ResilienceConfig`).
        The default keeps retry-on-failure on (one retry) with no
        wall-clock deadline and no watchdog thread, so zero-fault runs pay
        nothing beyond per-subframe ledger bookkeeping.
    ledger:
        Optional externally-owned
        :class:`~repro.faults.accounting.SubframeLedger`; by default the
        runtime creates a fresh one at :meth:`start`.
    """

    def __init__(
        self,
        num_workers: int = 4,
        config: ChestConfig | None = None,
        codec=None,
        steal_seed: int = 0,
        observers=None,
        emit_spans: bool = True,
        faults=None,
        resilience: ResilienceConfig | None = None,
        ledger: SubframeLedger | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.config = config
        self.codec = codec
        self._policy = RandomVictimPolicy(num_workers, seed=steal_seed)
        self._global: GlobalQueue = GlobalQueue()
        self._locals: list[WorkStealingDeque] = [
            WorkStealingDeque() for _ in range(num_workers)
        ]
        self._stats = RuntimeStats(
            tasks_executed=[0] * num_workers,
            steals=[0] * num_workers,
            users_processed=[0] * num_workers,
        )
        self._completed: list[SubframeResult] = []  # guarded-by: _completed_lock
        self._completed_lock = tracked_lock("ThreadedRuntime._completed_lock")
        self._outstanding = 0  # guarded-by: _outstanding_lock
        self._outstanding_lock = tracked_lock(
            "ThreadedRuntime._outstanding_lock"
        )
        self._all_done = threading.Event()
        self._all_done.set()
        self._shutdown = threading.Event()
        self._threads: list[threading.Thread] = []
        if faults is not None and not hasattr(faults, "check_worker_death"):
            from ..faults.injector import ThreadFaultInjector

            faults = ThreadFaultInjector(faults)
        self._faults = faults
        self._resilience = resilience or ResilienceConfig()
        self._external_ledger = ledger
        self.ledger: SubframeLedger = ledger or SubframeLedger()
        self._pending_map: dict[int, _PendingSubframe] = {}  # guarded-by: _pending_lock
        self._pending_lock = tracked_lock("ThreadedRuntime._pending_lock")
        self._failures: list[WorkerFailure] = []  # guarded-by: _failures_lock
        self._dead_workers: set[int] = set()  # guarded-by: _failures_lock
        self._failures_lock = tracked_lock("ThreadedRuntime._failures_lock")
        self._late_completions = 0  # guarded-by: _failures_lock
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()
        self.emit_spans = emit_spans
        self.observers = list(observers) if observers is not None else []
        if not self.observers:
            self._emit = None
        elif len(self.observers) == 1:
            self._emit = self.observers[0]
        else:
            fanout = tuple(self.observers)

            def emit(event, _observers=fanout):
                for observer in _observers:
                    observer(event)

            self._emit = emit

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        """Spawn the worker threads (and the watchdog when configured)."""
        if self._threads:
            raise RuntimeError("runtime already started")
        self._shutdown.clear()
        self._watchdog_stop.clear()
        if self._external_ledger is None:
            self.ledger = SubframeLedger()
        with self._failures_lock:
            self._failures.clear()
            self._dead_workers.clear()
        for worker_id in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(worker_id,), daemon=True
            )
            thread.start()
            self._threads.append(thread)
        if self._resilience.wants_watchdog:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, daemon=True
            )
            self._watchdog.start()

    def stop(self) -> None:
        """Stop the worker threads (after draining outstanding work)."""
        self.drain()
        self._halt_threads()

    def abort(self) -> None:
        """Emergency shutdown: abort outstanding subframes, stop threads.

        Used on ``KeyboardInterrupt``/fatal paths: every unresolved
        subframe is accounted as ``aborted`` (so the ledger still
        balances and traces can be flushed) and worker threads are joined
        with a bounded timeout instead of drained.
        """
        with self._pending_lock:
            pendings = list(self._pending_map.values())
        for pending in pendings:
            self._finish_subframe(
                pending,
                forced_state=TerminalState.ABORTED,
                reason="runtime aborted",
            )
        self._halt_threads()

    def _halt_threads(self) -> None:
        self._shutdown.set()
        self._watchdog_stop.set()
        timeout = self._resilience.join_timeout_s
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self._watchdog is not None:
            self._watchdog.join(timeout=timeout)
            self._watchdog = None
        self._threads.clear()

    def submit(self, subframe: SubframeInput) -> None:
        """Dispatch one subframe's users onto the global queue."""
        if not self._threads:
            raise RuntimeError("runtime not started")
        pending = _PendingSubframe(
            subframe=subframe,
            remaining_users=len(subframe.slices),
            result=SubframeResult(subframe_index=subframe.subframe_index),
        )
        if self._resilience.deadline_s is not None:
            # ns_from_s rounds instead of truncating: int(s * 1e9) floored
            # the deadline one tick early at exact boundaries.
            pending.deadline_ns = monotonic_ns() + ns_from_s(
                self._resilience.deadline_s
            )
        self.ledger.dispatch(subframe.subframe_index, len(subframe.slices))
        with self._pending_lock:
            self._pending_map[subframe.subframe_index] = pending
        with self._outstanding_lock:
            self._outstanding += 1
            self._all_done.clear()
        if self._emit is not None:
            now = time.monotonic_ns()
            self._emit(
                Event(
                    EventKind.DISPATCH,
                    now,
                    -1,
                    {
                        "subframe": subframe.subframe_index,
                        "users": len(subframe.slices),
                    },
                )
            )
            if self.emit_spans:
                self._emit(
                    Event(
                        EventKind.SPAN_BEGIN,
                        now,
                        -1,
                        {
                            "name": f"subframe {subframe.subframe_index}",
                            "cat": "subframe",
                            "subframe": subframe.subframe_index,
                        },
                    )
                )
        if not subframe.slices:
            self._finish_subframe(pending)
            return
        self._global.put_subframe(
            [(pending, user_slice) for user_slice in subframe.slices]
        )

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted subframe has completed.

        Raises :class:`WorkerFailuresError` when a worker thread died from
        an unexpected (non-injected) exception — the silent-death failure
        mode this runtime used to have — and :class:`RuntimeHung` when
        ``timeout`` (or the configured ``drain_timeout_s``) expires first.
        """
        if timeout is None:
            timeout = self._resilience.drain_timeout_s
        finished = self._all_done.wait(timeout)
        self._raise_on_fatal()
        if not finished:
            with self._outstanding_lock:
                outstanding = self._outstanding
            raise RuntimeHung(
                f"drain timed out after {timeout}s with {outstanding} "
                "subframe(s) outstanding"
            )

    def run(self, subframes: list[SubframeInput]) -> list[SubframeResult]:
        """Convenience: start, submit all, drain, stop; returns results.

        ``drain()`` (and ``stop()`` via it) already blocks until every
        submitted subframe completed, so the final ``collect_results()``
        cannot lose in-flight work here. On ``KeyboardInterrupt`` (or any
        fatal error) outstanding subframes are aborted — accounted, not
        lost — before the exception propagates.
        """
        owns_threads = not self._threads
        if owns_threads:
            self.start()
        try:
            for subframe in subframes:
                self.submit(subframe)
            self.drain()
        except BaseException:
            if owns_threads:
                self.abort()
            raise
        if owns_threads:
            self.stop()
        return self.collect_results()

    def collect_results(self) -> list[SubframeResult]:
        """Drain outstanding work, then return and clear the completed
        subframe results, ordered by subframe index."""
        self.drain()
        with self._completed_lock:
            results = sorted(self._completed, key=lambda r: r.subframe_index)
            self._completed.clear()
        return results

    @property
    def stats(self) -> RuntimeStats:
        return self._stats

    @property
    def failures(self) -> list[WorkerFailure]:
        """Worker failures recorded so far (injected and unexpected)."""
        with self._failures_lock:
            return list(self._failures)

    @property
    def late_completions(self) -> int:
        """Users that finished after their subframe was already resolved."""
        with self._failures_lock:
            return self._late_completions

    def _raise_on_fatal(self) -> None:
        with self._failures_lock:
            fatal = [f for f in self._failures if f.fatal]
        if fatal:
            raise WorkerFailuresError(fatal)

    # ----------------------------------------------------- watchdog / death
    def _watchdog_loop(self) -> None:
        """Abort subframes whose wall-clock deadline expired."""
        poll = self._resilience.watchdog_poll_s
        while not self._watchdog_stop.wait(poll):
            now = monotonic_ns()
            with self._pending_lock:
                expired = [
                    p
                    for p in self._pending_map.values()
                    if p.deadline_ns is not None and now >= p.deadline_ns
                ]
            for pending in expired:
                self._finish_subframe(
                    pending,
                    forced_state=TerminalState.ABORTED,
                    reason="deadline expired",
                )

    def _on_worker_dead(
        self, worker_id: int, error: str, injected: bool
    ) -> None:
        """A worker thread is exiting: record it and keep the run sound.

        An injected death is an expected resilience scenario; an
        unexpected one is fatal and makes ``drain()`` raise. Either way,
        if the last live worker just died, all outstanding subframes are
        aborted so nothing blocks forever waiting for work nobody will do.
        """
        failure = WorkerFailure(
            worker_id=worker_id,
            error=error,
            fatal=not injected,
            injected=injected,
        )
        with self._failures_lock:
            self._failures.append(failure)
            self._dead_workers.add(worker_id)
            all_dead = len(self._dead_workers) >= self.num_workers
        if all_dead or not injected:
            with self._pending_lock:
                pendings = list(self._pending_map.values())
            reason = (
                "all workers dead" if all_dead else f"worker failure: {error}"
            )
            for pending in pendings:
                self._finish_subframe(
                    pending, forced_state=TerminalState.ABORTED, reason=reason
                )

    # ------------------------------------------------------------ internals
    def _classify(
        self, result: SubframeResult, aborted: list[int]
    ) -> TerminalState:
        if aborted:
            return TerminalState.ABORTED
        if any(not r.crc_ok for r in result.user_results):
            return TerminalState.CRC_FAILED
        return TerminalState.OK

    def _finish_subframe(
        self,
        pending: _PendingSubframe,
        forced_state: TerminalState | None = None,
        reason: str = "",
    ) -> None:
        """Resolve one subframe to its single terminal state.

        Idempotent: the first caller (normal completion, deadline
        watchdog, or abort path) wins; later calls are recorded as late
        resolutions in the ledger and change nothing else.
        """
        index = pending.subframe.subframe_index
        with pending.lock:
            first = not pending.resolved
            pending.resolved = True
            aborted = list(pending.aborted_ids)
            result = pending.result
            if first and forced_state is TerminalState.ABORTED:
                # Forced abort (deadline, all workers dead, runtime abort):
                # users that never produced a result were abandoned too —
                # record them so the result explains itself.
                done = {u.user_id for u in result.user_results}
                aborted += [
                    s.user.user_id
                    for s in pending.subframe.slices
                    if s.user.user_id not in done and s.user.user_id not in aborted
                ]
            result.aborted_user_ids = aborted
        state = forced_state or self._classify(result, aborted)
        if not first:
            self.ledger.resolve(index, state, reason or "late duplicate")
            return
        self.ledger.resolve(index, state, reason)
        with self._pending_lock:
            self._pending_map.pop(index, None)
        if self._emit is not None:
            now = time.monotonic_ns()
            if self.emit_spans:
                self._emit(
                    Event(
                        EventKind.SPAN_END,
                        now,
                        -1,
                        {
                            "name": f"subframe {index}",
                            "cat": "subframe",
                            "subframe": index,
                        },
                    )
                )
            self._emit(
                Event(
                    EventKind.SUBFRAME_TERMINAL,
                    now,
                    -1,
                    {
                        "subframe": index,
                        "state": state.value,
                        "aborted_users": len(aborted),
                        "reason": reason,
                    },
                )
            )
        with self._completed_lock:
            self._completed.append(result)
        with self._outstanding_lock:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._all_done.set()

    def _worker_loop(self, worker_id: int) -> None:
        try:
            while not self._shutdown.is_set():
                if not self._find_and_run_work(worker_id):
                    time.sleep(0.0002)  # idle back-off (the NONAP busy-spin)
        except InjectedWorkerDeath as death:
            self._on_worker_dead(worker_id, str(death), injected=True)
        except BaseException as exc:
            # The silent-death path: without this, an uncaught exception
            # killed the thread and result collection blocked forever.
            self._on_worker_dead(
                worker_id, f"{type(exc).__name__}: {exc}", injected=False
            )

    def _run_task(
        self, worker_id: int, task: Callable[[], None], stolen: bool
    ) -> None:
        kernel = None
        if self._emit is not None:
            kernel = getattr(task, "kernel", None)
            self._emit(
                Event(
                    EventKind.TASK_START,
                    time.monotonic_ns(),
                    worker_id,
                    {"stolen": stolen, "kernel": kernel},
                )
            )
        task()
        with self._stats.lock:
            self._stats.tasks_executed[worker_id] += 1
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.TASK_FINISH,
                    time.monotonic_ns(),
                    worker_id,
                    {"stolen": stolen, "kernel": kernel},
                )
            )

    def _span(self, worker_id: int, kind: EventKind, name: str, data: dict) -> None:
        """Emit one profiling-span edge from a worker thread."""
        self._emit(
            Event(
                kind,
                time.monotonic_ns(),
                worker_id,
                {"name": name, "cat": "kernel", **data},
            )
        )

    def _emit_fault(self, kind: str, worker_id: int, subframe: int) -> None:
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.FAULT,
                    time.monotonic_ns(),
                    worker_id,
                    {"fault": kind, "subframe": subframe},
                )
            )

    def _steal_task(self, worker_id: int) -> Callable[[], None] | None:
        """Try every victim once; returns the stolen task, if any."""
        for victim in self._policy.victim_order(worker_id):
            task = self._locals[victim].steal()
            if task is not None:
                with self._stats.lock:
                    self._stats.steals[worker_id] += 1
                if self._emit is not None:
                    self._emit(
                        Event(
                            EventKind.STEAL,
                            time.monotonic_ns(),
                            worker_id,
                            {"victim": victim},
                        )
                    )
                return task
        return None

    def _find_and_run_work(self, worker_id: int) -> bool:
        """One scheduling step; returns False when no work was found."""
        # 1. Local tasks first.
        task = self._locals[worker_id].pop()
        if task is not None:
            self._run_task(worker_id, task, stolen=False)
            return True
        # 2. Global user queue beats stealing.
        entry = self._global.get()
        if entry is not None:
            pending, user_slice = entry
            self._process_user(worker_id, pending, user_slice)
            return True
        # 3. Steal.
        task = self._steal_task(worker_id)
        if task is not None:
            self._run_task(worker_id, task, stolen=True)
            return True
        return False

    def _interruptible_sleep(self, seconds: float) -> None:
        """Sleep in shutdown-aware slices (a wedged worker still stops).

        Uses the same monotonic-ns clock as the subframe deadlines (it
        previously mixed ``time.monotonic()`` floats into an otherwise
        ns-integer deadline scheme).
        """
        deadline_ns = monotonic_ns() + ns_from_s(seconds)
        while not self._shutdown.is_set():
            remaining_ns = deadline_ns - monotonic_ns()
            if remaining_ns <= 0:
                return
            time.sleep(min(remaining_ns / 1e9, 0.05))

    def _process_user(
        self, worker_id: int, pending: _PendingSubframe, user_slice: UserSlice
    ) -> None:
        """Become the user thread for one user (Section IV-C).

        Failure policy: any exception escaping the user's task graph is a
        *user* failure, not a runtime failure — the user is requeued onto
        the global queue (bounded by the retry budget) or aborted, and the
        worker moves on. A planned :class:`InjectedWorkerDeath` requeues
        the user first (orphan reclamation) and then kills this thread.
        """
        index = pending.subframe.subframe_index
        with self._stats.lock:
            self._stats.users_processed[worker_id] += 1
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_START,
                    time.monotonic_ns(),
                    worker_id,
                    {"subframe": index, "user": user_slice.user.user_id},
                )
            )
        faults = self._faults
        if faults is not None:
            if faults.check_worker_death(worker_id, index):
                self._emit_fault("worker-death", worker_id, index)
                self._requeue_or_abort(
                    worker_id, pending, user_slice, "worker death"
                )
                raise InjectedWorkerDeath(
                    f"planned death at subframe {index}"
                )
            hang_s = faults.check_worker_hang(worker_id, index)
            if hang_s is not None:
                self._emit_fault("worker-hang", worker_id, index)
                self._interruptible_sleep(hang_s)
        try:
            if faults is not None and faults.check_task_exception(
                worker_id, index
            ):
                self._emit_fault("task-exception", worker_id, index)
                raise InjectedTaskError(
                    f"planned task failure (subframe {index}, "
                    f"user {user_slice.user.user_id})"
                )
            result = self._execute_user_job(worker_id, pending, user_slice)
        except InjectedWorkerDeath:
            self._requeue_or_abort(
                worker_id, pending, user_slice, "worker death"
            )
            raise
        except Exception as exc:
            self._requeue_or_abort(
                worker_id,
                pending,
                user_slice,
                f"{type(exc).__name__}: {exc}",
            )
            return
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_FINISH,
                    time.monotonic_ns(),
                    worker_id,
                    {"subframe": index, "user": user_slice.user.user_id},
                )
            )
        self._complete_user(pending, result)

    def _execute_user_job(
        self, worker_id: int, pending: _PendingSubframe, user_slice: UserSlice
    ):
        """Run one user's Fig. 5 stage sequence; returns its UserResult."""
        job = UserJob(
            user_slice, pending.subframe.grid, config=self.config, codec=self.codec
        )
        # Each Fig. 5 stage is bracketed by a kernel span on the user
        # thread (fork to join for the parallel stages); the per-task
        # events inside carry the same kernel label so both the join-level
        # and task-level views attribute time to the same kernels.
        ids = {
            "subframe": pending.subframe.subframe_index,
            "user": user_slice.user.user_id,
        }
        emitting = self._emit is not None and self.emit_spans
        if emitting:
            self._span(worker_id, EventKind.SPAN_BEGIN, "chest", ids)
        self._run_stage(worker_id, job.chest_tasks(), kernel="chest")
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "chest", ids)
            self._span(worker_id, EventKind.SPAN_BEGIN, "combiner", ids)
        job.run_combiner()
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "combiner", ids)
            self._span(worker_id, EventKind.SPAN_BEGIN, "symbol", ids)
        self._run_stage(worker_id, job.data_tasks(), kernel="symbol")
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "symbol", ids)
            self._span(worker_id, EventKind.SPAN_BEGIN, "finalize", ids)
        result = job.finalize()
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "finalize", ids)
        return result

    def _complete_user(self, pending: _PendingSubframe, result) -> None:
        with pending.lock:
            if pending.resolved:
                late = True
                done = False
            else:
                late = False
                pending.result.user_results.append(result)
                pending.remaining_users -= 1
                done = pending.remaining_users == 0
        if late:
            with self._failures_lock:
                self._late_completions += 1
            return
        if done:
            self._finish_subframe(pending)

    def _requeue_or_abort(
        self,
        worker_id: int,
        pending: _PendingSubframe,
        user_slice: UserSlice,
        reason: str,
    ) -> None:
        """Bounded retry of a failed user; abort it past the budget."""
        index = pending.subframe.subframe_index
        user_id = user_slice.user.user_id
        with pending.lock:
            if pending.resolved:
                return  # subframe already aborted/resolved: drop silently
            attempts = pending.retries.get(user_id, 0)
            retry = attempts < self._resilience.max_retries
            if retry:
                pending.retries[user_id] = attempts + 1
        if retry:
            with self._stats.lock:
                self._stats.retries += 1
            if self._emit is not None:
                self._emit(
                    Event(
                        EventKind.USER_RETRY,
                        time.monotonic_ns(),
                        worker_id,
                        {
                            "subframe": index,
                            "user": user_id,
                            "attempt": attempts + 1,
                            "reason": reason,
                        },
                    )
                )
            self._global.put_subframe([(pending, user_slice)])
            return
        with self._stats.lock:
            self._stats.aborted_users += 1
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_ABORTED,
                    time.monotonic_ns(),
                    worker_id,
                    {
                        "subframe": index,
                        "user": user_id,
                        "was_adopted": True,
                        "reason": reason,
                    },
                )
            )
        with pending.lock:
            if pending.resolved:
                return
            pending.aborted_ids.append(user_id)
            pending.remaining_users -= 1
            done = pending.remaining_users == 0
        if done:
            self._finish_subframe(pending)

    def _run_stage(
        self,
        worker_id: int,
        tasks: list[Callable[[], None]],
        kernel: str | None = None,
    ) -> None:
        """Push a stage's tasks locally, process until empty, join.

        A task that raises does *not* take down whichever thread happened
        to execute it (it may be a thief helping out): the failure is
        recorded against the stage and re-raised here, on the owning user
        thread, after the join — so the retry/abort policy charges the
        right user.
        """
        latch = _Latch(len(tasks))
        failures: list[Exception] = []  # list.append is atomic (GIL)

        def wrap(task: Callable[[], None]) -> Callable[[], None]:
            def run() -> None:
                try:
                    task()
                except Exception as exc:
                    failures.append(exc)
                finally:
                    latch.count_down()

            # Function attribute, read back via getattr in _run_task;
            # setattr keeps the Callable return type honest for mypy.
            setattr(run, "kernel", kernel)
            return run

        self._locals[worker_id].push_all([wrap(t) for t in tasks])
        while True:
            task = self._locals[worker_id].pop()
            if task is None:
                break
            self._run_task(worker_id, task, stolen=False)
        # Other workers may still hold stolen tasks; help elsewhere while
        # waiting ("the user thread waits until the results from all tasks
        # become available").
        latch.wait(help_while_waiting=lambda: self._help_once(worker_id))
        if failures:
            raise failures[0]

    def _help_once(self, worker_id: int) -> bool:
        """Steal one task from somewhere while blocked on a join."""
        task = self._steal_task(worker_id)
        if task is not None:
            self._run_task(worker_id, task, stolen=True)
            return True
        return False
