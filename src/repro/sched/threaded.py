"""Thread-based work-stealing runtime (the Pthreads version, Section IV).

This is the functional twin of the paper's default Pthreads benchmark: a
maintenance thread dispatches subframes onto a global user queue, worker
threads pick users up, decompose them into the Fig. 5 task graph, and
steal from each other when idle.

Because of the CPython GIL this runtime demonstrates *correctness* (the
parallel execution produces bit-identical results to the serial version,
Section IV-D), not wall-clock scaling; timing behaviour is studied with
``repro.sim`` instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, ClassVar

from ..obs.events import Event, EventKind
from ..phy.chest import ChestConfig
from ..uplink.serial import SubframeResult
from ..uplink.subframe import SubframeInput, UserSlice
from ..uplink.tasks import UserJob
from .policy import RandomVictimPolicy
from .queues import GlobalQueue, WorkStealingDeque

__all__ = ["ThreadedRuntime", "RuntimeStats"]


@dataclass
class RuntimeStats:
    """Counters describing one run (useful for scheduling tests).

    Worker threads update the per-worker slots concurrently and callers
    may sum them mid-run, so every access goes through ``lock`` (the
    ``_GUARDED_BY`` map below is enforced statically by ``repro lint``'s
    REP101 rule).
    """

    _GUARDED_BY: ClassVar[dict[str, str]] = {
        "tasks_executed": "lock",
        "steals": "lock",
        "users_processed": "lock",
    }

    tasks_executed: list[int] = field(default_factory=list)
    steals: list[int] = field(default_factory=list)
    users_processed: list[int] = field(default_factory=list)
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def total_tasks(self) -> int:
        with self.lock:
            return sum(self.tasks_executed)

    @property
    def total_steals(self) -> int:
        with self.lock:
            return sum(self.steals)


class _Latch:
    """Counts task completions so the user thread can join a stage."""

    def __init__(self, count: int) -> None:
        self._count = count  # guarded-by: _lock
        self._lock = threading.Lock()
        self._event = threading.Event()
        if count == 0:
            self._event.set()

    def count_down(self) -> None:
        with self._lock:
            self._count -= 1
            if self._count <= 0:
                self._event.set()

    def wait(self, help_while_waiting: Callable[[], bool] | None = None) -> None:
        """Block until all tasks completed, optionally helping other work."""
        while not self._event.is_set():
            if help_while_waiting is None or not help_while_waiting():
                self._event.wait(timeout=0.0005)


@dataclass
class _PendingSubframe:
    subframe: SubframeInput
    remaining_users: int  # guarded-by: lock
    result: SubframeResult  # guarded-by: lock
    lock: threading.Lock = field(default_factory=threading.Lock)


class ThreadedRuntime:
    """Work-stealing execution of the benchmark on real threads.

    Parameters
    ----------
    num_workers:
        Worker thread count (the paper uses up to 62 on the TILEPro64).
    config, codec:
        Forwarded to the per-user receiver chain.
    steal_seed:
        Seed for the random victim policy.
    observers:
        Optional event observers (see :mod:`repro.obs`). Events carry
        ``time.monotonic_ns()`` timestamps and are emitted from worker
        threads — observers must tolerate concurrent calls (the built-in
        :class:`~repro.obs.recorder.EventRecorder` appends are atomic
        under the GIL). With no observer attached, emission sites cost one
        identity check.
    emit_spans:
        When observers are attached, also emit hierarchical profiling
        spans (``SPAN_BEGIN``/``SPAN_END`` per subframe and per Fig. 5
        kernel stage). ``False`` keeps task/user/steal tracing but drops
        the span edges — the "spans disabled" baseline that
        ``benchmarks/test_obs_overhead.py`` bounds the span cost against.
    """

    def __init__(
        self,
        num_workers: int = 4,
        config: ChestConfig | None = None,
        codec=None,
        steal_seed: int = 0,
        observers=None,
        emit_spans: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.config = config
        self.codec = codec
        self._policy = RandomVictimPolicy(num_workers, seed=steal_seed)
        self._global: GlobalQueue = GlobalQueue()
        self._locals: list[WorkStealingDeque] = [
            WorkStealingDeque() for _ in range(num_workers)
        ]
        self._stats = RuntimeStats(
            tasks_executed=[0] * num_workers,
            steals=[0] * num_workers,
            users_processed=[0] * num_workers,
        )
        self._completed: list[SubframeResult] = []  # guarded-by: _completed_lock
        self._completed_lock = threading.Lock()
        self._outstanding = 0  # guarded-by: _outstanding_lock
        self._outstanding_lock = threading.Lock()
        self._all_done = threading.Event()
        self._all_done.set()
        self._shutdown = threading.Event()
        self._threads: list[threading.Thread] = []
        self.emit_spans = emit_spans
        self.observers = list(observers) if observers is not None else []
        if not self.observers:
            self._emit = None
        elif len(self.observers) == 1:
            self._emit = self.observers[0]
        else:
            fanout = tuple(self.observers)

            def emit(event, _observers=fanout):
                for observer in _observers:
                    observer(event)

            self._emit = emit

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        """Spawn the worker threads."""
        if self._threads:
            raise RuntimeError("runtime already started")
        self._shutdown.clear()
        for worker_id in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(worker_id,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop the worker threads (after draining outstanding work)."""
        self.drain()
        self._shutdown.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def submit(self, subframe: SubframeInput) -> None:
        """Dispatch one subframe's users onto the global queue."""
        if not self._threads:
            raise RuntimeError("runtime not started")
        pending = _PendingSubframe(
            subframe=subframe,
            remaining_users=len(subframe.slices),
            result=SubframeResult(subframe_index=subframe.subframe_index),
        )
        with self._outstanding_lock:
            self._outstanding += 1
            self._all_done.clear()
        if self._emit is not None:
            now = time.monotonic_ns()
            self._emit(
                Event(
                    EventKind.DISPATCH,
                    now,
                    -1,
                    {
                        "subframe": subframe.subframe_index,
                        "users": len(subframe.slices),
                    },
                )
            )
            if self.emit_spans:
                self._emit(
                    Event(
                        EventKind.SPAN_BEGIN,
                        now,
                        -1,
                        {
                            "name": f"subframe {subframe.subframe_index}",
                            "cat": "subframe",
                            "subframe": subframe.subframe_index,
                        },
                    )
                )
        if not subframe.slices:
            self._finish_subframe(pending)
            return
        self._global.put_subframe(
            [(pending, user_slice) for user_slice in subframe.slices]
        )

    def drain(self) -> None:
        """Block until every submitted subframe has completed."""
        self._all_done.wait()

    def run(self, subframes: list[SubframeInput]) -> list[SubframeResult]:
        """Convenience: start, submit all, drain, stop; returns results.

        ``drain()`` (and ``stop()`` via it) already blocks until every
        submitted subframe completed, so the final ``collect_results()``
        cannot lose in-flight work here.
        """
        owns_threads = not self._threads
        if owns_threads:
            self.start()
        try:
            for subframe in subframes:
                self.submit(subframe)
            self.drain()
        finally:
            if owns_threads:
                self.stop()
        return self.collect_results()

    def collect_results(self) -> list[SubframeResult]:
        """Drain outstanding work, then return and clear the completed
        subframe results, ordered by subframe index."""
        self.drain()
        with self._completed_lock:
            results = sorted(self._completed, key=lambda r: r.subframe_index)
            self._completed.clear()
        return results

    @property
    def stats(self) -> RuntimeStats:
        return self._stats

    # ------------------------------------------------------------ internals
    def _finish_subframe(self, pending: _PendingSubframe) -> None:
        # Safe without pending.lock: we run either before any worker saw
        # the subframe (empty submit) or after the last worker observed
        # remaining_users hit 0 under pending.lock, which orders this read
        # after every result append.
        if self._emit is not None and self.emit_spans:
            index = pending.subframe.subframe_index
            self._emit(
                Event(
                    EventKind.SPAN_END,
                    time.monotonic_ns(),
                    -1,
                    {
                        "name": f"subframe {index}",
                        "cat": "subframe",
                        "subframe": index,
                    },
                )
            )
        with self._completed_lock:
            self._completed.append(pending.result)  # repro-lint: disable=REP101
        with self._outstanding_lock:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._all_done.set()

    def _worker_loop(self, worker_id: int) -> None:
        while not self._shutdown.is_set():
            if not self._find_and_run_work(worker_id):
                time.sleep(0.0002)  # idle back-off (the NONAP busy-spin)

    def _run_task(
        self, worker_id: int, task: Callable[[], None], stolen: bool
    ) -> None:
        kernel = None
        if self._emit is not None:
            kernel = getattr(task, "kernel", None)
            self._emit(
                Event(
                    EventKind.TASK_START,
                    time.monotonic_ns(),
                    worker_id,
                    {"stolen": stolen, "kernel": kernel},
                )
            )
        task()
        with self._stats.lock:
            self._stats.tasks_executed[worker_id] += 1
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.TASK_FINISH,
                    time.monotonic_ns(),
                    worker_id,
                    {"stolen": stolen, "kernel": kernel},
                )
            )

    def _span(self, worker_id: int, kind: EventKind, name: str, data: dict) -> None:
        """Emit one profiling-span edge from a worker thread."""
        self._emit(
            Event(
                kind,
                time.monotonic_ns(),
                worker_id,
                {"name": name, "cat": "kernel", **data},
            )
        )

    def _steal_task(self, worker_id: int) -> Callable[[], None] | None:
        """Try every victim once; returns the stolen task, if any."""
        for victim in self._policy.victim_order(worker_id):
            task = self._locals[victim].steal()
            if task is not None:
                with self._stats.lock:
                    self._stats.steals[worker_id] += 1
                if self._emit is not None:
                    self._emit(
                        Event(
                            EventKind.STEAL,
                            time.monotonic_ns(),
                            worker_id,
                            {"victim": victim},
                        )
                    )
                return task
        return None

    def _find_and_run_work(self, worker_id: int) -> bool:
        """One scheduling step; returns False when no work was found."""
        # 1. Local tasks first.
        task = self._locals[worker_id].pop()
        if task is not None:
            self._run_task(worker_id, task, stolen=False)
            return True
        # 2. Global user queue beats stealing.
        entry = self._global.get()
        if entry is not None:
            pending, user_slice = entry
            self._process_user(worker_id, pending, user_slice)
            return True
        # 3. Steal.
        task = self._steal_task(worker_id)
        if task is not None:
            self._run_task(worker_id, task, stolen=True)
            return True
        return False

    def _process_user(
        self, worker_id: int, pending: _PendingSubframe, user_slice: UserSlice
    ) -> None:
        """Become the user thread for one user (Section IV-C)."""
        with self._stats.lock:
            self._stats.users_processed[worker_id] += 1
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_START,
                    time.monotonic_ns(),
                    worker_id,
                    {
                        "subframe": pending.subframe.subframe_index,
                        "user": user_slice.user.user_id,
                    },
                )
            )
        job = UserJob(
            user_slice, pending.subframe.grid, config=self.config, codec=self.codec
        )
        # Each Fig. 5 stage is bracketed by a kernel span on the user
        # thread (fork to join for the parallel stages); the per-task
        # events inside carry the same kernel label so both the join-level
        # and task-level views attribute time to the same kernels.
        ids = {
            "subframe": pending.subframe.subframe_index,
            "user": user_slice.user.user_id,
        }
        emitting = self._emit is not None and self.emit_spans
        if emitting:
            self._span(worker_id, EventKind.SPAN_BEGIN, "chest", ids)
        self._run_stage(worker_id, job.chest_tasks(), kernel="chest")
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "chest", ids)
            self._span(worker_id, EventKind.SPAN_BEGIN, "combiner", ids)
        job.run_combiner()
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "combiner", ids)
            self._span(worker_id, EventKind.SPAN_BEGIN, "symbol", ids)
        self._run_stage(worker_id, job.data_tasks(), kernel="symbol")
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "symbol", ids)
            self._span(worker_id, EventKind.SPAN_BEGIN, "finalize", ids)
        result = job.finalize()
        if emitting:
            self._span(worker_id, EventKind.SPAN_END, "finalize", ids)
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.USER_FINISH,
                    time.monotonic_ns(),
                    worker_id,
                    {
                        "subframe": pending.subframe.subframe_index,
                        "user": user_slice.user.user_id,
                    },
                )
            )
        with pending.lock:
            pending.result.user_results.append(result)
            pending.remaining_users -= 1
            done = pending.remaining_users == 0
        if done:
            self._finish_subframe(pending)

    def _run_stage(
        self,
        worker_id: int,
        tasks: list[Callable[[], None]],
        kernel: str | None = None,
    ) -> None:
        """Push a stage's tasks locally, process until empty, join."""
        latch = _Latch(len(tasks))

        def wrap(task: Callable[[], None]) -> Callable[[], None]:
            def run() -> None:
                try:
                    task()
                finally:
                    latch.count_down()

            run.kernel = kernel
            return run

        self._locals[worker_id].push_all([wrap(t) for t in tasks])
        while True:
            task = self._locals[worker_id].pop()
            if task is None:
                break
            self._run_task(worker_id, task, stolen=False)
        # Other workers may still hold stolen tasks; help elsewhere while
        # waiting ("the user thread waits until the results from all tasks
        # become available").
        latch.wait(help_while_waiting=lambda: self._help_once(worker_id))

    def _help_once(self, worker_id: int) -> bool:
        """Steal one task from somewhere while blocked on a join."""
        task = self._steal_task(worker_id)
        if task is not None:
            self._run_task(worker_id, task, stolen=True)
            return True
        return False
