"""Work-stealing queues (Section IV-C).

"Each worker thread has a local task queue, and if no work exists in its
own queue, it tries to steal work from another worker thread. ... Before a
worker thread tries to steal work from another thread, it first checks the
global user queue."

The local queue is owner-LIFO / thief-FIFO (the classic Chase–Lev
discipline): the owner pushes and pops at the bottom for locality, thieves
take from the top so they grab the oldest — typically largest — work.
Python-level locking stands in for the lock-free algorithm; the scheduling
behaviour is identical.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from ..obs.lockdep import tracked_lock

T = TypeVar("T")

__all__ = ["WorkStealingDeque", "GlobalQueue"]


class WorkStealingDeque(Generic[T]):
    """A lock-protected work-stealing deque."""

    def __init__(self) -> None:
        self._items: deque[T] = deque()  # guarded-by: _lock
        self._lock = tracked_lock("WorkStealingDeque._lock")

    def push(self, item: T) -> None:
        """Owner: push a task at the bottom."""
        with self._lock:
            self._items.append(item)

    def push_all(self, items: list[T]) -> None:
        """Owner: push several tasks at once."""
        with self._lock:
            self._items.extend(items)

    def pop(self) -> T | None:
        """Owner: take the most recently pushed task (LIFO), or None."""
        with self._lock:
            if self._items:
                return self._items.pop()
        return None

    def steal(self) -> T | None:
        """Thief: take the oldest task (FIFO), or None."""
        with self._lock:
            if self._items:
                return self._items.popleft()
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class GlobalQueue(Generic[T]):
    """The global user queue subframes are dispatched onto.

    The maintenance thread enqueues every scheduled user of a subframe;
    idle workers dequeue one user each and become that user's "user
    thread".
    """

    def __init__(self) -> None:
        self._items: deque[T] = deque()  # guarded-by: _lock
        self._lock = tracked_lock("GlobalQueue._lock")

    def put_subframe(self, users: list[T]) -> None:
        """Dispatch a whole subframe's users atomically."""
        with self._lock:
            self._items.extend(users)

    def get(self) -> T | None:
        """Dequeue one user (FIFO), or None when empty."""
        with self._lock:
            if self._items:
                return self._items.popleft()
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
