"""True-parallel multiprocess runtime with shared-memory subframe grids.

The threaded runtime (:mod:`repro.sched.threaded`) proves functional
correctness of the parallel decomposition but is GIL-capped: its wall
clock never beats one core's worth of Python. This runtime escapes the
GIL the way real SDR stacks do — a ``spawn``-based process pool where
each worker owns a whole *shape group* (the batching unit of
:mod:`repro.uplink.vectorized`) and runs the batched NumPy chain on it,
so throughput scales with cores while results stay bit-exact with the
serial reference.

Data movement is engineered around ``multiprocessing.shared_memory``:

* **received grids** — the parent copies each subframe's complex grid
  into a shared segment once (deduplicated by grid identity, so pooled
  grids are shared, not re-copied per subframe); workers attach and read
  zero-copy. Segments are reference-counted and unlinked when the last
  subframe using one resolves.
* **DMRS banks** — conjugated Zadoff–Chu banks for every allocation
  shape in flight are packed into shared slabs and *seeded* into each
  worker's :func:`repro.phy.batched.seed_dmrs_bank` cache, so no worker
  recomputes (or privately copies) a sequence the parent already built.
* **results** — each worker owns one shared output slab; decoded
  payloads and LLRs are written there and only small descriptors travel
  over the control pipe (with an inline fallback, counted in
  ``stats.slab_overflows``, when a group outgrows the slab).

Control flow is a single-threaded parent event loop over per-worker
duplex pipes plus process sentinels (``multiprocessing.connection.wait``
covers both). Per-worker pipes — not a shared queue — because a
``SIGKILL``-ed worker must not be able to corrupt a stream other workers
share, and ``Connection.send`` has no feeder thread to die mid-write.
One task is outstanding per worker at a time, which also serializes
reuse of that worker's output slab.

Fault semantics mirror the threaded runtime, but worker death is *real*:
a planned ``WORKER_DEATH`` fault makes the worker ``SIGKILL`` itself,
the parent detects the corpse via its sentinel, reclaims the orphaned
shape group (bounded by the retry budget), and keeps the
:class:`~repro.faults.accounting.SubframeLedger` balanced — every
dispatched subframe still reaches exactly one terminal state. By default
dead workers are not respawned (matching the threaded runtime); when the
last one dies, outstanding subframes are aborted loudly. The opt-in
``respawn=`` knob attaches a
:class:`~repro.serve.supervisor.WorkerSupervisor` that turns the pool
into a self-healing service: dead slots are respawned with exponential
backoff under a rolling restart budget, orphaned groups stay queued for
the replacement, and crash-loop detection degrades back to the fail-stop
semantics above when the budget is exhausted. Replay fingerprints of
existing chaos scenarios are unaffected because the default stays
fail-stop.

Events reuse the existing schema with a ``process_id`` payload dimension
(worker OS pids). Worker-side kernel timestamps are taken with
:func:`repro.faults.watchdog.monotonic_ns`, which on Linux reads the
system-wide ``CLOCK_MONOTONIC`` — directly comparable with the parent's
timestamps, so :mod:`repro.obs.timeline` renders one coherent
cross-process timeline with per-process lanes.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context, resource_tracker
from multiprocessing.connection import wait as _connection_wait
from multiprocessing.shared_memory import SharedMemory
from typing import Any

import numpy as np

from ..faults.accounting import SubframeLedger, TerminalState
from ..faults.watchdog import (
    ResilienceConfig,
    RuntimeHung,
    WorkerFailure,
    monotonic_ns,
    ns_from_s,
)
from ..obs.events import Event, EventKind
from ..phy.batched import dmrs_bank, seed_dmrs_bank
from ..phy.chain import UserResult
from ..phy.chest import ChestConfig
from ..phy.dtypes import COMPLEX_DTYPE
from ..uplink.serial import SubframeResult
from ..uplink.subframe import SubframeInput, UserSlice
from ..uplink.vectorized import group_slices_by_shape, process_group
from .threaded import WorkerFailuresError

__all__ = [
    "DEFAULT_SLAB_BYTES",
    "MultiprocessRuntime",
    "MultiprocessStats",
]

#: Per-worker shared output slab size. Sized for the largest default
#: scenario group (tens of users × ~1 MB of LLRs each) with headroom;
#: overflowing groups fall back to inline pickles and are counted.
DEFAULT_SLAB_BYTES = 16 << 20

_ALIGN = 16  # complex128 itemsize; keeps every array offset aligned


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _attach_shm(name: str) -> SharedMemory:
    """Attach to a parent-owned segment without adopting its lifecycle.

    Python ≤ 3.12 registers *attached* (not just created) segments with
    the resource tracker as if the attacher owned them (bpo-38119) — and
    spawn children share the parent's tracker process, so the duplicate
    registration collapses into the parent's entry and a later child-side
    ``unregister`` would strip the parent's own bookkeeping. Suppress the
    registration for the duration of the attach instead: the parent owns
    every segment's lifecycle.
    """
    real_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return SharedMemory(name=name)
    finally:
        resource_tracker.register = real_register


# --------------------------------------------------------------- worker side
class _StageSpan:
    """Context manager recording one kernel stage's monotonic-ns window."""

    __slots__ = ("kernel", "batch", "out", "begin")

    def __init__(self, kernel: str, batch: int, out: list) -> None:
        self.kernel = kernel
        self.batch = batch
        self.out = out

    def __enter__(self) -> "_StageSpan":
        self.begin = monotonic_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self.out.append((self.kernel, self.begin, monotonic_ns(), self.batch))
        return False


def _seed_banks(name: str, index: dict) -> SharedMemory:
    """Install the parent's shared DMRS banks into this worker's cache."""
    shm = _attach_shm(name)
    for (num_sc, layers), (offset, shape) in index.items():
        view = np.ndarray(shape, dtype=COMPLEX_DTYPE, buffer=shm.buf, offset=offset)
        seed_dmrs_bank(num_sc, layers, view)
    return shm


def _pack_results(
    results: list[UserResult], slab: SharedMemory
) -> tuple[list[dict], int]:
    """Write result arrays into the worker's slab; descriptors travel.

    Returns ``(descriptors, overflow_count)``. When the slab runs out,
    remaining users fall back to inline ndarray pickles — correctness is
    never traded for the zero-copy path.
    """
    cursor = 0
    size = slab.size
    packed: list[dict] = []
    overflowed = 0
    for result in results:
        payload = np.ascontiguousarray(result.payload)
        llrs = np.ascontiguousarray(result.llrs)
        need = _aligned(payload.nbytes) + _aligned(llrs.nbytes)
        entry = {"user": result.user_id, "crc_ok": bool(result.crc_ok)}
        if cursor + need > size:
            entry["inline"] = (payload, llrs)
            overflowed += 1
            packed.append(entry)
            continue
        for label, array in (("payload", payload), ("llrs", llrs)):
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=slab.buf, offset=cursor
            )
            view[...] = array
            entry[label] = (cursor, array.shape, str(array.dtype))
            cursor += _aligned(array.nbytes)
        packed.append(entry)
    return packed, overflowed


def _build_shard(
    results: list[UserResult],
    stage_ns: list[tuple[str, int, int, int]],
    telemetry: dict,
) -> dict:
    """Sketch this task's work locally; the parent exact-merges shards.

    Sketches live in an ``mp_``-prefixed namespace so they never collide
    with the parent's event-derived sketches (the parent re-emits stage
    events, which would double-count otherwise). ``mp_user_payload_bits``
    is deterministic (payload sizes, not timings), which is what the
    differential suite compares against a serial reference.
    """
    from ..obs.telemetry import QuantileSketch

    accuracy = telemetry.get("relative_accuracy", 0.01)
    sketches: dict[str, QuantileSketch] = {}

    def sketch(name: str) -> QuantileSketch:
        found = sketches.get(name)
        if found is None:
            found = sketches[name] = QuantileSketch(accuracy)
        return found

    for kernel, begin, end, _batch in stage_ns:
        sketch(f"mp_kernel_{kernel}").observe(float(end - begin))
    for result in results:
        sketch("mp_user_payload_bits").observe(float(result.payload.size))
    return {
        "sketches": {name: s.to_dict() for name, s in sketches.items()},
        "counters": {
            "mp_worker_tasks": 1,
            "mp_worker_users": len(results),
        },
    }


def _execute_task(
    task: dict,
    grids: dict[str, tuple[SharedMemory, np.ndarray]],
    config: ChestConfig | None,
    codec,
    slab: SharedMemory,
    telemetry: dict | None = None,
) -> tuple:
    """Run one shape group against the shared grid; reply over the pipe."""
    task_id = task["task_id"]
    if task.get("die"):
        # Real worker death, not an exception: the parent must detect the
        # corpse via the process sentinel and reclaim the orphaned group.
        os.kill(os.getpid(), signal.SIGKILL)
    hang_s = task.get("hang_s")
    if hang_s:
        time.sleep(hang_s)
    if task.get("raise_exc"):
        return ("err", task_id, "InjectedTaskError: planned task failure", True)
    try:
        name, shape = task["grid"]
        entry = grids.get(name)
        if entry is None:
            shm = _attach_shm(name)
            view = np.ndarray(tuple(shape), dtype=COMPLEX_DTYPE, buffer=shm.buf)
            view.setflags(write=False)
            entry = grids[name] = (shm, view)
        grid = entry[1]
        slices = [
            UserSlice(user=user, subcarrier_offset=offset)
            for user, offset in task["users"]
        ]
        stacked = np.stack([s.view(grid) for s in slices])
        stage_ns: list[tuple[str, int, int, int]] = []
        results = process_group(
            stacked,
            slices[0].user.allocation,
            [s.user.user_id for s in slices],
            config,
            codec,
            None,
            lambda kernel, batch: _StageSpan(kernel, batch, stage_ns),
        )
        packed, overflowed = _pack_results(results, slab)
        shard = (
            _build_shard(results, stage_ns, telemetry)
            if telemetry is not None
            else None
        )
        return ("ok", task_id, packed, overflowed, stage_ns, shard)
    except Exception as exc:
        return ("err", task_id, f"{type(exc).__name__}: {exc}", False)


def _worker_main(worker_id: int, conn, init: dict) -> None:
    """Spawn entry point: serve tasks from the parent until told to stop."""
    slab = _attach_shm(init["slab"])
    grids: dict[str, tuple[SharedMemory, np.ndarray]] = {}
    banks: list[SharedMemory] = []
    config = init["config"]
    codec = init["codec"]
    telemetry = init.get("telemetry")
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            kind = message[0]
            if kind == "banks":
                banks.append(_seed_banks(message[1], message[2]))
            elif kind == "forget":
                for name in message[1]:
                    entry = grids.pop(name, None)
                    if entry is not None:
                        entry[0].close()
            else:  # ("task", {...})
                conn.send(
                    _execute_task(
                        message[1], grids, config, codec, slab, telemetry
                    )
                )
    except (EOFError, BrokenPipeError, KeyboardInterrupt) as exc:
        # Parent vanished or interactive interrupt: nothing to report to
        # (the pipe is gone) — fall through to cleanup and exit 0 so the
        # parent's join sees an orderly shutdown, not a crash.
        del exc
    finally:
        for shm, _ in grids.values():
            shm.close()
        for shm in banks:
            shm.close()
        slab.close()
        conn.close()


# --------------------------------------------------------------- parent side
@dataclass
class MultiprocessStats:
    """Counters for one multiprocess run.

    Unlike :class:`~repro.sched.threaded.RuntimeStats` these carry no
    lock: only the single-threaded parent event loop mutates them.
    ``retries``/``aborted_users`` count *users* (a reclaimed shape group
    charges each of its users once), keeping the units comparable with
    the threaded runtime's per-user accounting.
    """

    tasks_executed: list[int] = field(default_factory=list)
    users_processed: list[int] = field(default_factory=list)
    retries: int = 0
    aborted_users: int = 0
    worker_deaths: int = 0
    slab_overflows: int = 0
    respawns: int = 0

    @property
    def total_tasks(self) -> int:
        return sum(self.tasks_executed)


@dataclass
class _GridShare:
    """One shared grid segment, reference-counted across subframes."""

    shm: SharedMemory
    key: int  # id() of the source ndarray while any referencing run lives
    refs: int = 0


@dataclass
class _PendingSubframe:
    """Parent-side completion state for one dispatched subframe."""

    subframe: SubframeInput
    remaining_users: int
    ordered: list  # position -> UserResult | None
    grid_share: _GridShare | None = None
    deadline_ns: int | None = None
    resolved: bool = False
    aborted_ids: list[int] = field(default_factory=list)
    task_retries: dict[int, int] = field(default_factory=dict)


@dataclass
class _WorkerHandle:
    worker_id: int
    # Any, not object: the spawn context's Process/Connection classes are
    # picked at runtime and mypy cannot see their methods through object.
    process: Any
    conn: Any
    pid: int
    slab: SharedMemory
    busy: dict | None = None  # the task currently dispatched to it
    dead: bool = False
    expect_death: bool = False  # a die-task was sent: death is planned
    busy_since_ns: int = 0  # when the current task was dispatched
    heartbeat_killed: bool = False  # supervisor killed it as wedged


class MultiprocessRuntime:
    """Spawn-pool execution of the benchmark on real processes.

    API mirrors :class:`~repro.sched.threaded.ThreadedRuntime`
    (``start``/``submit``/``drain``/``stop``/``run``/``collect_results``
    plus context-manager use), so the CLI, bench harness, and chaos
    campaigns drive both through the same surface. The pool persists
    across ``run()`` calls between :meth:`start` and :meth:`close`, which
    amortizes spawn cost (each worker re-imports NumPy) across the
    differential matrix.

    Parameters
    ----------
    num_workers:
        Worker process count. Throughput scales with physical cores;
        there is no GIL in the way.
    config, codec:
        Forwarded to the batched receiver chain inside each worker (must
        be picklable — both defaults are).
    observers:
        Optional event observers; events carry a ``process_id`` payload
        field and are emitted *only from the parent's event loop*, so
        observers here never see concurrent calls.
    emit_spans:
        Also emit ``SPAN_BEGIN``/``SPAN_END`` pairs (per subframe and per
        kernel stage) alongside task/user events.
    faults:
        Optional :class:`~repro.faults.injector.ThreadFaultInjector` (or
        bare :class:`~repro.faults.plan.FaultPlan`). ``WORKER_DEATH``
        becomes a real self-``SIGKILL`` in the target worker;
        ``WORKER_HANG`` sleeps inside the worker; ``TASK_EXCEPTION``
        fails the dispatched group without executing it.
    resilience:
        Retry budget, per-subframe wall deadline, poll cadence, and
        drain timeout (:class:`~repro.faults.watchdog.ResilienceConfig`).
    ledger:
        Optional externally-owned ledger; a fresh one is created at
        :meth:`start` otherwise.
    slab_bytes:
        Per-worker shared output slab size (see module docstring).
    respawn:
        Opt into supervised worker respawn. ``True`` uses the default
        :class:`~repro.serve.supervisor.RespawnPolicy`; a policy instance
        customizes backoff/budget/heartbeat; a ready
        :class:`~repro.serve.supervisor.WorkerSupervisor` (anything with
        ``record_death``) is used as-is. ``None``/``False`` keeps the
        historical fail-stop semantics.
    """

    def __init__(
        self,
        num_workers: int = 2,
        config: ChestConfig | None = None,
        codec=None,
        observers=None,
        emit_spans: bool = True,
        faults=None,
        resilience: ResilienceConfig | None = None,
        ledger: SubframeLedger | None = None,
        slab_bytes: int = DEFAULT_SLAB_BYTES,
        respawn=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if slab_bytes < 4096:
            raise ValueError("slab_bytes must be >= 4096")
        self.num_workers = num_workers
        self.config = config
        self.codec = codec
        self.slab_bytes = slab_bytes
        if faults is not None and not hasattr(faults, "check_worker_death"):
            from ..faults.injector import ThreadFaultInjector

            faults = ThreadFaultInjector(faults)
        self._faults = faults
        self._resilience = resilience or ResilienceConfig()
        self._external_ledger = ledger
        self.ledger: SubframeLedger = ledger or SubframeLedger()
        self.emit_spans = emit_spans
        self.observers = list(observers) if observers is not None else []
        # Observers exposing merge_shard (TelemetryCollector, SLOEngine)
        # opt the workers into local sketching; shards ride the existing
        # reply pipe and are exact-merged here in the parent.
        self._merge_observers = [
            observer
            for observer in self.observers
            if hasattr(observer, "merge_shard")
        ]
        if not self.observers:
            self._emit = None
        elif len(self.observers) == 1:
            self._emit = self.observers[0]
        else:
            fanout = tuple(self.observers)

            def emit(event, _observers=fanout):
                for observer in _observers:
                    observer(event)

            self._emit = emit
        self._ctx = get_context("spawn")
        self._workers: list[_WorkerHandle] = []
        self._spawned_pids: list[int] = []
        self._started = False
        self._queue: deque[dict] = deque()
        self._pending: dict[int, _PendingSubframe] = {}
        self._completed: list[SubframeResult] = []
        self._outstanding = 0
        self._failures: list[WorkerFailure] = []
        self._late_completions = 0
        self._next_task_id = 0
        self._grid_shares: dict[int, _GridShare] = {}
        self._bank_shms: list[SharedMemory] = []
        self._shipped_banks: set[tuple[int, int]] = set()
        # Every ("banks", name, index) broadcast ever made, retained so a
        # respawned worker — which missed them all — can be re-seeded.
        self._bank_shipments: list[tuple[str, dict]] = []
        self._worker_init: dict = {}
        self._supervisor = None
        if respawn:
            if hasattr(respawn, "record_death"):
                self._supervisor = respawn
            else:
                # Deferred import: sched must not depend on serve at
                # module level (serve already imports sched).
                from ..serve.supervisor import RespawnPolicy, WorkerSupervisor

                policy = (
                    respawn
                    if isinstance(respawn, RespawnPolicy)
                    else RespawnPolicy()
                )
                self._supervisor = WorkerSupervisor(policy, num_workers)
        self._stats = MultiprocessStats(
            tasks_executed=[0] * num_workers,
            users_processed=[0] * num_workers,
        )

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        """Spawn the worker pool (expensive: each child re-imports NumPy)."""
        if self._started:
            raise RuntimeError("runtime already started")
        if self._external_ledger is None:
            self.ledger = SubframeLedger()
        self._failures.clear()
        init = {"config": self.config, "codec": self.codec}
        if self._merge_observers:
            accuracy = min(
                getattr(observer, "relative_accuracy", 0.01)
                for observer in self._merge_observers
            )
            init["telemetry"] = {"relative_accuracy": accuracy}
        self._worker_init = init
        try:
            for worker_id in range(self.num_workers):
                self._workers.append(self._spawn_worker(worker_id))
        except BaseException:
            # A later spawn failed: without this, the slabs of the workers
            # that *did* start would leak (close() is a no-op before
            # _started is set). Found by dogfooding REP511.
            self._started = True
            self.close()
            raise
        self._spawned_pids = [worker.pid for worker in self._workers]
        self._started = True

    def _spawn_worker(self, worker_id: int) -> _WorkerHandle:
        """Spawn one worker process into the given slot id."""
        slab = SharedMemory(create=True, size=self.slab_bytes)
        try:
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    child_conn,
                    {**self._worker_init, "slab": slab.name},
                ),
                daemon=True,
                name=f"repro-mp-worker-{worker_id}",
            )
            process.start()
        except BaseException:
            # This worker's slab has no _WorkerHandle yet; nothing else
            # will ever release it.
            slab.close()
            slab.unlink()
            raise
        child_conn.close()  # keep one writer so EOF propagates on death
        return _WorkerHandle(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            pid=process.pid,
            slab=slab,
        )

    def close(self) -> None:
        """Shut the pool down and release every shared segment."""
        if not self._started:
            return
        for worker in self._workers:
            if not worker.dead:
                self._send(worker, None)
        timeout = self._resilience.join_timeout_s
        for worker in self._workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.conn.close()
            worker.slab.close()
            worker.slab.unlink()
        for shm in self._bank_shms:
            shm.close()
            shm.unlink()
        self._bank_shms.clear()
        self._shipped_banks.clear()
        self._bank_shipments.clear()
        for share in self._grid_shares.values():
            share.shm.close()
            share.shm.unlink()
        self._grid_shares.clear()
        self._workers.clear()
        self._queue.clear()
        self._started = False

    # ThreadedRuntime API parity.
    stop = close

    def abort(self) -> None:
        """Emergency shutdown: account outstanding subframes, kill the pool."""
        for pending in list(self._pending.values()):
            self._finish_subframe(
                pending,
                forced_state=TerminalState.ABORTED,
                reason="runtime aborted",
            )
        self._queue.clear()
        self.close()

    def __enter__(self) -> "MultiprocessRuntime":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def submit(self, subframe: SubframeInput) -> None:
        """Dispatch one subframe: share its grid, enqueue its shape groups."""
        if not self._started:
            raise RuntimeError("runtime not started")
        index = subframe.subframe_index
        pending = _PendingSubframe(
            subframe=subframe,
            remaining_users=len(subframe.slices),
            ordered=[None] * len(subframe.slices),
        )
        if self._resilience.deadline_s is not None:
            pending.deadline_ns = monotonic_ns() + ns_from_s(
                self._resilience.deadline_s
            )
        self.ledger.dispatch(index, len(subframe.slices))
        self._pending[index] = pending
        self._outstanding += 1
        if self._emit is not None:
            now = monotonic_ns()
            self._emit(
                Event(
                    EventKind.DISPATCH,
                    now,
                    -1,
                    {
                        "subframe": index,
                        "users": len(subframe.slices),
                        "process_id": os.getpid(),
                    },
                )
            )
            if self.emit_spans:
                self._emit(
                    Event(
                        EventKind.SPAN_BEGIN,
                        now,
                        -1,
                        {
                            "name": f"subframe {index}",
                            "cat": "subframe",
                            "subframe": index,
                            "process_id": os.getpid(),
                        },
                    )
                )
        if not subframe.slices:
            self._finish_subframe(pending)
            return
        share = self._share_grid(subframe.grid)
        share.refs += 1
        pending.grid_share = share
        self._ship_banks(subframe.slices)
        for group in group_slices_by_shape(subframe.slices):
            positions = [position for position, _ in group]
            slices = [user_slice for _, user_slice in group]
            task_id = self._next_task_id
            self._next_task_id += 1
            self._queue.append(
                {
                    "task_id": task_id,
                    "pending": pending,
                    "positions": positions,
                    "slices": slices,
                    "wire": {
                        "task_id": task_id,
                        "subframe": index,
                        "grid": (share.shm.name, subframe.grid.shape),
                        "users": [
                            (s.user, s.subcarrier_offset) for s in slices
                        ],
                    },
                }
            )
        self._pump(0.0)

    def drain(self, timeout: float | None = None) -> None:
        """Pump the event loop until every submitted subframe resolved.

        Raises :class:`~repro.sched.threaded.WorkerFailuresError` on
        unexpected (non-injected) worker deaths and
        :class:`~repro.faults.watchdog.RuntimeHung` when ``timeout`` (or
        the configured ``drain_timeout_s``) expires first.
        """
        if timeout is None:
            timeout = self._resilience.drain_timeout_s
        deadline = (
            monotonic_ns() + ns_from_s(timeout) if timeout is not None else None
        )
        poll = self._resilience.watchdog_poll_s
        while self._outstanding > 0:
            if all(worker.dead for worker in self._workers) and not (
                self._supervisor is not None and self._supervisor.pending
            ):
                # Nobody left to do the work and no respawn scheduled:
                # account it as aborted instead of spinning until the
                # drain timeout.
                for pending in list(self._pending.values()):
                    self._finish_subframe(
                        pending,
                        forced_state=TerminalState.ABORTED,
                        reason="all workers dead",
                    )
                break
            self._pump(poll)
            if deadline is not None and monotonic_ns() >= deadline:
                self._raise_on_fatal()
                raise RuntimeHung(
                    f"drain timed out after {timeout}s with "
                    f"{self._outstanding} subframe(s) outstanding"
                )
        self._raise_on_fatal()

    def run(self, subframes: list[SubframeInput]) -> list[SubframeResult]:
        """Convenience: start (if needed), submit all, drain, collect.

        When this call started the pool it also closes it; an externally
        ``start()``-ed pool stays up so callers can amortize spawn cost
        over several runs.
        """
        owns_pool = not self._started
        if owns_pool:
            self.start()
        try:
            for subframe in subframes:
                self.submit(subframe)
            self.drain()
        except BaseException:
            if owns_pool:
                self.abort()
            raise
        if owns_pool:
            self.close()
        return self.collect_results()

    def await_respawns(self, timeout_s: float = 5.0) -> bool:
        """Pump until no respawn is pending (or ``timeout_s`` expires).

        Lets callers that will :meth:`close` right after :meth:`drain`
        observe a deterministic respawn count: a death near the end of a
        run schedules a respawn whose backoff may outlive the last
        subframe. Returns ``True`` when nothing is left pending.
        """
        if self._supervisor is None:
            return True
        deadline = monotonic_ns() + ns_from_s(timeout_s)
        while self._supervisor.pending and monotonic_ns() < deadline:
            self._pump(self._resilience.watchdog_poll_s)
        return not self._supervisor.pending

    def collect_results(self) -> list[SubframeResult]:
        """Return and clear completed results, ordered by subframe index."""
        if self._started:
            self.drain()
        results = sorted(self._completed, key=lambda r: r.subframe_index)
        self._completed.clear()
        return results

    @property
    def stats(self) -> MultiprocessStats:
        return self._stats

    @property
    def supervisor(self):
        """The attached :class:`WorkerSupervisor`, or ``None``."""
        return self._supervisor

    @property
    def failures(self) -> list[WorkerFailure]:
        """Worker failures recorded so far (injected and unexpected)."""
        return list(self._failures)

    @property
    def late_completions(self) -> int:
        """Results that arrived after their subframe was already resolved."""
        return self._late_completions

    @property
    def process_ids(self) -> list[int]:
        """OS pids of the pool, indexed by worker id (for tests/traces).

        Survives :meth:`close` so callers can correlate a finished run's
        event stream (``process_id`` payloads) with the pool that
        produced it.
        """
        return list(self._spawned_pids)

    # ------------------------------------------------------------ event loop
    def _pump(self, timeout_s: float) -> None:
        """One event-loop step: dispatch, then collect results and deaths."""
        self._check_deadlines()
        self._service_supervisor()
        self._dispatch_ready()
        live = [worker for worker in self._workers if not worker.dead]
        if not live:
            if self._supervisor is not None and self._supervisor.pending:
                # Every slot is dead but a respawn is scheduled: wait out
                # (part of) the backoff instead of busy-spinning callers.
                if timeout_s > 0:
                    time.sleep(min(timeout_s, 0.005))
            return
        waitables: dict[object, _WorkerHandle] = {}
        for worker in live:
            waitables[worker.conn] = worker
            waitables[worker.process.sentinel] = worker
        for obj in _connection_wait(list(waitables), timeout=timeout_s):
            worker = waitables[obj]
            if worker.dead:
                continue
            # Drain any replies first either way: a result sent just
            # before death must not be lost to the sentinel firing first.
            self._drain_conn(worker)
            if obj is not worker.conn and not worker.process.is_alive():
                self._handle_worker_death(worker)
        self._check_deadlines()
        self._dispatch_ready()

    def _dispatch_ready(self) -> None:
        for worker in self._workers:
            if worker.dead or worker.busy is not None:
                continue
            task = self._next_task()
            if task is None:
                return
            self._dispatch(worker, task)

    def _next_task(self) -> dict | None:
        while self._queue:
            task = self._queue.popleft()
            if not task["pending"].resolved:
                return task
        return None

    def _dispatch(self, worker: _WorkerHandle, task: dict) -> None:
        wire = dict(task["wire"])  # fault flags are per-dispatch
        index = wire["subframe"]
        faults = self._faults
        if faults is not None:
            if faults.check_worker_death(worker.worker_id, index):
                self._emit_fault("worker-death", worker, index)
                wire["die"] = True
                worker.expect_death = True
            else:
                hang_s = faults.check_worker_hang(worker.worker_id, index)
                if hang_s is not None:
                    self._emit_fault("worker-hang", worker, index)
                    wire["hang_s"] = hang_s
                if faults.check_task_exception(worker.worker_id, index):
                    self._emit_fault("task-exception", worker, index)
                    wire["raise_exc"] = True
        if self._emit is not None:
            now = monotonic_ns()
            for user_slice in task["slices"]:
                self._emit(
                    Event(
                        EventKind.USER_START,
                        now,
                        worker.worker_id,
                        {
                            "subframe": index,
                            "user": user_slice.user.user_id,
                            "process_id": worker.pid,
                        },
                    )
                )
        worker.busy = task
        worker.busy_since_ns = monotonic_ns()
        self._send(worker, ("task", wire))

    def _drain_conn(self, worker: _WorkerHandle) -> None:
        while not worker.dead and worker.conn.poll(0):
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._handle_worker_death(worker)
                return
            self._handle_reply(worker, message)

    def _handle_reply(self, worker: _WorkerHandle, message: tuple) -> None:
        task = worker.busy
        worker.busy = None
        if task is None or task["task_id"] != message[1]:
            raise RuntimeError(
                f"worker {worker.worker_id} protocol desync: reply for task "
                f"{message[1]} while {task['task_id'] if task else None} "
                "was outstanding"
            )
        if message[0] == "ok":
            _, _, packed, overflowed, stage_ns, shard = message
            if self._supervisor is not None:
                # Completed real work: reset this slot's consecutive-death
                # backoff so a much-later crash starts from the initial one.
                self._supervisor.note_progress(worker.worker_id)
            self._stats.slab_overflows += overflowed
            self._stats.tasks_executed[worker.worker_id] += len(stage_ns)
            self._stats.users_processed[worker.worker_id] += len(
                task["positions"]
            )
            self._complete_task(worker, task, packed, stage_ns, shard)
        else:  # ("err", task_id, error, injected)
            self._requeue_or_abort_task(worker, task, message[2])

    def _complete_task(
        self,
        worker: _WorkerHandle,
        task: dict,
        packed: list[dict],
        stage_ns: list,
        shard: dict | None = None,
    ) -> None:
        pending = task["pending"]
        index = pending.subframe.subframe_index
        self._emit_stage_events(worker, index, len(task["positions"]), stage_ns)
        results = self._unpack_results(worker, packed)
        if pending.resolved:
            self._late_completions += len(results)
            return
        # Merge after the late-completion gate: a task whose subframe was
        # already resolved (deadline abort) must not contribute, so every
        # user's work is counted exactly once — killed workers never
        # reply, and their retried task re-sketches on another worker.
        if shard is not None:
            for observer in self._merge_observers:
                observer.merge_shard(shard)
        if self._emit is not None:
            now = monotonic_ns()
            for result in results:
                self._emit(
                    Event(
                        EventKind.USER_FINISH,
                        now,
                        worker.worker_id,
                        {
                            "subframe": index,
                            "user": result.user_id,
                            "process_id": worker.pid,
                        },
                    )
                )
        for position, result in zip(task["positions"], results):
            pending.ordered[position] = result
        pending.remaining_users -= len(results)
        if pending.remaining_users == 0:
            self._finish_subframe(pending)

    def _emit_stage_events(
        self, worker: _WorkerHandle, index: int, users: int, stage_ns: list
    ) -> None:
        if self._emit is None:
            return
        for kernel, begin, end, batch in stage_ns:
            data = {
                "kernel": kernel,
                "stolen": False,
                "subframe": index,
                "batch": batch,
                "process_id": worker.pid,
            }
            if self.emit_spans:
                self._emit(
                    Event(
                        EventKind.SPAN_BEGIN,
                        begin,
                        worker.worker_id,
                        {
                            "name": kernel,
                            "cat": "kernel",
                            "subframe": index,
                            "users": users,
                            "process_id": worker.pid,
                        },
                    )
                )
            self._emit(
                Event(EventKind.TASK_START, begin, worker.worker_id, data)
            )
            self._emit(
                Event(EventKind.TASK_FINISH, end, worker.worker_id, data)
            )
            if self.emit_spans:
                self._emit(
                    Event(
                        EventKind.SPAN_END,
                        end,
                        worker.worker_id,
                        {
                            "name": kernel,
                            "cat": "kernel",
                            "subframe": index,
                            "users": users,
                            "process_id": worker.pid,
                        },
                    )
                )

    def _unpack_results(
        self, worker: _WorkerHandle, packed: list[dict]
    ) -> list[UserResult]:
        results = []
        for entry in packed:
            if "inline" in entry:
                payload, llrs = entry["inline"]  # already private copies
            else:
                payload = self._copy_from_slab(worker, entry["payload"])
                llrs = self._copy_from_slab(worker, entry["llrs"])
            results.append(
                UserResult(
                    user_id=entry["user"],
                    payload=payload,
                    crc_ok=entry["crc_ok"],
                    llrs=llrs,
                )
            )
        return results

    def _copy_from_slab(
        self, worker: _WorkerHandle, descriptor: tuple
    ) -> np.ndarray:
        offset, shape, dtype = descriptor
        view = np.ndarray(
            tuple(shape),
            dtype=np.dtype(dtype),
            buffer=worker.slab.buf,
            offset=offset,
        )
        return view.copy()

    # --------------------------------------------------- faults / retries
    def _handle_worker_death(self, worker: _WorkerHandle) -> None:
        """A pool process died: record it, reclaim its orphaned group."""
        if worker.dead:
            return
        worker.dead = True
        injected = worker.expect_death
        if injected:
            error = "killed by injected fault (SIGKILL)"
            self._stats.worker_deaths += 1
        elif worker.heartbeat_killed:
            error = "killed by supervisor (heartbeat timeout)"
        else:
            exitcode = worker.process.exitcode
            error = f"worker process died unexpectedly (exitcode {exitcode})"
        supervisor = self._supervisor
        due = None
        if supervisor is not None:
            due = supervisor.record_death(worker.worker_id, monotonic_ns())
        # Under an active supervisor a death is an incident, not a
        # verdict: the slot respawns, so nothing is fatal unless
        # crash-loop detection already degraded the pool to fail-stop
        # (due is None then, restoring the historical semantics).
        if supervisor is None:
            fatal = not injected
        else:
            fatal = due is None and not injected and not worker.heartbeat_killed
        self._failures.append(
            WorkerFailure(
                worker_id=worker.worker_id,
                error=error,
                fatal=fatal,
                injected=injected,
            )
        )
        task = worker.busy
        worker.busy = None
        if task is not None:
            self._requeue_or_abort_task(worker, task, "worker death")
        if due is not None:
            # A replacement is scheduled: keep the remaining work queued
            # for it instead of aborting.
            return
        all_dead = all(w.dead for w in self._workers)
        if all_dead or fatal:
            reason = (
                "all workers dead" if all_dead else f"worker failure: {error}"
            )
            for pending in list(self._pending.values()):
                self._finish_subframe(
                    pending, forced_state=TerminalState.ABORTED, reason=reason
                )

    # ------------------------------------------------------------ supervision
    def _service_supervisor(self) -> None:
        """Heartbeat checks plus any respawns whose backoff expired."""
        supervisor = self._supervisor
        if supervisor is None or not self._started:
            return
        self._check_heartbeats(supervisor)
        if not supervisor.pending:
            return
        now = monotonic_ns()
        for slot, worker in enumerate(self._workers):
            if not worker.dead:
                continue
            due = supervisor.respawn_due(worker.worker_id)
            if due is not None and now >= due:
                self._respawn_worker(slot, worker, supervisor)

    def _check_heartbeats(self, supervisor) -> None:
        """SIGKILL workers wedged on one task past the heartbeat budget."""
        timeout_ns = supervisor.heartbeat_timeout_ns
        if timeout_ns is None or supervisor.fail_stop:
            return
        now = monotonic_ns()
        for worker in self._workers:
            if worker.dead or worker.busy is None or worker.expect_death:
                continue
            if worker.busy_since_ns and now - worker.busy_since_ns >= timeout_ns:
                # Presumed wedged. The kill surfaces through the process
                # sentinel like any other death: the standard path
                # requeues its task and schedules the respawn.
                worker.heartbeat_killed = True
                worker.process.kill()

    def _respawn_worker(
        self, slot: int, corpse: _WorkerHandle, supervisor
    ) -> None:
        """Replace one dead slot with a fresh process (same worker id)."""
        replacement = self._spawn_worker(corpse.worker_id)
        # Reap the corpse and release its resources. Its slab may still
        # back descriptors of replies drained earlier, but every result
        # is copied out of the slab on receipt, so unlinking is safe.
        corpse.process.join(timeout=0)
        corpse.conn.close()
        corpse.slab.close()
        corpse.slab.unlink()
        self._workers[slot] = replacement
        self._spawned_pids.append(replacement.pid)
        now = monotonic_ns()
        supervisor.note_respawn(corpse.worker_id, now)
        self._stats.respawns += 1
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.WORKER_RESPAWN,
                    now,
                    corpse.worker_id,
                    {
                        "worker": corpse.worker_id,
                        "process_id": replacement.pid,
                        "respawns": supervisor.respawns,
                        "backoff_s": supervisor.last_backoff_s(
                            corpse.worker_id
                        ),
                    },
                )
            )
        # The replacement missed every DMRS-bank broadcast this pool has
        # made; re-seed it so its cache matches its siblings'. A send
        # failure routes through the death handler like any other.
        for name, index in self._bank_shipments:
            if not self._send(replacement, ("banks", name, index)):
                return

    def _requeue_or_abort_task(
        self, worker: _WorkerHandle, task: dict, reason: str
    ) -> None:
        """Bounded retry of a failed shape group; abort past the budget."""
        pending = task["pending"]
        if pending.resolved:
            return
        index = pending.subframe.subframe_index
        attempts = pending.task_retries.get(task["task_id"], 0)
        user_ids = [s.user.user_id for s in task["slices"]]
        if attempts < self._resilience.max_retries:
            pending.task_retries[task["task_id"]] = attempts + 1
            self._stats.retries += len(user_ids)
            if self._emit is not None:
                now = monotonic_ns()
                for user_id in user_ids:
                    self._emit(
                        Event(
                            EventKind.USER_RETRY,
                            now,
                            worker.worker_id,
                            {
                                "subframe": index,
                                "user": user_id,
                                "attempt": attempts + 1,
                                "reason": reason,
                                "process_id": worker.pid,
                            },
                        )
                    )
            # Reclaimed work goes to the queue head so recovery from a
            # killed worker is prompt, not behind the whole backlog.
            self._queue.appendleft(task)
            return
        self._stats.aborted_users += len(user_ids)
        if self._emit is not None:
            now = monotonic_ns()
            for user_id in user_ids:
                self._emit(
                    Event(
                        EventKind.USER_ABORTED,
                        now,
                        worker.worker_id,
                        {
                            "subframe": index,
                            "user": user_id,
                            "was_adopted": True,
                            "reason": reason,
                            "process_id": worker.pid,
                        },
                    )
                )
        pending.aborted_ids.extend(user_ids)
        pending.remaining_users -= len(user_ids)
        if pending.remaining_users == 0:
            self._finish_subframe(pending)

    def _check_deadlines(self) -> None:
        now = monotonic_ns()
        expired = [
            pending
            for pending in self._pending.values()
            if pending.deadline_ns is not None and now >= pending.deadline_ns
        ]
        for pending in expired:
            self._finish_subframe(
                pending,
                forced_state=TerminalState.ABORTED,
                reason="deadline expired",
            )

    def _emit_fault(
        self, kind: str, worker: _WorkerHandle, subframe: int
    ) -> None:
        if self._emit is not None:
            self._emit(
                Event(
                    EventKind.FAULT,
                    monotonic_ns(),
                    worker.worker_id,
                    {
                        "fault": kind,
                        "subframe": subframe,
                        "process_id": worker.pid,
                    },
                )
            )

    def _raise_on_fatal(self) -> None:
        fatal = [f for f in self._failures if f.fatal]
        if fatal:
            raise WorkerFailuresError(fatal)

    # ------------------------------------------------------------ completion
    def _classify(
        self, result: SubframeResult, aborted: list[int]
    ) -> TerminalState:
        if aborted:
            return TerminalState.ABORTED
        if any(not r.crc_ok for r in result.user_results):
            return TerminalState.CRC_FAILED
        return TerminalState.OK

    def _finish_subframe(
        self,
        pending: _PendingSubframe,
        forced_state: TerminalState | None = None,
        reason: str = "",
    ) -> None:
        """Resolve one subframe to its single terminal state (first wins)."""
        index = pending.subframe.subframe_index
        first = not pending.resolved
        pending.resolved = True
        aborted = list(pending.aborted_ids)
        if first and forced_state is TerminalState.ABORTED:
            # Users that never produced a result were abandoned too.
            done = {r.user_id for r in pending.ordered if r is not None}
            aborted += [
                s.user.user_id
                for s in pending.subframe.slices
                if s.user.user_id not in done and s.user.user_id not in aborted
            ]
            pending.aborted_ids = aborted
        result = SubframeResult(
            subframe_index=index,
            user_results=[r for r in pending.ordered if r is not None],
            aborted_user_ids=aborted,
        )
        state = forced_state or self._classify(result, aborted)
        if not first:
            self.ledger.resolve(index, state, reason or "late duplicate")
            return
        self.ledger.resolve(index, state, reason)
        self._pending.pop(index, None)
        if self._emit is not None:
            now = monotonic_ns()
            if self.emit_spans:
                self._emit(
                    Event(
                        EventKind.SPAN_END,
                        now,
                        -1,
                        {
                            "name": f"subframe {index}",
                            "cat": "subframe",
                            "subframe": index,
                            "process_id": os.getpid(),
                        },
                    )
                )
            self._emit(
                Event(
                    EventKind.SUBFRAME_TERMINAL,
                    now,
                    -1,
                    {
                        "subframe": index,
                        "state": state.value,
                        "aborted_users": len(aborted),
                        "reason": reason,
                        "process_id": os.getpid(),
                    },
                )
            )
        self._completed.append(result)
        self._outstanding -= 1
        self._release_grid(pending)

    # --------------------------------------------------------- shared memory
    def _share_grid(self, grid: np.ndarray) -> _GridShare:
        key = id(grid)
        share = self._grid_shares.get(key)
        if share is None:
            source = np.ascontiguousarray(grid, dtype=COMPLEX_DTYPE)
            shm = SharedMemory(create=True, size=source.nbytes)
            view = np.ndarray(source.shape, dtype=COMPLEX_DTYPE, buffer=shm.buf)
            view[...] = source
            share = _GridShare(shm=shm, key=key)
            self._grid_shares[key] = share
        return share

    def _release_grid(self, pending: _PendingSubframe) -> None:
        share = pending.grid_share
        if share is None:
            return
        pending.grid_share = None
        share.refs -= 1
        if share.refs > 0:
            return
        self._grid_shares.pop(share.key, None)
        # Workers drop their cached mapping at the next message; Linux
        # keeps an unlinked segment alive until the last mapping closes,
        # so a straggler task on this grid still reads valid memory.
        self._broadcast(("forget", [share.shm.name]))
        share.shm.close()
        share.shm.unlink()

    def _ship_banks(self, slices: list[UserSlice]) -> None:
        """Share DMRS banks for any allocation shape not yet shipped."""
        keys = {
            (s.num_subcarriers, s.user.layers) for s in slices
        } - self._shipped_banks
        if not keys:
            return
        banks = {key: dmrs_bank(*key) for key in sorted(keys)}
        total = sum(_aligned(bank.nbytes) for bank in banks.values())
        shm = SharedMemory(create=True, size=max(total, _ALIGN))
        index: dict[tuple[int, int], tuple[int, tuple]] = {}
        cursor = 0
        for key, bank in banks.items():
            view = np.ndarray(
                bank.shape, dtype=COMPLEX_DTYPE, buffer=shm.buf, offset=cursor
            )
            view[...] = bank
            index[key] = (cursor, bank.shape)
            cursor += _aligned(bank.nbytes)
        self._bank_shms.append(shm)
        self._shipped_banks |= keys
        self._bank_shipments.append((shm.name, index))
        self._broadcast(("banks", shm.name, index))

    def _broadcast(self, message: tuple) -> None:
        for worker in self._workers:
            if not worker.dead:
                self._send(worker, message)

    def _send(self, worker: _WorkerHandle, message) -> bool:
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError):
            # The worker died between polls; the death handler reclaims
            # whatever task it held (including one just marked busy).
            self._handle_worker_death(worker)
            return False
        return True
