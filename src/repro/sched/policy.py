"""Victim selection and the worker's search order (Section IV-C).

The search order when a worker has no local work:

1. the **global user queue** (a fresh subframe beats stealing: "Before a
   worker thread tries to steal work from another thread, it first checks
   the global user queue to ensure that a new subframe has not been
   dispatched");
2. **steal** from another worker's local queue, visiting victims in a
   random order.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = ["RandomVictimPolicy"]


class RandomVictimPolicy:
    """Random-permutation victim selection.

    Each steal attempt visits every other worker exactly once in a fresh
    random order, which is the standard randomized work-stealing discipline
    analyzed by Blumofe & Leiserson [14].
    """

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        # One RNG per thief so concurrent steal attempts stay independent
        # and deterministic under a fixed seed.
        self._rngs = [
            random.Random(seed * 1_000_003 + t) for t in range(num_workers)
        ]

    def victim_order(self, thief: int) -> Sequence[int]:
        """A random permutation of all workers except the thief."""
        if not 0 <= thief < self.num_workers:
            raise ValueError("thief index out of range")
        victims = [w for w in range(self.num_workers) if w != thief]
        self._rngs[thief].shuffle(victims)
        return victims
