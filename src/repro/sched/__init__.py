"""Work-stealing runtime: queues, victim policy, and the thread-based
functional execution of the benchmark (the paper's Pthreads version).
"""

from .policy import RandomVictimPolicy
from .queues import GlobalQueue, WorkStealingDeque
from .threaded import RuntimeStats, ThreadedRuntime

__all__ = [
    "RandomVictimPolicy",
    "GlobalQueue",
    "WorkStealingDeque",
    "RuntimeStats",
    "ThreadedRuntime",
]
