"""Work-stealing runtime: queues, victim policy, and the parallel
functional executions of the benchmark — thread-based (the paper's
Pthreads version, GIL-bound) and spawn-based multiprocess (true
multi-core, shared-memory grids).
"""

from .multiprocess import MultiprocessRuntime, MultiprocessStats
from .policy import RandomVictimPolicy
from .queues import GlobalQueue, WorkStealingDeque
from .threaded import RuntimeStats, ThreadedRuntime

__all__ = [
    "RandomVictimPolicy",
    "GlobalQueue",
    "WorkStealingDeque",
    "RuntimeStats",
    "ThreadedRuntime",
    "MultiprocessRuntime",
    "MultiprocessStats",
]
