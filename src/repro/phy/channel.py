"""MIMO uplink radio channel model.

Each (receive-antenna, layer) path is a frequency-selective Rayleigh
channel realized as a tapped delay line: a handful of complex Gaussian taps
with an exponentially decaying power profile whose FFT gives the
frequency response across the user's allocated subcarriers. The channel is
block-fading: constant over one subframe, newly drawn per subframe, which
matches the paper's once-per-slot channel-estimation structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChannelRealization", "ChannelModel", "awgn"]


@dataclass(frozen=True)
class ChannelRealization:
    """One subframe's channel between a user and the base station.

    Attributes
    ----------
    response:
        Complex frequency response with shape
        ``(num_rx_antennas, num_layers, num_subcarriers)``.
        This is the *first slot's* channel; with a mobile user the second
        slot's channel (``slot_responses[1]``) differs.
    noise_variance:
        Variance of the complex AWGN added at each receive antenna.
    slot_responses:
        Optional per-slot responses, shape ``(2, antennas, layers,
        subcarriers)``. When absent the channel is block-fading over the
        whole subframe (the default), i.e. both slots see ``response``.
    """

    response: np.ndarray
    noise_variance: float
    slot_responses: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.response.ndim != 3:
            raise ValueError("response must be (antennas, layers, subcarriers)")
        if self.noise_variance < 0:
            raise ValueError("noise_variance must be >= 0")
        if self.slot_responses is not None:
            expected = (2, *self.response.shape)
            if self.slot_responses.shape != expected:
                raise ValueError(
                    f"slot_responses must have shape {expected}, "
                    f"got {self.slot_responses.shape}"
                )

    @property
    def num_rx_antennas(self) -> int:
        return self.response.shape[0]

    @property
    def num_layers(self) -> int:
        return self.response.shape[1]

    @property
    def num_subcarriers(self) -> int:
        return self.response.shape[2]

    def response_for_slot(self, slot: int) -> np.ndarray:
        """The channel in force during one of the subframe's two slots."""
        if not 0 <= slot < 2:
            raise ValueError("slot must be 0 or 1")
        if self.slot_responses is None:
            return self.response
        return self.slot_responses[slot]

    def apply(self, tx_grid: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Pass a transmitted grid through the channel and add noise.

        Parameters
        ----------
        tx_grid:
            Transmitted symbols, shape ``(num_layers, num_symbols,
            num_subcarriers)``. Symbols 0-6 see the first slot's channel,
            symbols 7-13 the second's.
        rng:
            Noise source.

        Returns
        -------
        numpy.ndarray
            Received grid, shape ``(num_rx_antennas, num_symbols,
            num_subcarriers)``.
        """
        tx_grid = np.asarray(tx_grid, dtype=np.complex128)
        if tx_grid.shape[0] != self.num_layers:
            raise ValueError(
                f"tx grid has {tx_grid.shape[0]} layers, channel has {self.num_layers}"
            )
        if tx_grid.shape[2] != self.num_subcarriers:
            raise ValueError("tx grid subcarrier count does not match channel")
        num_symbols = tx_grid.shape[1]
        half = (num_symbols + 1) // 2
        # rx[a, s, k] = sum_l H_slot(s)[a, l, k] * tx[l, s, k]
        rx = np.empty(
            (self.num_rx_antennas, num_symbols, self.num_subcarriers),
            dtype=np.complex128,
        )
        rx[:, :half, :] = np.einsum(
            "alk,lsk->ask", self.response_for_slot(0), tx_grid[:, :half, :]
        )
        if num_symbols > half:
            rx[:, half:, :] = np.einsum(
                "alk,lsk->ask", self.response_for_slot(1), tx_grid[:, half:, :]
            )
        return awgn(rx, self.noise_variance, rng)


class ChannelModel:
    """Draws per-subframe :class:`ChannelRealization` objects.

    Parameters
    ----------
    num_rx_antennas:
        Receive antennas at the base station.
    num_taps:
        Taps of the delay line (1 = flat fading).
    delay_spread_decay:
        Per-tap exponential power decay factor in (0, 1].
    snr_db:
        Average per-antenna SNR in dB, assuming unit-energy transmit
        symbols per layer.
    """

    def __init__(
        self,
        num_rx_antennas: int = 4,
        num_taps: int = 4,
        delay_spread_decay: float = 0.5,
        snr_db: float = 30.0,
        slot_correlation: float = 1.0,
    ) -> None:
        if num_rx_antennas < 1:
            raise ValueError("num_rx_antennas must be >= 1")
        if num_taps < 1:
            raise ValueError("num_taps must be >= 1")
        if not 0.0 < delay_spread_decay <= 1.0:
            raise ValueError("delay_spread_decay must be in (0, 1]")
        if not 0.0 <= slot_correlation <= 1.0:
            raise ValueError("slot_correlation must be in [0, 1]")
        self.num_rx_antennas = num_rx_antennas
        self.num_taps = num_taps
        self.delay_spread_decay = delay_spread_decay
        self.snr_db = snr_db
        #: Gauss-Markov correlation between the two slots' fading (1.0 =
        #: block fading over the subframe; < 1 models user mobility, which
        #: is why channel estimation runs once per slot).
        self.slot_correlation = slot_correlation
        profile = delay_spread_decay ** np.arange(num_taps)
        self._tap_powers = profile / profile.sum()

    def noise_variance(self) -> float:
        """Complex noise variance corresponding to the configured SNR."""
        return float(10.0 ** (-self.snr_db / 10.0))

    def realize(
        self, num_layers: int, num_subcarriers: int, rng: np.random.Generator
    ) -> ChannelRealization:
        """Draw one block-fading realization."""
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if num_subcarriers < 1:
            raise ValueError("num_subcarriers must be >= 1")
        shape = (self.num_rx_antennas, num_layers, self.num_taps)
        taps = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2.0)
        taps *= np.sqrt(self._tap_powers)
        # Frequency response across the allocation: DFT of the tap vector.
        k = np.arange(num_subcarriers)
        d = np.arange(self.num_taps)
        # Delay taps are spaced at the subcarrier grid's fundamental period
        # relative to a nominal 2048-point symbol, keeping the channel
        # smooth across a PRB (realistic delay spread).
        phase = np.exp(-2j * np.pi * np.outer(k, d) / 2048.0)
        response = np.einsum("ald,kd->alk", taps, phase)
        slot_responses = None
        if self.slot_correlation < 1.0:
            rho = self.slot_correlation
            innovation = (
                rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            ) / np.sqrt(2.0)
            innovation *= np.sqrt(self._tap_powers)
            taps_slot1 = rho * taps + np.sqrt(1.0 - rho * rho) * innovation
            response_slot1 = np.einsum("ald,kd->alk", taps_slot1, phase)
            slot_responses = np.stack([response, response_slot1])
        return ChannelRealization(
            response=response,
            noise_variance=self.noise_variance(),
            slot_responses=slot_responses,
        )


def awgn(signal: np.ndarray, noise_variance: float, rng: np.random.Generator) -> np.ndarray:
    """Add circularly symmetric complex Gaussian noise."""
    if noise_variance < 0:
        raise ValueError("noise_variance must be >= 0")
    signal = np.asarray(signal, dtype=np.complex128)
    if noise_variance == 0:
        return signal.copy()
    noise = rng.standard_normal(signal.shape) + 1j * rng.standard_normal(signal.shape)
    return signal + noise * np.sqrt(noise_variance / 2.0)
