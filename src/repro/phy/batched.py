"""Batched vectorized Fig. 5 kernels.

The serial chain (:mod:`repro.phy.chain`) runs one (slot, antenna, layer)
channel-estimation task and one (data symbol, layer) combining task per
NumPy call — faithful to the paper's task decomposition, but each call
touches a few-kilobyte array, so interpreter overhead dominates. This
module provides the same four kernels with the task axes *stacked*: all
(slot, antenna, layer) estimates of a user — and all users of a subframe
that share an allocation shape — move through matched filter, IFFT,
window, FFT, the MMSE solve, antenna combining, and soft demapping as
single NumPy calls over 3-D/4-D arrays (the shape the Vienna LTE-A
simulator and srsLTE use for their hot loops).

Every kernel is *bit-exact* with its serial counterpart: NumPy computes a
batched FFT/solve/einsum row by row with the same kernels the 1-D calls
use, so stacking changes neither operation order nor rounding. The
differential suite (``tests/differential``) enforces this against the
serial and threaded backends.

Shapes use leading *batch* dimensions written ``(...,)``: a single user
passes ``(slots, ...)`` arrays, a user group passes ``(users, slots,
...)`` arrays. All kernels coerce inputs to the canonical dtypes of
:mod:`repro.phy.dtypes` so a stray ``complex64`` (or ``longdouble``)
input cannot silently change the precision of a whole batch.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .chest import ChestConfig
from .dtypes import REAL_DTYPE, ensure_complex
from .equalizer import mmse_combiner_weights  # noqa: F401  (re-exported ref)
from .fftutil import wraparound_window
from .sequences import dmrs_for_layer

__all__ = [
    "dmrs_bank",
    "seed_dmrs_bank",
    "batched_chest",
    "batched_combiner_weights",
    "batched_combine_symbols",
    "batched_soft_demap",
]

#: Computed (or seeded) DMRS banks keyed by ``(subcarriers, layers)``. A
#: plain dict rather than ``lru_cache`` so :func:`seed_dmrs_bank` can
#: install externally-owned (e.g. shared-memory-backed) arrays.
_DMRS_BANKS: dict[tuple[int, int], np.ndarray] = {}


def dmrs_bank(num_subcarriers: int, layers: int) -> np.ndarray:
    """``(layers, subcarriers)`` conjugated DMRS bank (cached, read-only).

    The serial chain regenerates the Zadoff–Chu sequence inside every
    matched-filter call; the bank computes each (width, layer) sequence
    once per process, which is a large share of the batched speedup.
    """
    if layers < 1:
        raise ValueError("layers must be >= 1")
    key = (int(num_subcarriers), int(layers))
    bank = _DMRS_BANKS.get(key)
    if bank is None:
        bank = np.stack(
            [np.conj(dmrs_for_layer(key[0], layer)) for layer in range(key[1])]
        )
        bank.setflags(write=False)
        _DMRS_BANKS[key] = bank
    return bank


def seed_dmrs_bank(num_subcarriers: int, layers: int, bank: np.ndarray) -> None:
    """Install a precomputed DMRS bank into this process's cache.

    Multiprocess workers call this with zero-copy views over the parent's
    shared-memory bank slab, so no worker recomputes (or privately
    stores) a sequence the parent already built. The array must match the
    ``(layers, subcarriers)`` shape :func:`dmrs_bank` would produce; it is
    marked read-only in place.
    """
    bank = np.asarray(bank)
    if bank.shape != (int(layers), int(num_subcarriers)):
        raise ValueError(
            f"bank shape {bank.shape} != ({int(layers)}, {int(num_subcarriers)})"
        )
    bank.setflags(write=False)
    _DMRS_BANKS[(int(num_subcarriers), int(layers))] = bank


@lru_cache(maxsize=128)
def _window_cached(
    num_subcarriers: int, keep: int, back: int, taper: int
) -> np.ndarray:
    window = wraparound_window(num_subcarriers, keep, back, taper)
    window.setflags(write=False)
    return window


def batched_chest(
    refs: np.ndarray,
    layers: int,
    config: ChestConfig | None = None,
    trace=None,
) -> tuple[np.ndarray, np.ndarray]:
    """All (antenna, layer) channel-estimation tasks in one shot.

    Parameters
    ----------
    refs:
        Received reference symbols, shape ``(..., antennas, subcarriers)``
        — one row per antenna, arbitrary leading batch dimensions (slots,
        users).
    layers:
        Number of layers to estimate per antenna.

    Returns
    -------
    (channel, noise):
        ``channel`` has shape ``(..., antennas, layers, subcarriers)``;
        ``noise`` holds the per-task noise-variance estimates with shape
        ``(..., antennas, layers)``. Both are bit-exact with per-task
        :func:`repro.phy.chain.chest_task` calls.
    """
    config = config or ChestConfig()
    refs = ensure_complex(refs)
    num_sc = refs.shape[-1]
    batch = int(np.prod(refs.shape[:-1], dtype=np.int64)) * layers
    if trace is not None:
        trace.record("matched_filter", subcarriers=num_sc, batch=batch)
        trace.record("chest_ifft", subcarriers=num_sc, batch=batch)
        trace.record("chest_window", subcarriers=num_sc, batch=batch)
        trace.record("chest_fft", subcarriers=num_sc, batch=batch)
    bank = dmrs_bank(num_sc, layers)  # (layers, sc), already conjugated
    # Matched filter: (..., antennas, 1, sc) * (layers, sc).
    raw = refs[..., :, None, :] * bank
    impulse = np.fft.ifft(raw, axis=-1)
    # Noise: mean power of the guard span between the kept window and the
    # next layer offset — computed on the *pre-window* impulse response,
    # exactly as estimate_noise_variance does with its fresh IFFT.
    keep, back, taper = config.window_lengths(num_sc)
    lo, hi = keep, max(keep + 1, num_sc // 4)
    guard = impulse[..., lo:hi]
    if guard.shape[-1] == 0:
        guard = impulse[..., lo:]
    if guard.shape[-1] == 0:
        noise = np.zeros(impulse.shape[:-1], dtype=REAL_DTYPE)
    else:
        noise = (np.abs(guard) ** 2).mean(axis=-1) * num_sc
    channel = np.fft.fft(impulse * _window_cached(num_sc, keep, back, taper), axis=-1)
    # channel is (..., antennas, layers, sc) already.
    return channel, noise


def batched_combiner_weights(
    channel: np.ndarray,
    noise_variance: np.ndarray,
    trace=None,
) -> tuple[np.ndarray, np.ndarray]:
    """MMSE weights + bias removal + post-combining noise, batched.

    The batched twin of :func:`repro.phy.chain.combiner_stage`: one
    ``np.linalg.solve`` over every (batch element, subcarrier) system.

    Parameters
    ----------
    channel:
        Channel estimates, shape ``(..., antennas, layers, subcarriers)``.
    noise_variance:
        Per-batch-element noise variance, shape ``(...)`` (scalar for an
        unbatched call).

    Returns
    -------
    (weights, noise_after):
        ``weights`` has shape ``(..., layers, antennas, subcarriers)``
        with the MMSE amplitude bias removed; ``noise_after`` is the
        per-(layer, subcarrier) effective noise variance, shape
        ``(..., layers, subcarriers)``.
    """
    channel = ensure_complex(channel)
    if channel.ndim < 3:
        raise ValueError("channel must be (..., antennas, layers, subcarriers)")
    num_antennas, num_layers, num_sc = channel.shape[-3:]
    if num_layers > num_antennas:
        raise ValueError("cannot separate more layers than antennas")
    noise_variance = np.asarray(noise_variance, dtype=REAL_DTYPE)
    if noise_variance.shape != channel.shape[:-3]:
        raise ValueError(
            "noise_variance must carry one value per batch element "
            f"(expected shape {channel.shape[:-3]}, got {noise_variance.shape})"
        )
    if noise_variance.size and noise_variance.min() < 0:
        raise ValueError("noise_variance must be >= 0")
    if trace is not None:
        trace.record(
            "combiner_weights",
            subcarriers=num_sc,
            layers=num_layers,
            antennas=num_antennas,
            batch=int(np.prod(channel.shape[:-3], dtype=np.int64)),
        )
    # Per-subcarrier H: (..., sc, antennas, layers), as in the serial path.
    h = np.moveaxis(channel, -1, -3)
    hh = np.conj(np.swapaxes(h, -1, -2))  # (..., sc, layers, antennas)
    gram = hh @ h  # (..., sc, layers, layers)
    reg = gram + (noise_variance[..., None, None, None] + 1e-12) * np.eye(num_layers)
    weights = np.linalg.solve(reg, hh)  # (..., sc, layers, antennas)
    weights = np.moveaxis(weights, -3, -1)  # (..., layers, antennas, sc)
    # Remove the MMSE amplitude bias: a[l, k] = Σ_a W[l, a, k] H[a, l, k].
    bias = np.einsum("...lak,...alk->...lk", weights, channel)
    magnitude = np.abs(bias)
    safe = np.where(magnitude > 1e-9, bias, 1.0)
    weights = weights / safe[..., :, None, :]
    noise_after = noise_variance[..., None, None] * np.sum(
        np.abs(weights) ** 2, axis=-2
    )
    return weights, noise_after


def batched_combine_symbols(
    received: np.ndarray,
    weights: np.ndarray,
    trace=None,
) -> np.ndarray:
    """All (data symbol, layer) combining + SC-FDMA IFFT tasks at once.

    Parameters
    ----------
    received:
        Data symbols, shape ``(..., antennas, symbols, subcarriers)``.
    weights:
        Slot combiner weights, shape ``(..., layers, antennas,
        subcarriers)`` (same leading batch dimensions as ``received``).

    Returns
    -------
    numpy.ndarray
        Despread time-domain symbols, shape ``(..., layers, symbols,
        subcarriers)`` — bit-exact with per-task
        :func:`repro.phy.chain.symbol_task` calls.
    """
    received = ensure_complex(received)
    weights = ensure_complex(weights)
    if received.shape[-3] != weights.shape[-2]:
        raise ValueError("antenna count mismatch between data and weights")
    if received.shape[-1] != weights.shape[-1]:
        raise ValueError("subcarrier count mismatch between data and weights")
    num_sc = received.shape[-1]
    if trace is not None:
        batch = int(
            np.prod(received.shape[:-3], dtype=np.int64)
        ) * received.shape[-2] * weights.shape[-3]
        trace.record("antenna_combine", subcarriers=num_sc, batch=batch)
        trace.record("data_ifft", subcarriers=num_sc, batch=batch)
    combined = np.einsum("...lak,...ask->...lsk", weights, received)
    # Inverse transform precoding: undo the transmitter's DFT.
    return np.fft.ifft(combined, axis=-1) * np.sqrt(num_sc)


def batched_soft_demap(
    symbols: np.ndarray,
    modulation,
    noise_variance: np.ndarray,
    trace=None,
) -> np.ndarray:
    """Max-log-MAP soft demapping over a batch of symbol streams.

    ``symbols`` and ``noise_variance`` have shape ``(batch, n)``; returns
    LLRs of shape ``(batch, n * bits_per_symbol)``. Demapping is
    element-wise per symbol, so stacking rows is trivially bit-exact with
    per-row :func:`repro.phy.modulation.soft_demap` calls.
    """
    from .modulation import soft_demap

    symbols = ensure_complex(symbols)
    if symbols.ndim != 2:
        raise ValueError("symbols must be (batch, n)")
    noise = np.broadcast_to(
        np.asarray(noise_variance, dtype=REAL_DTYPE), symbols.shape
    )
    if trace is not None:
        trace.record(
            "soft_demap",
            symbols=symbols.shape[-1],
            bits_per_symbol=modulation.bits_per_symbol,
            batch=symbols.shape[0],
        )
    llrs = soft_demap(symbols.reshape(-1), modulation, noise.reshape(-1))
    return llrs.reshape(symbols.shape[0], -1)
