"""Combiner-weight computation and antenna combining.

After channel estimation the receiver computes, per subcarrier, weights
that merge the antennas and undo the channel (Fig. 3's "combiner weight
calculation" and "antenna combining"). MMSE weights are the default; MRC
is available for the single-layer case.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mmse_combiner_weights",
    "mrc_combiner_weights",
    "combine_antennas",
    "post_combining_noise_variance",
]


def mmse_combiner_weights(
    channel: np.ndarray, noise_variance: float
) -> np.ndarray:
    """Per-subcarrier MMSE weights.

    Parameters
    ----------
    channel:
        Channel estimates, shape ``(antennas, layers, subcarriers)``.
    noise_variance:
        Per-antenna complex noise variance (regularization term).

    Returns
    -------
    numpy.ndarray
        Weights ``W`` with shape ``(layers, antennas, subcarriers)`` such
        that ``x_hat[l, k] = Σ_a W[l, a, k] · y[a, k]``.
    """
    channel = np.asarray(channel, dtype=np.complex128)
    if channel.ndim != 3:
        raise ValueError("channel must be (antennas, layers, subcarriers)")
    if noise_variance < 0:
        raise ValueError("noise_variance must be >= 0")
    num_antennas, num_layers, num_sc = channel.shape
    if num_layers > num_antennas:
        raise ValueError("cannot separate more layers than antennas")
    # Per-subcarrier H: (subcarriers, antennas, layers).
    h = np.moveaxis(channel, 2, 0)
    hh = np.conj(np.swapaxes(h, 1, 2))  # (sc, layers, antennas)
    gram = hh @ h  # (sc, layers, layers)
    reg = gram + (noise_variance + 1e-12) * np.eye(num_layers)[None, :, :]
    weights = np.linalg.solve(reg, hh)  # (sc, layers, antennas)
    return np.moveaxis(weights, 0, 2)  # (layers, antennas, sc)


def mrc_combiner_weights(channel: np.ndarray) -> np.ndarray:
    """Maximum-ratio combining weights (single layer only)."""
    channel = np.asarray(channel, dtype=np.complex128)
    if channel.ndim != 3 or channel.shape[1] != 1:
        raise ValueError("MRC requires exactly one layer")
    h = channel[:, 0, :]  # (antennas, sc)
    norm = np.sum(np.abs(h) ** 2, axis=0)
    norm = np.where(norm > 0, norm, 1.0)
    weights = np.conj(h) / norm  # (antennas, sc)
    return weights[None, :, :]  # (1, antennas, sc)


def combine_antennas(received: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Merge per-antenna data into per-layer estimates.

    Parameters
    ----------
    received:
        Received grid slice, shape ``(antennas, symbols, subcarriers)``.
    weights:
        Combiner weights, shape ``(layers, antennas, subcarriers)``.

    Returns
    -------
    numpy.ndarray
        Layer estimates, shape ``(layers, symbols, subcarriers)``.
    """
    received = np.asarray(received, dtype=np.complex128)
    weights = np.asarray(weights, dtype=np.complex128)
    if received.shape[0] != weights.shape[1]:
        raise ValueError("antenna count mismatch between data and weights")
    if received.shape[2] != weights.shape[2]:
        raise ValueError("subcarrier count mismatch between data and weights")
    return np.einsum("lak,ask->lsk", weights, received)


def post_combining_noise_variance(
    weights: np.ndarray, noise_variance: float
) -> np.ndarray:
    """Effective noise variance after combining, per (layer, subcarrier).

    ``σ_eff²[l, k] = σ² · Σ_a |W[l, a, k]|²`` — the quantity the soft
    demapper needs to scale its LLRs.
    """
    weights = np.asarray(weights, dtype=np.complex128)
    return noise_variance * np.sum(np.abs(weights) ** 2, axis=1)
