"""The full per-user receiver chain of Fig. 3, decomposable into the tasks
of Fig. 5.

The chain is written as three explicitly separable stages so both the
serial reference and the work-stealing runtimes can drive it:

1. :func:`chest_task` — one (slot, antenna, layer) channel-estimation task
   (matched filter, IFFT, window, FFT). Up to ``antennas × layers`` tasks
   per slot.
2. :func:`combiner_stage` — the non-parallelizable combiner-weight
   computation joining all estimates of a slot (with MMSE bias correction).
3. :func:`symbol_task` — one (data symbol, layer) antenna-combining + IFFT
   (SC-FDMA despreading) task. Up to ``6 symbols × layers`` tasks per slot.
4. :func:`finalize_user` — the remaining serial tail: deinterleave, soft
   demap, turbo decode (pass-through by default), CRC check.

``process_user`` wires the stages together for serial execution. Every
stage reports to an optional :class:`KernelTrace` so tests and the cost
model can observe kernel invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import interleaver as il
from .chest import ChestConfig, estimate_channel, estimate_noise_variance
from .crc import CRC24A, crc_check
from .equalizer import (
    combine_antennas,
    mmse_combiner_weights,
    post_combining_noise_variance,
)
from .modulation import soft_demap
from .params import (
    DATA_SYMBOLS_PER_SLOT,
    REFERENCE_SYMBOL_INDEX,
    SLOTS_PER_SUBFRAME,
    SYMBOLS_PER_SLOT,
)
from .transmitter import UserAllocation, data_symbol_indices
from .turbo import PassThroughTurbo

__all__ = [
    "KernelTrace",
    "SlotEstimate",
    "UserResult",
    "chest_task",
    "combiner_stage",
    "symbol_task",
    "finalize_user",
    "process_user",
]


@dataclass
class KernelTrace:
    """Records every kernel invocation (name, work descriptor).

    The timing simulator's cost model charges cycles for exactly these
    kernels; recording them from the functional chain keeps the two views
    of the benchmark aligned.
    """

    events: list[tuple[str, dict]] = field(default_factory=list)

    def record(self, kernel: str, **work) -> None:
        self.events.append((kernel, work))

    def count(self, kernel: str) -> int:
        return sum(1 for name, _ in self.events if name == kernel)


@dataclass
class SlotEstimate:
    """Join result of one slot's channel-estimation tasks."""

    channel: np.ndarray  # (antennas, layers, subcarriers)
    noise_variance: float
    weights: np.ndarray | None = None  # (layers, antennas, subcarriers)
    noise_after_combining: np.ndarray | None = None  # (layers, subcarriers)


@dataclass
class UserResult:
    """Decoded output for one user in one subframe."""

    user_id: int
    payload: np.ndarray
    crc_ok: bool
    llrs: np.ndarray = field(repr=False, default=None)

    def equals(self, other: "UserResult") -> bool:
        """Bit-exact equivalence (used by serial-vs-parallel verification)."""
        return (
            self.user_id == other.user_id
            and self.crc_ok == other.crc_ok
            and np.array_equal(self.payload, other.payload)
        )


def chest_task(
    received_ref: np.ndarray,
    layer: int,
    config: ChestConfig | None = None,
    trace: KernelTrace | None = None,
) -> tuple[np.ndarray, float]:
    """One (antenna, layer) channel-estimation task for one slot.

    Returns the frequency-domain channel estimate and a noise-variance
    estimate from the windowed-out time-domain span.
    """
    n = np.asarray(received_ref).size
    if trace is not None:
        trace.record("matched_filter", subcarriers=n)
        trace.record("chest_ifft", subcarriers=n)
        trace.record("chest_window", subcarriers=n)
        trace.record("chest_fft", subcarriers=n)
    estimate = estimate_channel(received_ref, layer, config)
    noise = estimate_noise_variance(received_ref, layer, config)
    return estimate, noise


def combiner_stage(
    channel: np.ndarray,
    noise_variance: float,
    trace: KernelTrace | None = None,
) -> SlotEstimate:
    """Combiner-weight computation for one slot (not parallelized).

    Computes MMSE weights, removes the MMSE amplitude bias so the output
    constellation is unit-scaled, and derives the post-combining noise
    variance the soft demapper needs.
    """
    channel = np.asarray(channel, dtype=np.complex128)
    num_antennas, num_layers, num_sc = channel.shape
    if trace is not None:
        trace.record(
            "combiner_weights",
            subcarriers=num_sc,
            layers=num_layers,
            antennas=num_antennas,
        )
    weights = mmse_combiner_weights(channel, noise_variance)
    # Bias of the MMSE estimate: a[l, k] = Σ_a W[l, a, k] H[a, l, k].
    bias = np.einsum("lak,alk->lk", weights, channel)
    magnitude = np.abs(bias)
    safe = np.where(magnitude > 1e-9, bias, 1.0)
    weights = weights / safe[:, None, :]
    noise_after = post_combining_noise_variance(weights, noise_variance)
    return SlotEstimate(
        channel=channel,
        noise_variance=noise_variance,
        weights=weights,
        noise_after_combining=noise_after,
    )


def symbol_task(
    received_symbol: np.ndarray,
    weights: np.ndarray,
    layer: int,
    trace: KernelTrace | None = None,
) -> np.ndarray:
    """One (data symbol, layer) task: antenna combining + SC-FDMA IFFT.

    Parameters
    ----------
    received_symbol:
        One SC-FDMA symbol across antennas, shape ``(antennas, subcarriers)``.
    weights:
        Slot combiner weights, shape ``(layers, antennas, subcarriers)``.
    layer:
        Which layer this task despreads.

    Returns
    -------
    numpy.ndarray
        The layer's time-domain modulated symbols for this SC-FDMA symbol
        (length ``subcarriers``).
    """
    received_symbol = np.asarray(received_symbol, dtype=np.complex128)
    num_sc = received_symbol.shape[1]
    if trace is not None:
        trace.record("antenna_combine", subcarriers=num_sc, layers=1)
        trace.record("data_ifft", subcarriers=num_sc)
    combined = combine_antennas(received_symbol[:, None, :], weights[layer : layer + 1])
    # Inverse transform precoding: undo the transmitter's DFT.
    return np.fft.ifft(combined[0, 0, :]) * np.sqrt(num_sc)


def finalize_user(
    allocation: UserAllocation,
    layer_symbols: np.ndarray,
    noise_per_layer_slot: np.ndarray,
    user_id: int = 0,
    codec=None,
    trace: KernelTrace | None = None,
    scrambling_c_init: int | None = None,
) -> UserResult:
    """Serial tail: deinterleave → soft demap → turbo decode → CRC.

    Parameters
    ----------
    allocation:
        The user's allocation.
    layer_symbols:
        Despread time-domain symbols, shape ``(layers, 12 data symbols,
        subcarriers)`` in data-symbol order.
    noise_per_layer_slot:
        Effective noise variance, shape ``(layers, 2 slots)``.
    """
    codec = codec or PassThroughTurbo()
    layers = allocation.layers
    num_sc = allocation.num_subcarriers
    layer_symbols = np.asarray(layer_symbols, dtype=np.complex128)
    if layer_symbols.shape != (layers, DATA_SYMBOLS_PER_SLOT * SLOTS_PER_SUBFRAME, num_sc):
        raise ValueError("layer_symbols shape mismatch")

    # Invert the transmitter's layer mapping back to one symbol stream.
    streams = layer_symbols.reshape(layers, -1)  # (layers, 12*num_sc)
    interleaved = streams.T.reshape(-1)
    # Per-symbol noise: follows the same reshaping as the data.
    noise_streams = _noise_stream(noise_per_layer_slot, num_sc)
    interleaved_noise = noise_streams.T.reshape(-1)

    if trace is not None:
        trace.record("deinterleave", symbols=interleaved.size)
    symbols = il.deinterleave(interleaved)
    noise = il.deinterleave(interleaved_noise)

    if trace is not None:
        trace.record(
            "soft_demap",
            symbols=symbols.size,
            bits_per_symbol=allocation.modulation.bits_per_symbol,
        )
    llrs = soft_demap(symbols, allocation.modulation, np.maximum(noise, 1e-12))
    if scrambling_c_init is not None:
        from .scrambling import descramble_llrs

        llrs = descramble_llrs(llrs, scrambling_c_init)

    if codec.rate_denominator == 1:
        num_info = llrs.size - CRC24A.width
        useful = llrs
    else:
        capacity = llrs.size
        num_info_with_crc = (capacity - 12) // 3
        num_info = num_info_with_crc - CRC24A.width
        useful = llrs[: 3 * num_info_with_crc + 12]
    if trace is not None:
        trace.record("turbo_decode", bits=useful.size)
    decoded = codec.decode(useful, num_info + CRC24A.width)
    if trace is not None:
        trace.record("crc_check", bits=decoded.size)
    ok = crc_check(decoded, CRC24A)
    return UserResult(
        user_id=user_id,
        payload=decoded[: -CRC24A.width],
        crc_ok=ok,
        llrs=llrs,
    )


def _noise_stream(noise_per_layer_slot: np.ndarray, num_sc: int) -> np.ndarray:
    """Expand (layers, slots) noise to per-sample streams (layers, 12*num_sc)."""
    noise_per_layer_slot = np.asarray(noise_per_layer_slot, dtype=np.float64)
    layers, slots = noise_per_layer_slot.shape
    per_slot = DATA_SYMBOLS_PER_SLOT * num_sc
    out = np.empty((layers, slots * per_slot))
    for slot in range(slots):
        out[:, slot * per_slot : (slot + 1) * per_slot] = np.repeat(
            noise_per_layer_slot[:, slot : slot + 1], per_slot, axis=1
        )
    return out


def process_user(
    allocation: UserAllocation,
    received: np.ndarray,
    user_id: int = 0,
    config: ChestConfig | None = None,
    codec=None,
    trace: KernelTrace | None = None,
    scrambling_c_init: int | None = None,
) -> UserResult:
    """Run the whole Fig. 3 chain serially for one user.

    Parameters
    ----------
    received:
        Received grid, shape ``(antennas, 14 symbols, subcarriers)``.
    """
    received = np.asarray(received, dtype=np.complex128)
    num_antennas = received.shape[0]
    layers = allocation.layers
    num_sc = allocation.num_subcarriers
    if received.shape[1] != SLOTS_PER_SUBFRAME * SYMBOLS_PER_SLOT:
        raise ValueError("received grid must hold 14 SC-FDMA symbols")
    if received.shape[2] != num_sc:
        raise ValueError("received grid subcarrier width mismatch")

    slot_estimates: list[SlotEstimate] = []
    for slot in range(SLOTS_PER_SUBFRAME):
        ref_sym = slot * SYMBOLS_PER_SLOT + REFERENCE_SYMBOL_INDEX
        channel = np.empty((num_antennas, layers, num_sc), dtype=np.complex128)
        noise_samples = []
        for antenna in range(num_antennas):
            for layer in range(layers):
                estimate, noise = chest_task(
                    received[antenna, ref_sym, :], layer, config, trace
                )
                channel[antenna, layer, :] = estimate
                noise_samples.append(noise)
        slot_estimates.append(
            combiner_stage(channel, float(np.mean(noise_samples)), trace)
        )

    data_idx = data_symbol_indices()
    layer_symbols = np.empty(
        (layers, len(data_idx), num_sc), dtype=np.complex128
    )
    for row, sym in enumerate(data_idx):
        slot = sym // SYMBOLS_PER_SLOT
        weights = slot_estimates[slot].weights
        for layer in range(layers):
            layer_symbols[layer, row, :] = symbol_task(
                received[:, sym, :], weights, layer, trace
            )

    noise_per_layer_slot = np.stack(
        [est.noise_after_combining.mean(axis=1) for est in slot_estimates], axis=1
    )
    return finalize_user(
        allocation,
        layer_symbols,
        noise_per_layer_slot,
        user_id=user_id,
        codec=codec,
        trace=trace,
        scrambling_c_init=scrambling_c_init,
    )
