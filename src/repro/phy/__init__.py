"""LTE uplink PHY substrate: every signal-processing kernel the benchmark's
receiver chain (Fig. 3 of the paper) needs, plus the UE-side transmitter
and channel model used to synthesize realistic input data.
"""

from .params import (
    ALL_MODULATIONS,
    MAX_LAYERS,
    MAX_PRB,
    MAX_USERS_PER_SUBFRAME,
    MIN_PRB_PER_USER,
    NUM_RX_ANTENNAS,
    CellConfig,
    Modulation,
)
from .batched import (
    batched_chest,
    batched_combine_symbols,
    batched_combiner_weights,
    batched_soft_demap,
)
from .chain import KernelTrace, UserResult, process_user
from .channel import ChannelModel, ChannelRealization
from .dtypes import COMPLEX_DTYPE, REAL_DTYPE, ensure_complex, ensure_real
from .transmitter import UserAllocation, payload_capacity, random_payload, transmit_subframe
from .turbo import PassThroughTurbo, TurboCodec

__all__ = [
    "ALL_MODULATIONS",
    "MAX_LAYERS",
    "MAX_PRB",
    "MAX_USERS_PER_SUBFRAME",
    "MIN_PRB_PER_USER",
    "NUM_RX_ANTENNAS",
    "CellConfig",
    "Modulation",
    "KernelTrace",
    "UserResult",
    "process_user",
    "batched_chest",
    "batched_combine_symbols",
    "batched_combiner_weights",
    "batched_soft_demap",
    "COMPLEX_DTYPE",
    "REAL_DTYPE",
    "ensure_complex",
    "ensure_real",
    "ChannelModel",
    "ChannelRealization",
    "UserAllocation",
    "payload_capacity",
    "random_payload",
    "transmit_subframe",
    "PassThroughTurbo",
    "TurboCodec",
]
