"""Turbo coding stage.

The paper omits turbo decoding from the benchmark ("commonly executed on
dedicated hardware ... the call to perform turbo decoding simply passes the
data through"), so the default stage here is :class:`PassThroughTurbo`,
which is exactly that: LLRs in, hard bits out, no redundancy.

As an extension (DESIGN.md §5) the module also provides a working LTE-style
rate-1/3 parallel-concatenated convolutional codec (:class:`TurboCodec`):
two 8-state RSC constituent encoders (generators 13/15 octal, as in
TS 36.212) around a quadratic permutation polynomial (QPP) interleaver,
decoded with iterative max-log-MAP (BCJR).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["PassThroughTurbo", "TurboCodec", "QppInterleaver", "RscEncoder"]

# LTE constituent code: constraint length 4, feedback 13 (octal), parity 15
# (octal); 8 trellis states.
_NUM_STATES = 8
_FEEDBACK = 0b011  # taps on the two delay elements feeding back (13 oct, minus MSB)
_PARITY = 0b101  # feedforward taps (15 oct, minus MSB)


class PassThroughTurbo:
    """The paper's default decoder stub: hard-decide the LLRs, rate 1.

    Transmit side performs no encoding; receive side maps LLR < 0 to bit 1.
    """

    rate_denominator = 1

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Identity encoding (no redundancy added)."""
        return np.asarray(bits, dtype=np.int64).reshape(-1).copy()

    def decode(self, llrs: np.ndarray, num_info_bits: int) -> np.ndarray:
        """Hard decision on the systematic LLRs."""
        llrs = np.asarray(llrs, dtype=np.float64).reshape(-1)
        if llrs.size != num_info_bits:
            raise ValueError(
                f"pass-through decoder expected {num_info_bits} LLRs, got {llrs.size}"
            )
        return (llrs < 0).astype(np.int64)


class QppInterleaver:
    """Quadratic permutation polynomial interleaver, π(i) = (f1·i + f2·i²) mod K.

    Parameters are chosen by Takeshita's sufficient conditions (f1 coprime
    with K; f2 sharing every prime factor of K) and verified to be a
    bijection at construction, rather than read from the TS 36.212 table —
    contention-free properties are preserved, exact table values are not.
    """

    def __init__(self, length: int) -> None:
        if length < 8:
            raise ValueError("interleaver length must be >= 8")
        self.length = length
        self.f1, self.f2 = self._choose_parameters(length)
        i = np.arange(length, dtype=np.int64)
        self.permutation = (self.f1 * i + self.f2 * i * i) % length
        inverse = np.empty(length, dtype=np.int64)
        inverse[self.permutation] = i
        self.inverse = inverse

    @staticmethod
    def _choose_parameters(length: int) -> tuple[int, int]:
        radical = 1
        n = length
        for p in range(2, n + 1):
            if p * p > n:
                break
            if n % p == 0:
                radical *= p
                while n % p == 0:
                    n //= p
        if n > 1:
            radical *= n
        i = np.arange(length, dtype=np.int64)
        # Candidate f2 values: multiples of the radical (Takeshita's
        # condition), ending with 0 — a squarefree length admits no
        # genuinely quadratic permutation, so the polynomial degenerates to
        # the linear f1·i there. Each candidate is verified to produce a
        # bijection before being accepted.
        f2_candidates = [
            (radical * m) % length for m in range(1, 9)
        ] + [0]
        for f2 in f2_candidates:
            for f1 in range(3, 3 + 2 * 64, 2):
                if math.gcd(f1, length) != 1:
                    continue
                perm = (f1 * i + f2 * i * i) % length
                if np.unique(perm).size == length:
                    return f1, f2
        raise ValueError(f"no QPP parameters found for length {length}")

    def interleave(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values).reshape(-1)
        if values.size != self.length:
            raise ValueError("length mismatch")
        return values[self.permutation]

    def deinterleave(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values).reshape(-1)
        if values.size != self.length:
            raise ValueError("length mismatch")
        return values[self.inverse]


class RscEncoder:
    """8-state recursive systematic convolutional encoder (13/15 octal)."""

    def __init__(self) -> None:
        # Precompute per-state transition tables.
        self.next_state = np.zeros((_NUM_STATES, 2), dtype=np.int64)
        self.parity_out = np.zeros((_NUM_STATES, 2), dtype=np.int64)
        for state in range(_NUM_STATES):
            for bit in range(2):
                feedback = bit ^ _parity_bits(state & _FEEDBACK)
                parity = feedback ^ _parity_bits(state & _PARITY)
                self.next_state[state, bit] = ((state >> 1) | (feedback << 2)) & 0b111
                self.parity_out[state, bit] = parity

    def encode(self, bits: np.ndarray, terminate: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Encode ``bits``; returns (parity bits, tail systematic+parity).

        With ``terminate`` the trellis is driven back to state 0 with three
        tail bit pairs, returned separately.
        """
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        parity = np.empty(bits.size, dtype=np.int64)
        state = 0
        for idx, bit in enumerate(bits):
            parity[idx] = self.parity_out[state, bit]
            state = self.next_state[state, bit]
        tail = []
        if terminate:
            for _ in range(3):
                # Input that forces the feedback to zero drains the register.
                drain_bit = _parity_bits(state & _FEEDBACK)
                tail.append(drain_bit)
                tail.append(self.parity_out[state, drain_bit])
                state = self.next_state[state, drain_bit]
        return parity, np.array(tail, dtype=np.int64)


def _parity_bits(value: int) -> int:
    return bin(value).count("1") & 1


@dataclass
class TurboCodec:
    """LTE-style rate-1/3 PCCC turbo codec with max-log-MAP decoding.

    Parameters
    ----------
    iterations:
        Decoder iterations (each iteration runs both constituent decoders).
    """

    iterations: int = 6

    rate_denominator = 3

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode to [systematic | parity1 | parity2 | tails] bit stream."""
        bits = np.asarray(bits, dtype=np.int64).reshape(-1)
        interleaver = QppInterleaver(bits.size)
        enc = RscEncoder()
        parity1, tail1 = enc.encode(bits)
        parity2, tail2 = enc.encode(interleaver.interleave(bits))
        return np.concatenate([bits, parity1, parity2, tail1, tail2])

    def encoded_length(self, num_info_bits: int) -> int:
        """Total coded bits for ``num_info_bits`` information bits."""
        return 3 * num_info_bits + 12

    def decode(self, llrs: np.ndarray, num_info_bits: int) -> np.ndarray:
        """Iterative max-log-MAP decoding.

        ``llrs`` follow the encoder's output layout and the LLR convention
        positive-means-zero used by :func:`repro.phy.modulation.soft_demap`.
        """
        llrs = np.asarray(llrs, dtype=np.float64).reshape(-1)
        k = num_info_bits
        if llrs.size != self.encoded_length(k):
            raise ValueError(
                f"expected {self.encoded_length(k)} LLRs, got {llrs.size}"
            )
        interleaver = QppInterleaver(k)
        sys_llr = llrs[:k]
        par1_llr = llrs[k : 2 * k]
        par2_llr = llrs[2 * k : 3 * k]
        sys_llr_int = interleaver.interleave(sys_llr)
        extrinsic = np.zeros(k)
        decoder = _MaxLogMap()
        for _ in range(self.iterations):
            apriori1 = extrinsic
            post1 = decoder.run(sys_llr + apriori1, par1_llr)
            extrinsic1 = post1 - sys_llr - apriori1
            apriori2 = interleaver.interleave(extrinsic1)
            post2 = decoder.run(sys_llr_int + apriori2, par2_llr)
            extrinsic2 = post2 - sys_llr_int - apriori2
            extrinsic = interleaver.deinterleave(extrinsic2)
            final_posterior = sys_llr + extrinsic1 + extrinsic
        return (final_posterior < 0).astype(np.int64)


class _MaxLogMap:
    """Max-log-MAP (BCJR with max instead of log-sum-exp) for the 8-state RSC."""

    def __init__(self) -> None:
        enc = RscEncoder()
        self.next_state = enc.next_state
        self.parity_out = enc.parity_out
        # Reverse transitions: for backward recursion.
        self.prev = [[] for _ in range(_NUM_STATES)]
        for state in range(_NUM_STATES):
            for bit in range(2):
                self.prev[enc.next_state[state, bit]].append((state, bit))

    def run(self, sys_llr: np.ndarray, par_llr: np.ndarray) -> np.ndarray:
        """Return per-bit posterior LLRs (positive-means-zero convention)."""
        k = sys_llr.size
        neg_inf = -1e30
        # Branch metric for (state, input bit) at step t:
        #   0.5 * (sign(sys) + sign(par)) with LLR convention b=0 -> +llr/2.
        gamma = np.empty((k, _NUM_STATES, 2))
        for bit in range(2):
            bit_sign = 1.0 if bit == 0 else -1.0
            for state in range(_NUM_STATES):
                par_sign = 1.0 if self.parity_out[state, bit] == 0 else -1.0
                gamma[:, state, bit] = 0.5 * (bit_sign * sys_llr + par_sign * par_llr)
        alpha = np.full((k + 1, _NUM_STATES), neg_inf)
        alpha[0, 0] = 0.0
        for t in range(k):
            nxt = np.full(_NUM_STATES, neg_inf)
            for state in range(_NUM_STATES):
                if alpha[t, state] <= neg_inf / 2:
                    continue
                for bit in range(2):
                    ns = self.next_state[state, bit]
                    cand = alpha[t, state] + gamma[t, state, bit]
                    if cand > nxt[ns]:
                        nxt[ns] = cand
            alpha[t + 1] = nxt
        beta = np.zeros((k + 1, _NUM_STATES))
        # Unterminated trellis within the iteration: uniform final beta.
        for t in range(k - 1, -1, -1):
            cur = np.full(_NUM_STATES, neg_inf)
            for state in range(_NUM_STATES):
                for bit in range(2):
                    ns = self.next_state[state, bit]
                    cand = gamma[t, state, bit] + beta[t + 1, ns]
                    if cand > cur[state]:
                        cur[state] = cand
            beta[t] = cur
        posterior = np.empty(k)
        for t in range(k):
            best0 = neg_inf
            best1 = neg_inf
            for state in range(_NUM_STATES):
                a = alpha[t, state]
                if a <= neg_inf / 2:
                    continue
                m0 = a + gamma[t, state, 0] + beta[t + 1, self.next_state[state, 0]]
                m1 = a + gamma[t, state, 1] + beta[t + 1, self.next_state[state, 1]]
                if m0 > best0:
                    best0 = m0
                if m1 > best1:
                    best1 = m1
            posterior[t] = best0 - best1
        return posterior
