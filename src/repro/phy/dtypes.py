"""Canonical numeric dtypes for the PHY kernels.

Every Fig. 5 kernel computes in double precision: ``complex128`` for
samples/weights/channel estimates and ``float64`` for noise variances and
LLRs. The serial chain historically relied on ``np.asarray(..,
dtype=np.complex128)`` calls sprinkled through each kernel; the batched
backend stacks many tasks into one array, so a single input with a
different dtype (a ``complex64`` capture buffer, or a platform
``longdouble``) would silently change the working precision of the whole
batch and break bit-exactness with the serial reference.

These helpers pin the working dtypes in one place. ``ensure_complex`` /
``ensure_real`` *coerce* (up- or down-cast) to the canonical dtype — they
never let the batch compute in whatever precision the input happened to
carry — and raise on non-numeric inputs instead of producing ``object``
arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["COMPLEX_DTYPE", "REAL_DTYPE", "ensure_complex", "ensure_real"]

#: Canonical complex working dtype of every PHY kernel.
COMPLEX_DTYPE = np.dtype(np.complex128)

#: Canonical real working dtype (noise variances, LLRs, windows).
REAL_DTYPE = np.dtype(np.float64)


def ensure_complex(array: np.ndarray) -> np.ndarray:
    """Return ``array`` as :data:`COMPLEX_DTYPE`, copying only if needed.

    Inputs of any real or complex dtype are coerced — including *higher*
    precision ones (``complex256``), which would otherwise silently upcast
    a whole batched computation and de-synchronize it from the serial
    reference. Non-numeric dtypes raise ``TypeError``.
    """
    array = np.asarray(array)
    if array.dtype == COMPLEX_DTYPE:
        return array
    if array.dtype.kind not in "biufc":
        raise TypeError(
            f"expected a numeric array, got dtype {array.dtype!r}"
        )
    return array.astype(COMPLEX_DTYPE)


def ensure_real(array: np.ndarray) -> np.ndarray:
    """Return ``array`` as :data:`REAL_DTYPE`, copying only if needed.

    Complex inputs raise (dropping an imaginary part silently is a bug);
    every real numeric dtype — ``float32`` and ``longdouble`` included —
    is coerced to the canonical double precision.
    """
    array = np.asarray(array)
    if array.dtype == REAL_DTYPE:
        return array
    if array.dtype.kind == "c":
        raise TypeError("expected a real array, got a complex dtype")
    if array.dtype.kind not in "biuf":
        raise TypeError(
            f"expected a numeric array, got dtype {array.dtype!r}"
        )
    return array.astype(REAL_DTYPE)
