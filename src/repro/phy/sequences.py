"""Uplink demodulation reference signals (DMRS).

LTE uplink reference symbols are built from Zadoff–Chu (ZC) sequences
(TS 36.211 §5.5): constant-amplitude sequences whose cyclic shifts are
orthogonal, which is what lets one reference symbol serve several layers.
The channel estimator's matched filter multiplies the received reference
symbol by the conjugate of the known sequence, exactly as in the paper's
Fig. 3 chain.
"""

from __future__ import annotations

import numpy as np

from .params import SUBCARRIERS_PER_PRB

__all__ = [
    "zadoff_chu",
    "largest_prime_below",
    "base_sequence",
    "dmrs_for_layer",
    "cyclic_shift",
]


def largest_prime_below(n: int) -> int:
    """Largest prime strictly below ``n`` (ZC sequence length selection)."""
    if n <= 2:
        raise ValueError("no prime strictly below 2")
    candidate = n - 1
    while candidate >= 2:
        if _is_prime(candidate):
            return candidate
        candidate -= 1
    raise ValueError("unreachable")


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def zadoff_chu(root: int, length: int) -> np.ndarray:
    """Zadoff–Chu sequence of a given root and (odd prime) length.

    ``x_q(m) = exp(-j * pi * q * m * (m+1) / N_zc)`` for odd ``N_zc``.
    """
    if length < 3:
        raise ValueError("length must be >= 3")
    if not _is_prime(length):
        raise ValueError("Zadoff-Chu length must be prime for full orthogonality")
    if not 1 <= root < length:
        raise ValueError(f"root must be in [1, {length - 1}]")
    m = np.arange(length)
    return np.exp(-1j * np.pi * root * m * (m + 1) / length)


def base_sequence(num_subcarriers: int, group: int = 0) -> np.ndarray:
    """DMRS base sequence spanning ``num_subcarriers`` subcarriers.

    Follows the TS 36.211 construction for allocations of three or more
    PRBs: a ZC sequence of the largest prime length below the allocation
    width, cyclically extended to the allocation width. ``group`` selects
    the ZC root (sequence-group hopping is out of scope; a fixed group per
    cell is used).
    """
    if num_subcarriers < SUBCARRIERS_PER_PRB:
        raise ValueError(
            f"allocation must span at least one PRB ({SUBCARRIERS_PER_PRB} subcarriers)"
        )
    n_zc = largest_prime_below(num_subcarriers)
    root = (group % (n_zc - 1)) + 1
    zc = zadoff_chu(root, n_zc)
    idx = np.arange(num_subcarriers) % n_zc
    return zc[idx]


def cyclic_shift(sequence: np.ndarray, shift_index: int, num_shifts: int = 12) -> np.ndarray:
    """Apply a phase-ramp cyclic shift ``exp(j*2*pi*shift*n/num_shifts)``.

    Distinct shift indices give (near-)orthogonal reference sequences,
    which is how multiple layers share the reference symbol.
    """
    if num_shifts < 1:
        raise ValueError("num_shifts must be >= 1")
    sequence = np.asarray(sequence, dtype=np.complex128)
    n = np.arange(sequence.size)
    alpha = 2.0 * np.pi * (shift_index % num_shifts) / num_shifts
    return sequence * np.exp(1j * alpha * n)


def dmrs_for_layer(
    num_subcarriers: int, layer: int, group: int = 0, num_shifts: int = 12
) -> np.ndarray:
    """Reference sequence for one transmission layer.

    Layers are separated by spreading the available cyclic shifts evenly,
    mirroring LTE's cyclic-shift-based DMRS multiplexing across layers.
    """
    if layer < 0:
        raise ValueError("layer must be >= 0")
    base = base_sequence(num_subcarriers, group=group)
    # Spread layers across the shift space for maximal separation.
    shift = (layer * (num_shifts // 4)) % num_shifts
    return cyclic_shift(base, shift, num_shifts=num_shifts)
