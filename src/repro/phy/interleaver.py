"""Channel interleaving / deinterleaving.

A row-column block interleaver in the spirit of the LTE PUSCH channel
interleaver (TS 36.212 §5.2.2.8): bits are written row-wise into a matrix
with a fixed number of columns, the columns are permuted, and bits are read
column-wise. The receiver chain applies the inverse after antenna combining,
as in the paper's Fig. 3 ("deinterleaver").
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "NUM_COLUMNS",
    "COLUMN_PERMUTATION",
    "interleave",
    "deinterleave",
    "deinterleave_rows",
    "interleave_indices",
]

#: Number of interleaver columns (LTE's sub-block interleaver uses 32).
NUM_COLUMNS = 32

#: TS 36.212 Table 5.1.4-1 inter-column permutation pattern.
COLUMN_PERMUTATION = np.array(
    [
        0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
        1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31,
    ],
    dtype=np.int64,
)


@lru_cache(maxsize=256)
def _cached_indices(length: int) -> np.ndarray:
    """Read-only interleaver permutation for one length (hot-path cache)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    rows = -(-length // NUM_COLUMNS)  # ceil division
    padded = rows * NUM_COLUMNS
    matrix = np.arange(padded).reshape(rows, NUM_COLUMNS)
    permuted = matrix[:, COLUMN_PERMUTATION]
    read_out = permuted.T.reshape(-1)
    indices = read_out[read_out < length]
    indices.setflags(write=False)
    return indices


def interleave_indices(length: int) -> np.ndarray:
    """Permutation ``p`` such that ``out[i] = in[p[i]]`` interleaves.

    Dummy positions created by padding the matrix to a whole number of rows
    are pruned, so the permutation is exact for any length. Returns a
    fresh (writable) copy; the kernels share a cached read-only variant.
    """
    return _cached_indices(int(length)).copy()


def interleave(values: np.ndarray) -> np.ndarray:
    """Interleave a 1-D array (bits or LLRs)."""
    values = np.asarray(values).reshape(-1)
    return values[_cached_indices(values.size)]


def deinterleave(values: np.ndarray) -> np.ndarray:
    """Invert :func:`interleave`."""
    values = np.asarray(values).reshape(-1)
    indices = _cached_indices(values.size)
    out = np.empty_like(values)
    out[indices] = values
    return out


def deinterleave_rows(values: np.ndarray) -> np.ndarray:
    """Invert :func:`interleave` independently on every row of a 2-D array.

    The batched backend stacks the interleaved streams of all same-shape
    users into ``(users, n)``; one fancy-indexed assignment deinterleaves
    every row with the shared permutation, bit-exactly matching per-row
    :func:`deinterleave` calls.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError("values must be two-dimensional (rows, n)")
    indices = _cached_indices(values.shape[1])
    out = np.empty_like(values)
    out[:, indices] = values
    return out
