"""LTE uplink numerology and benchmark-wide constants.

The values here follow the LTE physical-layer organization described in
Section II of the paper (and 3GPP TS 36.211): a 10 ms frame of ten 1 ms
subframes, each subframe holding two slots of seven SC-FDMA symbols with
the reference symbol in the middle (3 data + 1 reference + 3 data), and a
physical resource block (PRB) of twelve 15 kHz subcarriers lasting one
slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Subcarriers in one physical resource block.
SUBCARRIERS_PER_PRB = 12

#: Subcarrier spacing in Hz (15 kHz).
SUBCARRIER_SPACING_HZ = 15_000

#: SC-FDMA symbols per slot (normal cyclic prefix).
SYMBOLS_PER_SLOT = 7

#: Slots per subframe.
SLOTS_PER_SUBFRAME = 2

#: Subframes per radio frame.
SUBFRAMES_PER_FRAME = 10

#: Duration of one subframe in seconds (1 ms).
SUBFRAME_DURATION_S = 1e-3

#: Duration of one slot in seconds (0.5 ms).
SLOT_DURATION_S = SUBFRAME_DURATION_S / SLOTS_PER_SUBFRAME

#: Index of the reference (DMRS) symbol within a slot: symbols are arranged
#: as three data symbols, one reference symbol, three data symbols.
REFERENCE_SYMBOL_INDEX = 3

#: Data symbols per slot (all symbols except the reference symbol).
DATA_SYMBOLS_PER_SLOT = SYMBOLS_PER_SLOT - 1

#: Data symbols per subframe across both slots.
DATA_SYMBOLS_PER_SUBFRAME = DATA_SYMBOLS_PER_SLOT * SLOTS_PER_SUBFRAME

#: Maximum PRBs schedulable in one subframe for the benchmark's 20 MHz-like
#: configuration (the paper's parameter model uses MAX_PRB = 200 across two
#: slots, i.e. 100 PRBs per slot in a 20 MHz carrier).
MAX_PRB = 200

#: Maximum PRBs per slot (a PRB lasts one slot, so a "200 PRB" allocation is
#: 100 PRBs wide repeated over the subframe's two slots).
MAX_PRB_PER_SLOT = MAX_PRB // SLOTS_PER_SUBFRAME

#: Minimum PRBs a scheduled user may hold (Section V-A: "a user has to have
#: at least two PRBs to be scheduled for a subframe").
MIN_PRB_PER_USER = 2

#: Maximum users schedulable in one subframe (Section II-A / Fig. 6).
MAX_USERS_PER_SUBFRAME = 10

#: Receive antennas at the base station (four-antenna receiver, Section III).
NUM_RX_ANTENNAS = 4

#: Maximum spatial-multiplexing layers in the uplink (LTE-Advanced, [12]).
MAX_LAYERS = 4


class Modulation(enum.Enum):
    """Uplink modulation schemes supported by the benchmark."""

    QPSK = "QPSK"
    QAM16 = "16QAM"
    QAM64 = "64QAM"

    @property
    def bits_per_symbol(self) -> int:
        """Number of coded bits carried by one modulated symbol."""
        return _BITS_PER_SYMBOL[self]

    @property
    def constellation_order(self) -> int:
        """Constellation size (number of points)."""
        return 1 << self.bits_per_symbol

    @classmethod
    def from_name(cls, name: str) -> "Modulation":
        """Parse a modulation from a human-readable name.

        Accepts the enum value strings ("QPSK", "16QAM", "64QAM") and the
        enum member names ("QPSK", "QAM16", "QAM64"), case-insensitively.
        """
        text = name.strip().upper()
        for member in cls:
            if text in (member.value.upper(), member.name.upper()):
                return member
        raise ValueError(f"unknown modulation {name!r}")


_BITS_PER_SYMBOL = {
    Modulation.QPSK: 2,
    Modulation.QAM16: 4,
    Modulation.QAM64: 6,
}

#: All modulations in increasing spectral-efficiency order.
ALL_MODULATIONS = (Modulation.QPSK, Modulation.QAM16, Modulation.QAM64)


@dataclass(frozen=True)
class CellConfig:
    """Static configuration of the simulated cell / base-station receiver.

    Parameters
    ----------
    num_rx_antennas:
        Number of receive antennas at the base station.
    max_prb:
        Total PRBs schedulable per subframe (two slots).
    max_users:
        Maximum simultaneously scheduled users per subframe.
    fft_size:
        Size of the front-end FFT grid (subcarriers available per symbol).
        Must be able to hold ``max_prb_per_slot * SUBCARRIERS_PER_PRB``
        subcarriers.
    """

    num_rx_antennas: int = NUM_RX_ANTENNAS
    max_prb: int = MAX_PRB
    max_users: int = MAX_USERS_PER_SUBFRAME
    fft_size: int = 2048

    def __post_init__(self) -> None:
        if self.num_rx_antennas < 1:
            raise ValueError("num_rx_antennas must be >= 1")
        if self.max_prb < MIN_PRB_PER_USER:
            raise ValueError("max_prb too small")
        if self.max_prb % SLOTS_PER_SUBFRAME:
            raise ValueError("max_prb must cover both slots evenly")
        if self.max_users < 1:
            raise ValueError("max_users must be >= 1")
        needed = (self.max_prb // SLOTS_PER_SUBFRAME) * SUBCARRIERS_PER_PRB
        if self.fft_size < needed:
            raise ValueError(
                f"fft_size {self.fft_size} cannot hold {needed} subcarriers"
            )

    @property
    def max_prb_per_slot(self) -> int:
        """PRBs available across frequency within one slot."""
        return self.max_prb // SLOTS_PER_SUBFRAME


def prb_subcarriers(num_prb_per_slot: int) -> int:
    """Number of subcarriers spanned by ``num_prb_per_slot`` PRBs."""
    if num_prb_per_slot < 1:
        raise ValueError("num_prb_per_slot must be >= 1")
    return num_prb_per_slot * SUBCARRIERS_PER_PRB


def validate_allocation(num_prb: int, layers: int, modulation: Modulation) -> None:
    """Validate a user allocation against LTE and benchmark limits.

    Raises
    ------
    ValueError
        If the PRB count, layer count, or modulation is out of range.
    """
    if not MIN_PRB_PER_USER <= num_prb <= MAX_PRB:
        raise ValueError(
            f"PRB count {num_prb} outside [{MIN_PRB_PER_USER}, {MAX_PRB}]"
        )
    if num_prb % 2:
        raise ValueError(
            f"PRB count {num_prb} must be even (a PRB lasts one slot; "
            "allocations span both slots of the subframe)"
        )
    if not 1 <= layers <= MAX_LAYERS:
        raise ValueError(f"layer count {layers} outside [1, {MAX_LAYERS}]")
    if not isinstance(modulation, Modulation):
        raise TypeError(f"modulation must be a Modulation, got {modulation!r}")
