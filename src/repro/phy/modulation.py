"""Gray-mapped QPSK / 16-QAM / 64-QAM modulation, demodulation, and
max-log-MAP soft demapping.

The constellations follow 3GPP TS 36.211 Table 7.1.x: bits are mapped in
(I, Q) pairs with Gray labelling, and constellations are normalized to unit
average energy.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .params import Modulation

__all__ = [
    "constellation",
    "modulate",
    "demodulate_hard",
    "soft_demap",
    "bits_to_symbols",
    "symbols_to_bits",
]

# TS 36.211 per-axis PAM levels, before normalization. For each axis the
# bits select levels with Gray labelling; the tables below give the level
# for each integer value of the bit group controlling that axis.
_PAM_QPSK = np.array([1.0, -1.0])
_PAM_16 = np.array([1.0, 3.0, -1.0, -3.0])
_PAM_64 = np.array([3.0, 1.0, 5.0, 7.0, -3.0, -1.0, -5.0, -7.0])

_NORM = {
    Modulation.QPSK: np.sqrt(2.0),
    Modulation.QAM16: np.sqrt(10.0),
    Modulation.QAM64: np.sqrt(42.0),
}

_PAM = {
    Modulation.QPSK: _PAM_QPSK,
    Modulation.QAM16: _PAM_16,
    Modulation.QAM64: _PAM_64,
}


@lru_cache(maxsize=None)
def _cached_constellation(modulation: Modulation) -> np.ndarray:
    """Read-only cached constellation (hot path: one build per modulation)."""
    bits_per_symbol = modulation.bits_per_symbol
    half = bits_per_symbol // 2
    pam = _PAM[modulation]
    points = np.empty(1 << bits_per_symbol, dtype=np.complex128)
    for label in range(1 << bits_per_symbol):
        bits = [(label >> (bits_per_symbol - 1 - k)) & 1 for k in range(bits_per_symbol)]
        i_idx = 0
        q_idx = 0
        for k in range(half):
            i_idx = (i_idx << 1) | bits[2 * k]
            q_idx = (q_idx << 1) | bits[2 * k + 1]
        points[label] = (pam[i_idx] + 1j * pam[q_idx]) / _NORM[modulation]
    points.setflags(write=False)
    return points


def constellation(modulation: Modulation) -> np.ndarray:
    """Return the full unit-energy constellation as a complex array.

    The point at index ``i`` corresponds to the bit label given by the
    binary expansion of ``i`` (MSB first), with bits interleaved between
    the I and Q axes per TS 36.211 (even-position bits steer I, odd
    position bits steer Q).
    """
    return _cached_constellation(modulation).copy()


@lru_cache(maxsize=None)
def _cached_pam_column(modulation: Modulation) -> np.ndarray:
    """Normalized per-axis PAM levels as a read-only column vector.

    ``_PAM[m][i] / norm`` is exactly the I (or Q) coordinate of every
    constellation point whose axis bit-group equals ``i`` — complex
    division by a real scalar is componentwise, so these match
    ``constellation(m).real``/``.imag`` bit-for-bit.
    """
    levels = (_PAM[modulation] / _NORM[modulation])[:, None]
    levels.setflags(write=False)
    return levels


def bits_to_symbols(bits: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Group a flat bit array into integer symbol labels (MSB first)."""
    bits = np.asarray(bits, dtype=np.int64)
    bps = modulation.bits_per_symbol
    if bits.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if bits.size % bps:
        raise ValueError(
            f"bit count {bits.size} not a multiple of {bps} for {modulation.value}"
        )
    if bits.size and (bits.min() < 0 or bits.max() > 1):
        raise ValueError("bits must be 0/1")
    grouped = bits.reshape(-1, bps)
    weights = 1 << np.arange(bps - 1, -1, -1)
    return grouped @ weights


def symbols_to_bits(labels: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Expand integer symbol labels back into a flat bit array (MSB first)."""
    labels = np.asarray(labels, dtype=np.int64)
    bps = modulation.bits_per_symbol
    shifts = np.arange(bps - 1, -1, -1)
    return ((labels[:, None] >> shifts) & 1).reshape(-1)


def modulate(bits: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Map a flat 0/1 bit array onto unit-energy constellation symbols."""
    labels = bits_to_symbols(bits, modulation)
    return constellation(modulation)[labels]


def demodulate_hard(symbols: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Minimum-distance hard demodulation back to a flat bit array."""
    symbols = np.asarray(symbols, dtype=np.complex128).reshape(-1)
    points = constellation(modulation)
    # Distance from every received symbol to every constellation point.
    dist = np.abs(symbols[:, None] - points[None, :])
    labels = np.argmin(dist, axis=1)
    return symbols_to_bits(labels, modulation)


def soft_demap(
    symbols: np.ndarray,
    modulation: Modulation,
    noise_variance: float | np.ndarray = 1.0,
) -> np.ndarray:
    """Max-log-MAP soft demapping to log-likelihood ratios.

    Parameters
    ----------
    symbols:
        Equalized complex symbols (any shape; flattened).
    modulation:
        Constellation in use.
    noise_variance:
        Post-equalization noise variance, scalar or per-symbol array.

    Returns
    -------
    numpy.ndarray
        LLRs, one row of ``bits_per_symbol`` values per input symbol,
        flattened to 1-D in transmission bit order. Positive LLR means
        bit 0 is more likely (the conventional LLR = log P(b=0)/P(b=1)).
    """
    symbols = np.asarray(symbols, dtype=np.complex128).reshape(-1)
    noise = np.broadcast_to(
        np.asarray(noise_variance, dtype=np.float64), symbols.shape
    )
    if np.any(noise <= 0):
        raise ValueError("noise_variance must be positive")
    bps = modulation.bits_per_symbol
    half = bps // 2
    # The TS 36.211 constellations are Gray-mapped squares: the squared
    # distance separates as (pI-sI)² + (pQ-sQ)², even-position bits steer
    # only the I level and odd-position bits only the Q level. For a bit
    # steering one axis, the opposite axis attains the same minimum on
    # both hypotheses, so it cancels in the max-log difference:
    # LLR = (min_{axis bit=1} d_axis² − min_{axis bit=0} d_axis²)/noise.
    # This works per axis on 2^(bps/2) PAM levels instead of 2^bps
    # constellation points — the factorization that keeps soft demapping
    # from dominating the whole receiver tail at 64-QAM.
    levels = _cached_pam_column(modulation)
    num = symbols.size
    llrs = np.empty((bps, num), dtype=np.float64)
    for offset, coords in ((0, symbols.real), (1, symbols.imag)):
        dist2 = (levels - coords[None, :]) ** 2  # (2**half, num)
        # Axis labels are MSB-first over this axis's bit-group, so each
        # bit's 0/1 level subsets are alternating contiguous blocks: a
        # suffix min-tree over trailing label bits yields every bit's two
        # minima from cheap block reductions (min is order-independent).
        suffix = [dist2]
        for _ in range(half - 1):
            prev = suffix[-1].reshape(-1, 2, num)
            suffix.append(np.minimum(prev[:, 0], prev[:, 1]))
        for j in range(half):
            # suffix[half-1-j] rows are indexed by this axis's leading
            # j+1 bits; axis 0 below spans the leading bits, axis 1 is
            # the bit being demapped (transmitted at position 2j+offset).
            level = suffix[half - 1 - j].reshape(1 << j, 2, num)
            d01 = level.min(axis=0)
            llrs[2 * j + offset] = (d01[1] - d01[0]) / noise
    return llrs.T.reshape(-1)


def llrs_to_bits(llrs: np.ndarray) -> np.ndarray:
    """Hard decisions from LLRs (LLR < 0 → bit 1)."""
    return (np.asarray(llrs) < 0).astype(np.int64)
