"""FFT helpers for the channel-estimation chain.

The paper's channel estimator transforms the matched-filter output to the
time domain (IFFT), applies a window that keeps only the span where the
channel's impulse response can live, and transforms back (FFT). This module
provides those primitives plus a self-contained radix-2 FFT used by the
test suite to cross-check numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_power_of_two",
    "next_power_of_two",
    "fft_radix2",
    "ifft_radix2",
    "time_domain_window",
    "wraparound_window",
    "denoise_time_domain",
]


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two greater than or equal to ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1 << (n - 1).bit_length()


def fft_radix2(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT.

    A reference implementation (O(n log n), power-of-two lengths only) used
    to validate that the numpy transforms the library relies on agree with
    an independent implementation.
    """
    x = np.asarray(x, dtype=np.complex128).reshape(-1).copy()
    n = x.size
    if not is_power_of_two(n):
        raise ValueError("radix-2 FFT requires a power-of-two length")
    # Bit-reversal permutation.
    levels = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(levels):
        reversed_indices |= ((indices >> bit) & 1) << (levels - 1 - bit)
    x = x[reversed_indices]
    # Butterflies.
    size = 2
    while size <= n:
        half = size // 2
        twiddle = np.exp(-2j * np.pi * np.arange(half) / size)
        x = x.reshape(-1, size)
        even = x[:, :half]
        odd = x[:, half:] * twiddle
        x = np.concatenate([even + odd, even - odd], axis=1).reshape(-1)
        size *= 2
    return x


def ifft_radix2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`fft_radix2` (1/n normalization)."""
    x = np.asarray(x, dtype=np.complex128).reshape(-1)
    return np.conj(fft_radix2(np.conj(x))) / x.size


def time_domain_window(length: int, keep: int, taper: int = 0) -> np.ndarray:
    """Window that keeps the first ``keep`` time-domain samples.

    The channel impulse response of an allocation occupies only a small
    leading span of the IFFT output (delay spread ≪ symbol length), so the
    estimator zeroes everything else; an optional raised-cosine taper of
    ``taper`` samples softens the edge to limit spectral leakage.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if not 0 < keep <= length:
        raise ValueError("keep must be in (0, length]")
    if taper < 0 or keep + taper > length:
        raise ValueError("taper out of range")
    window = np.zeros(length, dtype=np.float64)
    window[:keep] = 1.0
    if taper:
        ramp = 0.5 * (1.0 + np.cos(np.pi * (np.arange(1, taper + 1)) / (taper + 1)))
        window[keep : keep + taper] = ramp
    return window


def wraparound_window(
    length: int, keep_front: int, keep_back: int, taper: int = 0
) -> np.ndarray:
    """Window keeping ``[0, keep_front)`` plus the wrapped ``[-keep_back, 0)``.

    A channel impulse response with fractional delay has energy on both
    sides of delay zero; the negative-delay half wraps to the end of the
    IFFT buffer, so a one-sided window would discard half the main lobe.
    """
    if keep_back < 0 or keep_front + keep_back > length:
        raise ValueError("keep_front + keep_back must fit in length")
    window = time_domain_window(length, keep_front, taper)
    if keep_back:
        window[-keep_back:] = 1.0
    return window


def denoise_time_domain(
    freq_response: np.ndarray, keep_fraction: float = 0.125, taper_fraction: float = 0.0
) -> np.ndarray:
    """IFFT → window → FFT denoising of a raw frequency response.

    This is the paper's three-kernel tail of channel estimation. The raw
    per-subcarrier estimate from the matched filter is noisy; confining the
    impulse response to its physically plausible leading span averages the
    noise down without biasing the channel estimate.

    Parameters
    ----------
    freq_response:
        Raw frequency-domain channel estimate (1-D).
    keep_fraction:
        Fraction of time-domain samples retained.
    taper_fraction:
        Fraction of samples used for the raised-cosine edge.
    """
    freq_response = np.asarray(freq_response, dtype=np.complex128).reshape(-1)
    n = freq_response.size
    if n < 2:
        raise ValueError("frequency response must have at least 2 samples")
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    keep = max(1, int(round(keep_fraction * n)))
    taper = int(round(taper_fraction * n))
    taper = min(taper, n - keep)
    impulse = np.fft.ifft(freq_response)
    impulse *= time_domain_window(n, keep, taper)
    return np.fft.fft(impulse)
