"""Base-station receiver front-end (Fig. 2).

The paper *excludes* the front-end from the benchmark "since the frontend
is statically defined and performed on all data received" — but it
describes it: radio receiver, receive filter, cyclic-prefix removal, and
FFT. This module implements that static chain so the library can run a
true time-domain end-to-end simulation: the transmitter's resource grid is
converted to an SC-FDMA waveform with cyclic prefixes, passed through the
(time-domain) channel front-end, filtered, CP-stripped, and FFT'd back
onto the grid the benchmark consumes.

Numerology follows LTE's 2048-point reference grid: 15 kHz subcarriers at
a 30.72 MHz sample rate, normal cyclic prefix (160 samples on the first
symbol of each slot, 144 on the rest).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.signal import firwin

from .params import SLOTS_PER_SUBFRAME, SYMBOLS_PER_SLOT

__all__ = [
    "FrontendConfig",
    "cp_lengths",
    "ofdm_modulate",
    "ofdm_demodulate",
    "ReceiveFilter",
    "Frontend",
]


@dataclass(frozen=True)
class FrontendConfig:
    """Static front-end parameters (TS 36.211 normal CP at 2048-FFT scale).

    ``fft_size`` may be scaled down (with CP lengths scaling accordingly)
    to keep tests fast; 2048 is the full-rate reference.
    """

    fft_size: int = 2048
    #: CP lengths at fft_size=2048: 160 for symbol 0 of a slot, 144 after.
    first_cp_2048: int = 160
    rest_cp_2048: int = 144

    def __post_init__(self) -> None:
        if self.fft_size < 128 or self.fft_size & (self.fft_size - 1):
            raise ValueError("fft_size must be a power of two >= 128")

    @property
    def scale(self) -> float:
        return self.fft_size / 2048.0

    @property
    def sample_rate_hz(self) -> float:
        """15 kHz subcarriers × fft_size."""
        return 15_000.0 * self.fft_size

    def cp_length(self, symbol_in_slot: int) -> int:
        base = self.first_cp_2048 if symbol_in_slot == 0 else self.rest_cp_2048
        return max(1, int(round(base * self.scale)))

    @property
    def samples_per_slot(self) -> int:
        return sum(
            self.cp_length(s) + self.fft_size for s in range(SYMBOLS_PER_SLOT)
        )

    @property
    def samples_per_subframe(self) -> int:
        return self.samples_per_slot * SLOTS_PER_SUBFRAME


def cp_lengths(config: FrontendConfig) -> list[int]:
    """Cyclic-prefix length of each of the subframe's 14 symbols."""
    return [
        config.cp_length(s % SYMBOLS_PER_SLOT)
        for s in range(SLOTS_PER_SUBFRAME * SYMBOLS_PER_SLOT)
    ]


def _grid_to_bins(symbol_row: np.ndarray, fft_size: int) -> np.ndarray:
    """Map allocated subcarriers (DC-adjacent, contiguous) onto FFT bins.

    Subcarrier k sits at bin ``(k - width/2) mod fft_size`` so the
    allocation straddles DC symmetrically, like an LTE carrier.
    """
    width = symbol_row.size
    if width > fft_size:
        raise ValueError("allocation wider than the FFT grid")
    bins = np.zeros(fft_size, dtype=np.complex128)
    offsets = (np.arange(width) - width // 2) % fft_size
    bins[offsets] = symbol_row
    return bins


def _bins_to_grid(bins: np.ndarray, width: int) -> np.ndarray:
    offsets = (np.arange(width) - width // 2) % bins.size
    return bins[offsets]


def ofdm_modulate(grid: np.ndarray, config: FrontendConfig | None = None) -> np.ndarray:
    """Resource grid → time-domain waveform with cyclic prefixes.

    Parameters
    ----------
    grid:
        ``(num_symbols, num_subcarriers)`` frequency-domain symbols for one
        antenna/layer.

    Returns
    -------
    numpy.ndarray
        Concatenated time-domain samples (CP + body per symbol).
    """
    config = config or FrontendConfig()
    grid = np.asarray(grid, dtype=np.complex128)
    if grid.ndim != 2:
        raise ValueError("grid must be (symbols, subcarriers)")
    pieces = []
    for row_index in range(grid.shape[0]):
        bins = _grid_to_bins(grid[row_index], config.fft_size)
        body = np.fft.ifft(bins) * np.sqrt(config.fft_size)
        cp = config.cp_length(row_index % SYMBOLS_PER_SLOT)
        pieces.append(body[-cp:])
        pieces.append(body)
    return np.concatenate(pieces)


def ofdm_demodulate(
    waveform: np.ndarray,
    num_symbols: int,
    num_subcarriers: int,
    config: FrontendConfig | None = None,
) -> np.ndarray:
    """Time-domain waveform → resource grid (CP removal + FFT).

    This is the front-end's static work: strip each symbol's cyclic
    prefix, FFT the body, extract the allocated subcarriers.
    """
    config = config or FrontendConfig()
    waveform = np.asarray(waveform, dtype=np.complex128).reshape(-1)
    grid = np.empty((num_symbols, num_subcarriers), dtype=np.complex128)
    cursor = 0
    for row_index in range(num_symbols):
        cp = config.cp_length(row_index % SYMBOLS_PER_SLOT)
        cursor += cp  # cyclic prefix removal
        body = waveform[cursor : cursor + config.fft_size]
        if body.size < config.fft_size:
            raise ValueError("waveform too short for the requested symbols")
        cursor += config.fft_size
        bins = np.fft.fft(body) / np.sqrt(config.fft_size)
        grid[row_index] = _bins_to_grid(bins, num_subcarriers)
    return grid


class ReceiveFilter:
    """Anti-adjacent-channel receive filter (windowed-sinc FIR, linear phase).

    Applied by circular convolution per subframe. The passband covers the
    occupied carrier; the group delay of the symmetric FIR is compensated
    so the symbol timing is preserved.
    """

    def __init__(
        self,
        config: FrontendConfig | None = None,
        occupied_subcarriers: int = 1200,
        num_taps: int = 129,
    ) -> None:
        if num_taps < 3 or num_taps % 2 == 0:
            raise ValueError("num_taps must be odd and >= 3")
        self.config = config or FrontendConfig()
        if occupied_subcarriers > self.config.fft_size:
            raise ValueError("occupied band wider than the sampling grid")
        self.occupied_subcarriers = occupied_subcarriers
        # Normalized cutoff: occupied band / sample rate, with 10% margin.
        cutoff = min(0.999, 1.1 * occupied_subcarriers / self.config.fft_size)
        self.taps = firwin(num_taps, cutoff)
        self.group_delay = (num_taps - 1) // 2

    def apply(self, waveform: np.ndarray) -> np.ndarray:
        """Filter a subframe's samples (circular, delay-compensated)."""
        waveform = np.asarray(waveform, dtype=np.complex128).reshape(-1)
        if waveform.size < self.taps.size:
            raise ValueError("waveform shorter than the filter")
        spectrum = np.fft.fft(waveform)
        response = np.fft.fft(self.taps, waveform.size)
        filtered = np.fft.ifft(spectrum * response)
        # Compensate the FIR group delay (symmetric taps → integer delay).
        return np.roll(filtered, -self.group_delay)


class Frontend:
    """The complete Fig. 2 receive front-end for one antenna."""

    def __init__(
        self,
        config: FrontendConfig | None = None,
        occupied_subcarriers: int = 1200,
        use_filter: bool = True,
    ) -> None:
        self.config = config or FrontendConfig()
        self.occupied_subcarriers = occupied_subcarriers
        self.filter = (
            ReceiveFilter(self.config, occupied_subcarriers) if use_filter else None
        )

    def receive(self, waveform: np.ndarray, num_symbols: int = 14) -> np.ndarray:
        """Waveform in, resource grid out (filter → CP removal → FFT)."""
        if self.filter is not None:
            waveform = self.filter.apply(waveform)
        return ofdm_demodulate(
            waveform, num_symbols, self.occupied_subcarriers, self.config
        )
