"""LTE cyclic redundancy checks (TS 36.212 §5.1.1).

Implements the gCRC24A, gCRC24B, gCRC16 and gCRC8 generator polynomials used
by LTE transport-channel processing, both as a straightforward bitwise
shift-register and as a vectorized variant used on hot paths: the CRC is
linear over GF(2), so the register after an ``n``-bit message is the XOR of
``x^(width + n - 1 - i) mod g(x)`` over the set bit positions ``i``. The
remainders of ``x^k`` are cached per polynomial (grown on demand), turning
each CRC into one ``np.bitwise_xor.reduce`` — identical results to the
bitwise reference, which ``compute_bitwise`` keeps as the oracle. The
receiver chain attaches CRC24A to each user's transport block and checks it
after (pass-through) turbo decoding, as in Fig. 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CrcPolynomial", "CRC24A", "CRC24B", "CRC16", "CRC8", "crc_attach", "crc_check"]


@dataclass(frozen=True)
class CrcPolynomial:
    """A CRC generator polynomial of degree ``width``.

    ``poly`` holds the polynomial coefficients below the leading term, MSB
    first (the conventional "normal" representation).
    """

    name: str
    width: int
    poly: int
    _remainders: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # x^0 mod g(x) = 1; grown on demand by _remainders_upto.
        seed = np.array([1], dtype=np.uint64)
        seed.setflags(write=False)
        object.__setattr__(self, "_remainders", seed)

    def _remainders_upto(self, count: int) -> np.ndarray:
        """``x^k mod g(x)`` for ``k in [0, count)``, cached and grown on demand.

        Growth is geometric so repeated CRCs over ever-longer messages stay
        amortized O(1) per bit. Concurrent growth from the thread runtime is
        benign: the extension is deterministic, so racing writers install
        identical arrays and readers only ever see a complete snapshot.
        """
        cached = self._remainders
        if cached.size >= count:
            return cached
        target = max(count, 2 * cached.size)
        grown = np.empty(target, dtype=np.uint64)
        grown[: cached.size] = cached
        top = 1 << (self.width - 1)
        mask = (1 << self.width) - 1
        reg = int(cached[-1])
        for k in range(cached.size, target):
            if reg & top:
                reg = ((reg << 1) ^ self.poly) & mask
            else:
                reg = (reg << 1) & mask
            grown[k] = reg
        grown.setflags(write=False)
        object.__setattr__(self, "_remainders", grown)
        return grown

    def compute_bitwise(self, bits: np.ndarray) -> int:
        """Reference bitwise CRC over a 0/1 bit array (MSB-first order)."""
        bits = _as_bits(bits)
        reg = 0
        top = 1 << (self.width - 1)
        mask = (1 << self.width) - 1
        for bit in bits:
            reg ^= int(bit) << (self.width - 1)
            if reg & top:
                reg = ((reg << 1) ^ self.poly) & mask
            else:
                reg = (reg << 1) & mask
        return reg

    def compute(self, bits: np.ndarray) -> int:
        """Vectorized CRC over a 0/1 bit array (MSB-first order).

        Exploits GF(2) linearity: the register equals the XOR of
        ``x^(width + n - 1 - i) mod g(x)`` over set bit positions ``i``.
        Always matches :meth:`compute_bitwise` exactly.
        """
        bits = _as_bits(bits)
        set_positions = np.flatnonzero(bits)
        if not set_positions.size:
            return 0
        remainders = self._remainders_upto(self.width + bits.size)
        exponents = self.width + (bits.size - 1) - set_positions
        return int(np.bitwise_xor.reduce(remainders[exponents]))

    def to_bits(self, value: int) -> np.ndarray:
        """Expand a CRC register value to a bit array (MSB first)."""
        shifts = np.arange(self.width - 1, -1, -1)
        return ((value >> shifts) & 1).astype(np.int64)


def _as_bits(bits: np.ndarray) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.int64).reshape(-1)
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise ValueError("bits must be 0/1")
    return arr


#: TS 36.212 transport-block CRC.
CRC24A = CrcPolynomial("CRC24A", 24, 0x864CFB)
#: TS 36.212 code-block segmentation CRC.
CRC24B = CrcPolynomial("CRC24B", 24, 0x800063)
#: TS 36.212 16-bit CRC (small transport blocks / control).
CRC16 = CrcPolynomial("CRC16", 16, 0x1021)
#: TS 36.212 8-bit CRC.
CRC8 = CrcPolynomial("CRC8", 8, 0x9B)


def crc_attach(bits: np.ndarray, poly: CrcPolynomial = CRC24A) -> np.ndarray:
    """Append the CRC parity bits to a payload bit array."""
    bits = _as_bits(bits)
    parity = poly.to_bits(poly.compute(bits))
    return np.concatenate([bits, parity])


def crc_check(bits_with_crc: np.ndarray, poly: CrcPolynomial = CRC24A) -> bool:
    """Check a payload+CRC bit array; returns True when the CRC matches."""
    bits_with_crc = _as_bits(bits_with_crc)
    if bits_with_crc.size < poly.width:
        raise ValueError("input shorter than the CRC itself")
    payload = bits_with_crc[: -poly.width]
    parity = bits_with_crc[-poly.width :]
    return poly.compute(payload) == int(
        np.dot(parity, 1 << np.arange(poly.width - 1, -1, -1))
    )
