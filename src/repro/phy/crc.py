"""LTE cyclic redundancy checks (TS 36.212 §5.1.1).

Implements the gCRC24A, gCRC24B, gCRC16 and gCRC8 generator polynomials used
by LTE transport-channel processing, both as a straightforward bitwise
shift-register and as a byte-table-driven variant used on hot paths. The
receiver chain attaches CRC24A to each user's transport block and checks it
after (pass-through) turbo decoding, as in Fig. 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CrcPolynomial", "CRC24A", "CRC24B", "CRC16", "CRC8", "crc_attach", "crc_check"]


@dataclass(frozen=True)
class CrcPolynomial:
    """A CRC generator polynomial of degree ``width``.

    ``poly`` holds the polynomial coefficients below the leading term, MSB
    first (the conventional "normal" representation).
    """

    name: str
    width: int
    poly: int
    _table: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_table", self._build_table())

    def _build_table(self) -> np.ndarray:
        """Precompute the CRC of every byte value for table-driven updates."""
        table = np.zeros(256, dtype=np.uint64)
        top = 1 << (self.width - 1)
        mask = (1 << self.width) - 1
        for byte in range(256):
            reg = byte << (self.width - 8)
            for _ in range(8):
                if reg & top:
                    reg = ((reg << 1) ^ self.poly) & mask
                else:
                    reg = (reg << 1) & mask
            table[byte] = reg
        return table

    def compute_bitwise(self, bits: np.ndarray) -> int:
        """Reference bitwise CRC over a 0/1 bit array (MSB-first order)."""
        bits = _as_bits(bits)
        reg = 0
        top = 1 << (self.width - 1)
        mask = (1 << self.width) - 1
        for bit in bits:
            reg ^= int(bit) << (self.width - 1)
            if reg & top:
                reg = ((reg << 1) ^ self.poly) & mask
            else:
                reg = (reg << 1) & mask
        return reg

    def compute(self, bits: np.ndarray) -> int:
        """Table-driven CRC over a 0/1 bit array (MSB-first order).

        Bit arrays whose length is not a byte multiple are processed with a
        bitwise tail, so the result always matches :meth:`compute_bitwise`.
        """
        bits = _as_bits(bits)
        n_whole = (bits.size // 8) * 8
        reg = 0
        mask = (1 << self.width) - 1
        if n_whole:
            packed = np.packbits(bits[:n_whole].astype(np.uint8))
            shift = self.width - 8
            for byte in packed:
                idx = ((reg >> shift) ^ int(byte)) & 0xFF
                reg = ((reg << 8) ^ int(self._table[idx])) & mask
        top = 1 << (self.width - 1)
        for bit in bits[n_whole:]:
            reg ^= int(bit) << (self.width - 1)
            if reg & top:
                reg = ((reg << 1) ^ self.poly) & mask
            else:
                reg = (reg << 1) & mask
        return reg

    def to_bits(self, value: int) -> np.ndarray:
        """Expand a CRC register value to a bit array (MSB first)."""
        shifts = np.arange(self.width - 1, -1, -1)
        return ((value >> shifts) & 1).astype(np.int64)


def _as_bits(bits: np.ndarray) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.int64).reshape(-1)
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise ValueError("bits must be 0/1")
    return arr


#: TS 36.212 transport-block CRC.
CRC24A = CrcPolynomial("CRC24A", 24, 0x864CFB)
#: TS 36.212 code-block segmentation CRC.
CRC24B = CrcPolynomial("CRC24B", 24, 0x800063)
#: TS 36.212 16-bit CRC (small transport blocks / control).
CRC16 = CrcPolynomial("CRC16", 16, 0x1021)
#: TS 36.212 8-bit CRC.
CRC8 = CrcPolynomial("CRC8", 8, 0x9B)


def crc_attach(bits: np.ndarray, poly: CrcPolynomial = CRC24A) -> np.ndarray:
    """Append the CRC parity bits to a payload bit array."""
    bits = _as_bits(bits)
    parity = poly.to_bits(poly.compute(bits))
    return np.concatenate([bits, parity])


def crc_check(bits_with_crc: np.ndarray, poly: CrcPolynomial = CRC24A) -> bool:
    """Check a payload+CRC bit array; returns True when the CRC matches."""
    bits_with_crc = _as_bits(bits_with_crc)
    if bits_with_crc.size < poly.width:
        raise ValueError("input shorter than the CRC itself")
    payload = bits_with_crc[: -poly.width]
    parity = bits_with_crc[-poly.width :]
    return poly.compute(payload) == int(
        np.dot(parity, 1 << np.arange(poly.width - 1, -1, -1))
    )
