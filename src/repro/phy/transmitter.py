"""UE-side SC-FDMA uplink transmitter.

Synthesizes the signal a base station receives from one user so the
benchmark can process realistic data: payload bits get a CRC24A, pass the
(by default pass-through) turbo stage, are modulated, interleaved at symbol
level (the paper's receiver deinterleaves *before* soft demapping, so the
interleaver operates on modulated symbols), mapped to layers, DFT-precoded
per SC-FDMA symbol, and placed on the subframe grid together with the
per-layer DMRS reference symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import interleaver as il
from .crc import CRC24A, crc_attach
from .modulation import modulate
from .params import (
    DATA_SYMBOLS_PER_SUBFRAME,
    REFERENCE_SYMBOL_INDEX,
    SLOTS_PER_SUBFRAME,
    SUBCARRIERS_PER_PRB,
    SYMBOLS_PER_SLOT,
    Modulation,
    validate_allocation,
)
from .sequences import dmrs_for_layer
from .turbo import PassThroughTurbo

__all__ = [
    "UserAllocation",
    "TxSubframe",
    "payload_capacity",
    "data_symbol_indices",
    "reference_symbol_indices",
    "transmit_subframe",
    "random_payload",
]


@dataclass(frozen=True)
class UserAllocation:
    """Frequency/layer/modulation allocation of one user in one subframe.

    ``num_prb`` counts PRBs over the whole subframe (paper convention:
    MAX_PRB = 200 across two slots → the allocation is ``num_prb / 2`` PRBs
    wide in frequency, repeated in both slots).
    """

    num_prb: int
    layers: int
    modulation: Modulation

    def __post_init__(self) -> None:
        validate_allocation(self.num_prb, self.layers, self.modulation)

    @property
    def prb_per_slot(self) -> int:
        """Frequency width of the allocation in PRBs."""
        return self.num_prb // SLOTS_PER_SUBFRAME

    @property
    def num_subcarriers(self) -> int:
        """Frequency width of the allocation in subcarriers."""
        return self.prb_per_slot * SUBCARRIERS_PER_PRB


@dataclass
class TxSubframe:
    """Everything the transmitter produced for one user-subframe."""

    allocation: UserAllocation
    payload: np.ndarray
    grid: np.ndarray  # (layers, 14 symbols, num_subcarriers)
    coded_bits: np.ndarray = field(repr=False, default=None)


def data_symbol_indices() -> list[int]:
    """Indices of the 12 data symbols within the subframe's 14 symbols."""
    indices = []
    for slot in range(SLOTS_PER_SUBFRAME):
        base = slot * SYMBOLS_PER_SLOT
        for sym in range(SYMBOLS_PER_SLOT):
            if sym != REFERENCE_SYMBOL_INDEX:
                indices.append(base + sym)
    return indices


def reference_symbol_indices() -> list[int]:
    """Indices of the reference (DMRS) symbols within the subframe."""
    return [
        slot * SYMBOLS_PER_SLOT + REFERENCE_SYMBOL_INDEX
        for slot in range(SLOTS_PER_SUBFRAME)
    ]


def payload_capacity(allocation: UserAllocation, codec=None) -> int:
    """Payload bits (before CRC) that exactly fill the allocation.

    With the default pass-through codec this is
    ``subcarriers × 12 data symbols × layers × bits_per_symbol − 24``.
    """
    codec = codec or PassThroughTurbo()
    total_res = (
        allocation.num_subcarriers * DATA_SYMBOLS_PER_SUBFRAME * allocation.layers
    )
    coded_capacity = total_res * allocation.modulation.bits_per_symbol
    if codec.rate_denominator == 1:
        info = coded_capacity - CRC24A.width
    else:
        # Rate-1/3 turbo with 12 tail bits: 3*(k) + 12 <= coded capacity.
        info = (coded_capacity - 12) // 3 - CRC24A.width
    if info < 1:
        raise ValueError("allocation too small to carry any payload")
    return info


def random_payload(
    allocation: UserAllocation, rng: np.random.Generator, codec=None
) -> np.ndarray:
    """Draw a random payload of exactly the allocation's capacity."""
    return rng.integers(0, 2, size=payload_capacity(allocation, codec), dtype=np.int64)


def transmit_subframe(
    allocation: UserAllocation,
    payload: np.ndarray,
    rng: np.random.Generator | None = None,
    codec=None,
    scrambling_c_init: int | None = None,
) -> TxSubframe:
    """Build the transmitted subframe grid for one user.

    Parameters
    ----------
    allocation:
        The user's PRB/layer/modulation allocation.
    payload:
        Information bits; must match :func:`payload_capacity` exactly
        (unused coded-capacity padding is appended with random bits when a
        redundant codec leaves slack).
    rng:
        Only needed to draw padding bits when the codec rate leaves slack.
    codec:
        Turbo stage; defaults to the paper's pass-through.
    scrambling_c_init:
        When given, the coded bit stream is XOR-scrambled with the LTE
        Gold sequence seeded by this value (see ``repro.phy.scrambling``)
        before modulation.
    """
    codec = codec or PassThroughTurbo()
    payload = np.asarray(payload, dtype=np.int64).reshape(-1)
    expected = payload_capacity(allocation, codec)
    if payload.size != expected:
        raise ValueError(f"payload must be exactly {expected} bits, got {payload.size}")

    coded = codec.encode(crc_attach(payload))
    total_res = (
        allocation.num_subcarriers * DATA_SYMBOLS_PER_SUBFRAME * allocation.layers
    )
    bps = allocation.modulation.bits_per_symbol
    slack = total_res * bps - coded.size
    if slack:
        if rng is None:
            padding = np.zeros(slack, dtype=np.int64)
        else:
            padding = rng.integers(0, 2, size=slack, dtype=np.int64)
        coded = np.concatenate([coded, padding])

    if scrambling_c_init is not None:
        from .scrambling import scramble_bits

        coded = scramble_bits(coded, scrambling_c_init)

    symbols = modulate(coded, allocation.modulation)
    symbols = il.interleave(symbols)

    # Layer mapping: consecutive symbols round-robin across layers.
    layers = allocation.layers
    per_layer = symbols.reshape(-1, layers).T  # (layers, res_per_layer)

    num_sc = allocation.num_subcarriers
    grid = np.zeros(
        (layers, SLOTS_PER_SUBFRAME * SYMBOLS_PER_SLOT, num_sc), dtype=np.complex128
    )
    data_idx = data_symbol_indices()
    for layer in range(layers):
        blocks = per_layer[layer].reshape(DATA_SYMBOLS_PER_SUBFRAME, num_sc)
        # SC-FDMA transform precoding: DFT each symbol's block.
        precoded = np.fft.fft(blocks, axis=1) / np.sqrt(num_sc)
        for row, sym in enumerate(data_idx):
            grid[layer, sym, :] = precoded[row]
        dmrs = dmrs_for_layer(num_sc, layer)
        for sym in reference_symbol_indices():
            grid[layer, sym, :] = dmrs
    return TxSubframe(allocation=allocation, payload=payload.copy(), grid=grid, coded_bits=coded)
