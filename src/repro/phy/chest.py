"""Channel estimation: matched filter → IFFT → window → FFT (Fig. 3).

Estimation runs once per slot, per (receive antenna, layer) pair — the
per-task unit the benchmark parallelizes (Section III: up to 4 antennas ×
4 layers = 16 tasks per slot).

Layers share the reference symbol through cyclically shifted DMRS
sequences, so the matched filter (multiply by the conjugate of the desired
layer's sequence) moves the desired layer's channel response to the leading
time-domain span and the other layers' responses to offsets of N/4, N/2,
3N/4; the time-domain window then isolates the desired layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fftutil import wraparound_window
from .sequences import dmrs_for_layer

__all__ = ["ChestConfig", "matched_filter", "estimate_channel", "estimate_noise_variance"]


@dataclass(frozen=True)
class ChestConfig:
    """Tuning knobs of the channel estimator.

    ``keep_fraction`` is the fraction of time-domain samples kept at
    positive delays; ``back_fraction`` is the fraction kept at wrapped
    negative delays (the other half of a fractional-delay main lobe). Each
    must stay below the layer spacing (1/4 of the span) or cross-layer
    interference leaks through.
    """

    keep_fraction: float = 0.125
    back_fraction: float = 0.0625
    taper_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 0.25:
            raise ValueError("keep_fraction must be in (0, 0.25]")
        if not 0.0 <= self.back_fraction < 0.1875:
            raise ValueError("back_fraction must be in [0, 0.1875)")
        if self.taper_fraction < 0:
            raise ValueError("taper_fraction must be >= 0")

    def window_lengths(self, n: int) -> tuple[int, int, int]:
        """(keep_front, keep_back, taper) sample counts for span ``n``."""
        keep = max(1, int(round(self.keep_fraction * n)))
        back = int(round(self.back_fraction * n))
        taper = min(int(round(self.taper_fraction * n)), n - keep - back)
        return keep, back, taper


def matched_filter(received_ref: np.ndarray, layer: int) -> np.ndarray:
    """Multiply the received reference symbol by the layer's conjugate DMRS."""
    received_ref = np.asarray(received_ref, dtype=np.complex128).reshape(-1)
    reference = dmrs_for_layer(received_ref.size, layer)
    return received_ref * np.conj(reference)


def estimate_channel(
    received_ref: np.ndarray,
    layer: int,
    config: ChestConfig | None = None,
) -> np.ndarray:
    """Estimate one (antenna, layer) channel from a received reference symbol.

    Implements the paper's four-kernel chain: matched filter, IFFT to time
    domain, window, FFT back to frequency domain.
    """
    config = config or ChestConfig()
    raw = matched_filter(received_ref, layer)
    n = raw.size
    impulse = np.fft.ifft(raw)
    keep, back, taper = config.window_lengths(n)
    impulse *= wraparound_window(n, keep, back, taper)
    return np.fft.fft(impulse)


def estimate_noise_variance(
    received_ref: np.ndarray, layer: int, config: ChestConfig | None = None
) -> float:
    """Estimate the noise variance from the discarded time-domain span.

    The samples the window throws away contain (almost) no channel energy
    for the desired layer, so their mean power estimates noise plus
    cross-layer leakage — which is exactly the disturbance the combiner
    should regularize against.
    """
    config = config or ChestConfig()
    raw = matched_filter(received_ref, layer)
    n = raw.size
    impulse = np.fft.ifft(raw)
    keep, _, _ = config.window_lengths(n)
    # Use the guard region between the kept span and the next layer's
    # expected offset (n/4) — it holds noise only.
    guard = impulse[keep : max(keep + 1, n // 4)]
    if guard.size == 0:
        guard = impulse[keep:]
    if guard.size == 0:
        return 0.0
    # Per-subcarrier noise variance: time-domain sample power times n.
    return float(np.mean(np.abs(guard) ** 2) * n)
