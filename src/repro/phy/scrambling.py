"""PUSCH bit scrambling with LTE Gold sequences (TS 36.211 §5.3.1 / §7.2).

LTE scrambles every user's coded bits with a user-specific pseudo-random
(length-31 Gold) sequence so that inter-cell interference looks like
noise. The paper's kernel list does not call scrambling out explicitly
(it is a trivially cheap XOR), but a realistic uplink transmits scrambled
bits — so the transmitter and receiver chain support it as an optional
stage: bits are XOR-scrambled before modulation, and the receiver flips
the corresponding LLR signs before decoding.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gold_sequence", "scramble_bits", "descramble_llrs", "pusch_c_init"]

#: TS 36.211 §7.2: the second m-sequence is advanced by Nc = 1600.
_NC = 1600


def gold_sequence(c_init: int, length: int) -> np.ndarray:
    """LTE pseudo-random sequence c(n) of the given length.

    ``x1`` is seeded with 1, ``x2`` with ``c_init``; both are length-31
    LFSRs (x1: x^31 = x^3 + 1; x2: x^31 = x^3 + x^2 + x + 1) and the output
    starts after the Nc = 1600 warm-up.
    """
    if length < 0:
        raise ValueError("length must be >= 0")
    if not 0 <= c_init < (1 << 31):
        raise ValueError("c_init must fit in 31 bits")
    total = _NC + length
    x1 = np.zeros(total + 31, dtype=np.int8)
    x2 = np.zeros(total + 31, dtype=np.int8)
    x1[0] = 1
    for bit in range(31):
        x2[bit] = (c_init >> bit) & 1
    for n in range(total):
        x1[n + 31] = (x1[n + 3] + x1[n]) % 2
        x2[n + 31] = (x2[n + 3] + x2[n + 2] + x2[n + 1] + x2[n]) % 2
    return ((x1[_NC : _NC + length] + x2[_NC : _NC + length]) % 2).astype(np.int64)


def pusch_c_init(rnti: int, subframe_index: int = 0, cell_id: int = 0) -> int:
    """TS 36.211 §5.3.1 scrambling seed for a user (RNTI) in a subframe.

    ``c_init = RNTI · 2^14 + floor(ns/2) · 2^9 + cell_id`` with ns the
    slot number (two slots per subframe).
    """
    if rnti < 0 or subframe_index < 0 or cell_id < 0:
        raise ValueError("rnti, subframe_index, cell_id must be >= 0")
    ns = (subframe_index % 10) * 2
    return ((rnti << 14) + ((ns // 2) << 9) + cell_id) & 0x7FFFFFFF


def scramble_bits(bits: np.ndarray, c_init: int) -> np.ndarray:
    """XOR a coded bit stream with the user's Gold sequence."""
    bits = np.asarray(bits, dtype=np.int64).reshape(-1)
    if bits.size and (bits.min() < 0 or bits.max() > 1):
        raise ValueError("bits must be 0/1")
    return bits ^ gold_sequence(c_init, bits.size)


def descramble_llrs(llrs: np.ndarray, c_init: int) -> np.ndarray:
    """Undo scrambling on soft values: flip LLR signs where c(n) = 1."""
    llrs = np.asarray(llrs, dtype=np.float64).reshape(-1)
    sequence = gold_sequence(c_init, llrs.size)
    return llrs * (1.0 - 2.0 * sequence)
