"""Link adaptation: choosing modulation (and layers) from channel quality.

Section II-B: "Various coding and modulation schemes can be used,
depending on the signal quality between the transmitter and receiver.
When noise and interference are low, a higher-order modulation scheme can
be employed". The benchmark's parameter model draws modulations randomly;
this helper provides the deterministic counterpart a scheduler would use,
so scenario builders can derive realistic per-user parameters from SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import MAX_LAYERS, Modulation

__all__ = ["McsThresholds", "select_modulation", "select_layers", "spectral_efficiency"]


@dataclass(frozen=True)
class McsThresholds:
    """SNR switching points (dB) between modulation schemes.

    Defaults approximate where each scheme's uncoded BER crosses ~1e-3 on
    an AWGN channel with a small implementation margin.
    """

    qam16_snr_db: float = 14.0
    qam64_snr_db: float = 22.0

    def __post_init__(self) -> None:
        if self.qam64_snr_db <= self.qam16_snr_db:
            raise ValueError("64-QAM threshold must exceed the 16-QAM threshold")


def select_modulation(
    snr_db: float, thresholds: McsThresholds | None = None
) -> Modulation:
    """Highest-order modulation supportable at the given SNR."""
    thresholds = thresholds or McsThresholds()
    if snr_db >= thresholds.qam64_snr_db:
        return Modulation.QAM64
    if snr_db >= thresholds.qam16_snr_db:
        return Modulation.QAM16
    return Modulation.QPSK


def select_layers(
    snr_db: float,
    num_rx_antennas: int = 4,
    per_layer_penalty_db: float = 6.0,
    min_snr_db: float = 8.0,
) -> int:
    """Spatial layers supportable at the given SNR.

    Each added layer splits power and adds inter-layer interference,
    modelled as a fixed per-layer SNR penalty: layer count L is feasible
    when ``snr - (L-1)·penalty ≥ min_snr`` and L does not exceed the
    receive antennas (you cannot separate more layers than antennas).
    """
    if num_rx_antennas < 1:
        raise ValueError("num_rx_antennas must be >= 1")
    if per_layer_penalty_db <= 0:
        raise ValueError("per_layer_penalty_db must be positive")
    layers = 1
    while (
        layers < min(MAX_LAYERS, num_rx_antennas)
        and snr_db - layers * per_layer_penalty_db >= min_snr_db
    ):
        layers += 1
    return layers


def spectral_efficiency(modulation: Modulation, layers: int) -> float:
    """Bits per subcarrier per data symbol (pass-through coding)."""
    if not 1 <= layers <= MAX_LAYERS:
        raise ValueError(f"layers must be in [1, {MAX_LAYERS}]")
    return modulation.bits_per_symbol * layers
