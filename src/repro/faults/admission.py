"""Overload admission control: shed work the machine provably cannot finish.

The paper's real-time contract is one subframe's work per DELTA (1 ms).
The Eq. 3-4 estimator already predicts a subframe's activity share before
any of it executes — the same prediction the NAP governor uses to *shrink*
the machine (Eq. 5) can tell an overloaded dispatcher the opposite: the
offered load exceeds what even the full machine can retire within the
deadline budget. Rather than silently falling behind (unbounded queue
growth, every later subframe missing its deadline), the
:class:`AdmissionController` sheds whole users — last-scheduled first,
never partial users — until the estimate fits, and reports exactly what it
dropped so the ledger can account the subframe as ``shed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..uplink.user import UserParameters

if TYPE_CHECKING:  # import cycle: power.estimator -> sim -> faults -> here
    from ..power.estimator import WorkloadEstimator

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller admitted and shed for one subframe."""

    admitted: tuple[UserParameters, ...]
    shed: tuple[UserParameters, ...]
    estimated_activity: float
    budget_activity: float

    @property
    def shed_any(self) -> bool:
        return bool(self.shed)

    @property
    def shed_user_ids(self) -> tuple[int, ...]:
        return tuple(u.user_id for u in self.shed)


class AdmissionController:
    """Sheds users when Eq. 4's estimate exceeds the DELTA budget.

    Parameters
    ----------
    estimator:
        Calibrated Eq. 3-4 estimator (activity is the fraction of the
        whole machine's worker-cycles one DELTA provides, Eq. 1-2).
    max_activity:
        Admission budget as an activity fraction. 1.0 would admit up to
        the machine's theoretical capacity; the default leaves the same
        kind of headroom Eq. 5 does with its +2 over-provisioned cores.
    load_factor:
        Work amplification applied to the estimate (the OVERLOAD fault
        kind raises it to force shedding in chaos campaigns).
    """

    def __init__(
        self,
        estimator: WorkloadEstimator,
        max_activity: float = 0.9,
        load_factor: float = 1.0,
    ) -> None:
        if max_activity <= 0:
            raise ValueError("max_activity must be positive")
        if load_factor <= 0:
            raise ValueError("load_factor must be positive")
        self.estimator = estimator
        self.max_activity = max_activity
        self.load_factor = load_factor
        self.total_shed_users = 0
        self.total_shed_subframes = 0

    def admit(
        self, users: list[UserParameters], load_factor: float | None = None
    ) -> AdmissionDecision:
        """Split one subframe's users into (admitted, shed).

        Users are shed from the tail of the scheduling order (the users
        the eNodeB scheduler admitted last), so the decision is
        deterministic and independent of dict/set ordering.

        A per-call ``load_factor`` override gets the same positivity
        validation as the constructor: a zero/negative factor would zero
        (or invert) the estimate and silently admit everything.
        """
        if load_factor is not None and load_factor <= 0:
            raise ValueError("load_factor must be positive")
        factor = self.load_factor if load_factor is None else load_factor
        admitted = list(users)
        shed: list[UserParameters] = []
        estimate = self.estimator.estimate_subframe(admitted) * factor
        while admitted and estimate > self.max_activity:
            shed.append(admitted.pop())
            estimate = self.estimator.estimate_subframe(admitted) * factor
        shed.reverse()
        if shed:
            self.total_shed_users += len(shed)
            self.total_shed_subframes += 1
        return AdmissionDecision(
            admitted=tuple(admitted),
            shed=tuple(shed),
            estimated_activity=estimate,
            budget_activity=self.max_activity,
        )
