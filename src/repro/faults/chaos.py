"""Seeded chaos campaigns: run the fault matrix, print a survival report.

A campaign is a *static* scenario matrix — backends x fault-kind groups x
seeds — built entirely from the campaign seed list, so two invocations
with the same arguments run byte-identical fault plans. Every scenario is
run twice (run + replay) and must satisfy four survival checks:

1. **terminates** — the backend returns instead of wedging (threaded
   scenarios carry a drain timeout so a hang is a loud failure);
2. **accounts** — its :class:`~repro.faults.accounting.SubframeLedger`
   balances: ``dispatched == ok + crc_failed + shed + aborted`` with no
   unresolved subframes;
3. **invariants** — the attached
   :class:`~repro.obs.invariants.SchedulerInvariantChecker` reports no
   violations;
4. **replays** — the second run with the same seed produces the identical
   terminal-state fingerprint.

This module imports the threaded runtime and the uplink pipeline, so it is
*not* re-exported from the package root — import it explicitly
(``from repro.faults import chaos``) or go through ``repro chaos``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from .accounting import SubframeLedger
from .admission import AdmissionController
from .plan import FaultKind, FaultPlan
from .watchdog import ResilienceConfig

__all__ = [
    "ChaosScenario",
    "ScenarioOutcome",
    "SurvivalReport",
    "build_matrix",
    "ledger_fingerprint",
    "run_campaign",
    "run_scenario",
]

#: Fault-kind groups exercised per (backend, seed) cell of the matrix.
SIM_GROUPS: tuple[tuple[str, tuple[FaultKind, ...]], ...] = (
    ("crash", (FaultKind.CORE_CRASH,)),
    ("stall", (FaultKind.CORE_STALL,)),
    ("slowdown", (FaultKind.CORE_SLOWDOWN,)),
    ("overload", (FaultKind.OVERLOAD,)),
    ("mixed", (FaultKind.CORE_CRASH, FaultKind.CORE_STALL,
               FaultKind.CORE_SLOWDOWN, FaultKind.OVERLOAD)),
    ("deadline", (FaultKind.CORE_STALL,)),
)

THREADED_GROUPS: tuple[tuple[str, tuple[FaultKind, ...]], ...] = (
    ("death", (FaultKind.WORKER_DEATH,)),
    ("hang", (FaultKind.WORKER_HANG,)),
    ("task-exc", (FaultKind.TASK_EXCEPTION,)),
    ("payload", (FaultKind.PAYLOAD_BITFLIP, FaultKind.PAYLOAD_NAN)),
    ("mixed", (FaultKind.WORKER_DEATH, FaultKind.TASK_EXCEPTION,
               FaultKind.PAYLOAD_BITFLIP)),
)

#: Multiprocess scenarios: same fault families as the threaded runtime,
#: but ``WORKER_DEATH`` is a real ``SIGKILL``-ed pool process. Not part
#: of the default campaign (spawn cost); opt in with
#: ``repro chaos --backend multiprocess`` (the CI multiprocess-smoke job
#: does).
MULTIPROCESS_GROUPS: tuple[tuple[str, tuple[FaultKind, ...]], ...] = (
    ("death", (FaultKind.WORKER_DEATH,)),
    ("hang", (FaultKind.WORKER_HANG,)),
    ("task-exc", (FaultKind.TASK_EXCEPTION,)),
    ("payload", (FaultKind.PAYLOAD_BITFLIP, FaultKind.PAYLOAD_NAN)),
    ("mixed", (FaultKind.WORKER_DEATH, FaultKind.TASK_EXCEPTION,
               FaultKind.PAYLOAD_BITFLIP)),
)

#: Supervised-respawn scenarios (``--backend multiprocess-respawn``): the
#: pool runs with a :class:`~repro.serve.supervisor.WorkerSupervisor`
#: attached, so repeated worker kills must end ledger-OK with zero lost
#: subframes *and* at least one respawn — plus the usual replay check.
#: Fingerprints of the fail-stop ``multiprocess`` scenarios above are
#: untouched because respawn stays opt-in.
RESPAWN_GROUPS: tuple[tuple[str, tuple[FaultKind, ...]], ...] = (
    ("respawn-death", (FaultKind.WORKER_DEATH,)),
    ("crash-loop", (FaultKind.CRASH_LOOP,)),
    ("respawn-storm", (FaultKind.RESPAWN_STORM,)),
)

#: Campaign sizes. ``smoke`` is the CI gate; ``default`` the local run.
_SCALES = {
    "smoke": {"num_subframes": 6, "num_workers": 4, "max_users": 3,
              "faults_per_kind": 1},
    "default": {"num_subframes": 16, "num_workers": 8, "max_users": 4,
                "faults_per_kind": 2},
}

#: Injected hangs are clamped to this in campaigns: long enough to stress
#: the runtime, short enough that a full matrix stays in CI budget.
_CAMPAIGN_HANG_S = 0.2


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the campaign matrix, with its plan fully materialized."""

    name: str
    backend: str  # "sim" | "threaded" | "multiprocess"
    seed: int
    plan: FaultPlan
    num_subframes: int
    num_workers: int
    max_users: int
    resilience: ResilienceConfig
    max_activity: float = 0.9  # admission budget (sim backend)
    respawn: bool = False  # run the pool under a WorkerSupervisor

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "backend": self.backend,
            "seed": self.seed,
            "plan": self.plan.to_dict(),
            "num_subframes": self.num_subframes,
            "num_workers": self.num_workers,
            "respawn": self.respawn,
        }


@dataclass
class ScenarioOutcome:
    """Survival verdict for one scenario (run + replay)."""

    scenario: ChaosScenario
    survived: bool
    checks: dict = field(default_factory=dict)  # check name -> bool
    counts: dict = field(default_factory=dict)  # terminal-state counts
    dispatched: int = 0
    wall_s: float = 0.0
    error: str = ""
    # SLO telemetry of the first run (timing-dependent, so deliberately
    # NOT part of the replay fingerprint).
    slo_report: dict | None = None
    # WorkerSupervisor.summary() of the first run (respawn scenarios).
    supervisor: dict | None = None

    @property
    def label(self) -> str:
        return f"{self.scenario.backend}/{self.scenario.name}@s{self.scenario.seed}"


@dataclass
class SurvivalReport:
    """Campaign result: all outcomes plus the aggregate verdict."""

    outcomes: list[ScenarioOutcome]

    @property
    def passed(self) -> bool:
        return bool(self.outcomes) and all(o.survived for o in self.outcomes)

    @property
    def survived_count(self) -> int:
        return sum(1 for o in self.outcomes if o.survived)

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "scenarios": len(self.outcomes),
            "survived": self.survived_count,
            "outcomes": [
                {
                    "scenario": o.label,
                    "survived": o.survived,
                    "checks": o.checks,
                    "dispatched": o.dispatched,
                    "counts": o.counts,
                    "wall_s": round(o.wall_s, 3),
                    "error": o.error,
                    "slo_report": o.slo_report,
                    "supervisor": o.supervisor,
                }
                for o in self.outcomes
            ],
        }

    def format(self) -> str:
        lines = ["chaos survival report", "=" * 74]
        header = (f"{'scenario':<28} {'verdict':<8} {'disp':>4} "
                  f"{'ok':>3} {'crc':>4} {'shed':>4} {'abrt':>4} {'wall':>7}")
        lines.append(header)
        lines.append("-" * 74)
        for o in self.outcomes:
            c = o.counts
            verdict = "SURVIVED" if o.survived else "FAILED"
            lines.append(
                f"{o.label:<28} {verdict:<8} {o.dispatched:>4} "
                f"{c.get('ok', 0):>3} {c.get('crc_failed', 0):>4} "
                f"{c.get('shed', 0):>4} {c.get('aborted', 0):>4} "
                f"{o.wall_s:>6.2f}s"
            )
            if not o.survived:
                failed = [k for k, v in o.checks.items() if not v]
                detail = o.error or ", ".join(failed)
                lines.append(f"    !! {detail}")
        lines.append("-" * 74)
        lines.append(
            f"{self.survived_count}/{len(self.outcomes)} scenarios survived; "
            f"every dispatched subframe reached exactly one terminal state "
            f"(ok | crc_failed | shed | aborted)"
            if self.passed
            else f"{self.survived_count}/{len(self.outcomes)} scenarios "
            f"survived — campaign FAILED"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------- matrix
def _scenario_plan(
    group: str,
    kinds: tuple[FaultKind, ...],
    seed: int,
    num_subframes: int,
    num_workers: int,
    faults_per_kind: int,
) -> FaultPlan:
    if group == "deadline":
        # Wedge every worker hard at one subframe so only the cycle
        # deadline can resolve it: the abort path must fire.
        from .plan import FaultSpec

        return FaultPlan(
            specs=tuple(
                FaultSpec(kind=FaultKind.CORE_STALL, subframe=1, target=w,
                          param=200_000_000.0, seed=seed)
                for w in range(num_workers)
            ),
            seed=seed,
        )
    plan = FaultPlan.generate(
        seed=seed,
        num_subframes=num_subframes,
        num_workers=num_workers,
        kinds=kinds,
        faults_per_kind=faults_per_kind,
    )
    # Campaign-friendly hang durations (plans are immutable; rebuild).
    specs = tuple(
        replace(s, param=_CAMPAIGN_HANG_S)
        if s.kind is FaultKind.WORKER_HANG
        else s
        for s in plan.specs
    )
    return FaultPlan(specs=specs, seed=plan.seed)


def build_matrix(
    scale: str = "default",
    seeds: int = 3,
    backends: tuple[str, ...] = ("sim", "threaded"),
) -> list[ChaosScenario]:
    """Materialize the campaign matrix for ``seeds`` consecutive seeds.

    ``backends`` selects from ``sim``/``threaded``/``multiprocess``; the
    default leaves multiprocess out (process-pool spawns dominate its
    wall clock), so the dedicated smoke job opts in explicitly.
    """
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r} (choose from {sorted(_SCALES)})")
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    unknown = set(backends) - {
        "sim", "threaded", "multiprocess", "multiprocess-respawn"
    }
    if unknown:
        raise ValueError(f"unknown chaos backend(s): {sorted(unknown)}")
    params = _SCALES[scale]
    scenarios: list[ChaosScenario] = []
    for seed in range(seeds):
        if "sim" in backends:
            for group, kinds in SIM_GROUPS:
                resilience = ResilienceConfig(
                    max_retries=1,
                    deadline_subframes=3.0 if group == "deadline" else None,
                )
                scenarios.append(
                    ChaosScenario(
                        name=group,
                        backend="sim",
                        seed=seed,
                        plan=_scenario_plan(
                            group, kinds, seed,
                            params["num_subframes"], params["num_workers"],
                            params["faults_per_kind"],
                        ),
                        num_subframes=params["num_subframes"],
                        num_workers=params["num_workers"],
                        max_users=params["max_users"],
                        resilience=resilience,
                    )
                )
        if "threaded" in backends:
            for group, kinds in THREADED_GROUPS:
                scenarios.append(
                    ChaosScenario(
                        name=group,
                        backend="threaded",
                        seed=seed,
                        plan=_scenario_plan(
                            group, kinds, seed,
                            params["num_subframes"], params["num_workers"],
                            params["faults_per_kind"],
                        ),
                        num_subframes=params["num_subframes"],
                        num_workers=params["num_workers"],
                        max_users=params["max_users"],
                        resilience=ResilienceConfig(
                            max_retries=2, drain_timeout_s=120.0
                        ),
                    )
                )
        if "multiprocess" in backends:
            # Pool pinned small (spawn cost) but always one worker larger
            # than the death budget: a survivor must exist, so the
            # terminal-state outcome stays timing-independent and the
            # replay fingerprint check is meaningful.
            mp_workers = max(2, params["faults_per_kind"] + 1)
            for group, kinds in MULTIPROCESS_GROUPS:
                scenarios.append(
                    ChaosScenario(
                        name=group,
                        backend="multiprocess",
                        seed=seed,
                        plan=_scenario_plan(
                            group, kinds, seed,
                            params["num_subframes"], mp_workers,
                            params["faults_per_kind"],
                        ),
                        num_subframes=params["num_subframes"],
                        num_workers=mp_workers,
                        max_users=params["max_users"],
                        resilience=ResilienceConfig(
                            max_retries=2, drain_timeout_s=120.0
                        ),
                    )
                )
        if "multiprocess-respawn" in backends:
            # Same sizing logic as the fail-stop pool. max_retries=3:
            # the default crash loop kills one slot's task twice in a
            # row, and both reclaims must stay inside the retry budget
            # so the subframe's terminal state is timing-independent.
            mp_workers = max(2, params["faults_per_kind"] + 1)
            for group, kinds in RESPAWN_GROUPS:
                scenarios.append(
                    ChaosScenario(
                        name=group,
                        backend="multiprocess-respawn",
                        seed=seed,
                        plan=_scenario_plan(
                            group, kinds, seed,
                            params["num_subframes"], mp_workers,
                            params["faults_per_kind"],
                        ),
                        num_subframes=params["num_subframes"],
                        num_workers=mp_workers,
                        max_users=params["max_users"],
                        resilience=ResilienceConfig(
                            max_retries=3, drain_timeout_s=120.0
                        ),
                        respawn=True,
                    )
                )
    return scenarios


def ledger_fingerprint(ledger: SubframeLedger) -> dict:
    """Replay fingerprint of a ledger: terminal-state counts + state map.

    Folding the per-terminal-state *counts* (ok/crc_failed/shed/aborted)
    and the per-subframe state assignment into every backend's replay
    fingerprint closes a blind spot: a run that sheds or aborts
    *different* subframes while producing the same survivor result set
    used to fingerprint as identical.
    """
    summary = ledger.summary()
    return {
        "counts": summary["counts"],
        "states": {
            int(index): entry["state"]
            for index, entry in summary["resolved"].items()
        },
    }


# ------------------------------------------------------------- execution
def _run_sim(scenario: ChaosScenario) -> tuple:
    """One simulator run; returns (fingerprint, ledger, checker, slo)."""
    from ..obs.invariants import SchedulerInvariantChecker
    from ..obs.slo import SLOEngine
    from ..power.estimator import calibrate_from_cost_model
    from ..sim.cost import CostModel, MachineSpec
    from ..sim.machine import MachineSimulator, SimConfig
    from ..uplink.parameter_model import RandomizedParameterModel

    cost = CostModel(
        machine=MachineSpec(
            num_cores=scenario.num_workers + 2,
            num_workers=scenario.num_workers,
        )
    )
    checker = SchedulerInvariantChecker(strict=False)
    engine = SLOEngine()
    ledger = SubframeLedger()
    sim = MachineSimulator(
        cost,
        config=SimConfig(drain_margin_s=0.2),
        observers=[checker, engine],
        faults=scenario.plan,
        resilience=scenario.resilience,
        admission=AdmissionController(
            calibrate_from_cost_model(cost), max_activity=scenario.max_activity
        ),
        ledger=ledger,
    )
    model = RandomizedParameterModel(
        total_subframes=scenario.num_subframes,
        seed=scenario.seed,
        max_users=scenario.max_users,
    )
    result = sim.run(model, num_subframes=scenario.num_subframes)
    fingerprint = {
        "terminal_states": dict(sorted(result.terminal_states.items())),
        "tasks": result.tasks_executed,
        "users": result.users_processed,
        "shed": result.shed_users,
        "aborted": result.aborted_users,
        "retried": result.retried_users,
        "ledger": ledger_fingerprint(ledger),
    }
    return fingerprint, ledger, checker, engine.slo_report()


def _run_threaded(scenario: ChaosScenario) -> tuple:
    """One threaded-runtime run; returns (fingerprint, ledger, checker, slo)."""
    from ..obs.invariants import SchedulerInvariantChecker
    from ..obs.slo import SLOEngine
    from ..sched.threaded import ThreadedRuntime
    from ..uplink.parameter_model import RandomizedParameterModel
    from ..uplink.subframe import SubframeFactory
    from .injector import corrupt_subframes

    model = RandomizedParameterModel(
        total_subframes=scenario.num_subframes,
        seed=scenario.seed,
        max_users=scenario.max_users,
    )
    factory = SubframeFactory(seed=scenario.seed)
    subframes = [
        factory.synthesize(model.uplink_parameters(i), i)
        for i in range(scenario.num_subframes)
    ]
    subframes = corrupt_subframes(subframes, scenario.plan)
    checker = SchedulerInvariantChecker(strict=False)
    engine = SLOEngine()
    runtime = ThreadedRuntime(
        num_workers=scenario.num_workers,
        observers=[checker, engine],
        faults=scenario.plan,
        resilience=scenario.resilience,
    )
    results = runtime.run(subframes)
    fingerprint = {
        "counts": runtime.ledger.counts(),
        "ledger": ledger_fingerprint(runtime.ledger),
        "per_subframe": {
            r.subframe_index: sorted(
                (u.user_id, bool(u.crc_ok)) for u in r.user_results
            )
            for r in results
        },
        "aborted": {
            r.subframe_index: sorted(r.aborted_user_ids)
            for r in results
            if r.aborted_user_ids
        },
    }
    return fingerprint, runtime.ledger, checker, engine.slo_report()


def _run_multiprocess(scenario: ChaosScenario) -> tuple:
    """One multiprocess-runtime run; returns (fingerprint, ledger, checker, slo).

    Same scenario shape as the threaded runner, but WORKER_DEATH faults
    SIGKILL real pool processes: the runner proves the orphan-subframe
    reclamation and bounded-retry path against genuine process loss.
    The attached SLO engine also opts the workers into local telemetry
    sketching; the report carries an ``mp_merge_check`` comparing the
    parent-merged payload-bits sketch against a serial reference built
    from the delivered results (they must agree exactly — bucket-level
    merge, retries counted once, killed workers never reply).
    """
    from ..obs.invariants import SchedulerInvariantChecker
    from ..obs.slo import SLOEngine
    from ..obs.telemetry import QuantileSketch
    from ..sched.multiprocess import MultiprocessRuntime
    from ..uplink.parameter_model import RandomizedParameterModel
    from ..uplink.subframe import SubframeFactory
    from .injector import corrupt_subframes

    model = RandomizedParameterModel(
        total_subframes=scenario.num_subframes,
        seed=scenario.seed,
        max_users=scenario.max_users,
    )
    factory = SubframeFactory(seed=scenario.seed)
    subframes = [
        factory.synthesize(model.uplink_parameters(i), i)
        for i in range(scenario.num_subframes)
    ]
    subframes = corrupt_subframes(subframes, scenario.plan)
    checker = SchedulerInvariantChecker(strict=False)
    engine = SLOEngine()
    respawn = None
    if scenario.respawn:
        from ..serve.supervisor import RespawnPolicy

        # Generous budget and short backoffs: campaigns assert the
        # respawn *path*, not budget exhaustion (the supervision test
        # suite covers crash-loop fail-stop directly), and long backoffs
        # would dominate the matrix wall clock.
        respawn = RespawnPolicy(
            max_respawns=64,
            window_s=60.0,
            backoff_initial_s=0.02,
            backoff_max_s=0.25,
        )
    runtime = MultiprocessRuntime(
        num_workers=scenario.num_workers,
        observers=[checker, engine],
        faults=scenario.plan,
        resilience=scenario.resilience,
        respawn=respawn,
    )
    if scenario.respawn:
        # Explicit lifecycle so pending respawns can be awaited before
        # close: a kill near the end of the run schedules a respawn whose
        # backoff may outlive the last subframe, and run() would close
        # the pool from under it.
        runtime.start()
        try:
            for subframe in subframes:
                runtime.submit(subframe)
            runtime.drain()
            runtime.await_respawns()
        except BaseException:
            runtime.abort()
            raise
        results = runtime.collect_results()
        runtime.close()
    else:
        results = runtime.run(subframes)
    fingerprint = {
        "counts": runtime.ledger.counts(),
        "ledger": ledger_fingerprint(runtime.ledger),
        "per_subframe": {
            r.subframe_index: sorted(
                (u.user_id, bool(u.crc_ok)) for u in r.user_results
            )
            for r in results
        },
        "aborted": {
            r.subframe_index: sorted(r.aborted_user_ids)
            for r in results
            if r.aborted_user_ids
        },
    }
    if scenario.respawn and runtime.supervisor is not None:
        # Deliberately popped out of the fingerprint before the replay
        # comparison (run_scenario): respawn *counts* are timing-shaped
        # for crash loops (kills fire per dispatch to the slot, and the
        # dispatch count depends on interleaving) even though terminal
        # states are not.
        fingerprint["supervisor"] = runtime.supervisor.summary()
    slo = engine.slo_report()
    reference = QuantileSketch(
        relative_accuracy=engine.relative_accuracy
    )
    for result in results:
        for user in result.user_results:
            reference.observe(float(user.payload.size))
    merged = engine.telemetry.sketches.get("mp_user_payload_bits")
    quantiles = (0.0, 0.5, 0.9, 0.99, 1.0)
    slo["mp_merge_check"] = {
        "merged_count": merged.count if merged else 0,
        "reference_count": reference.count,
        "merged_quantiles": (
            {str(q): merged.quantile(q) for q in quantiles}
            if merged
            else {}
        ),
        "reference_quantiles": {
            str(q): reference.quantile(q) for q in quantiles
        },
        "exact": bool(
            merged is not None
            and merged.count == reference.count
            and all(
                merged.quantile(q) == reference.quantile(q)
                for q in quantiles
            )
        ),
    }
    return fingerprint, runtime.ledger, checker, slo


_RUNNERS = {
    "sim": _run_sim,
    "threaded": _run_threaded,
    "multiprocess": _run_multiprocess,
    "multiprocess-respawn": _run_multiprocess,
}


def run_scenario(scenario: ChaosScenario) -> ScenarioOutcome:
    """Run one scenario twice (run + replay) and score the survival checks."""
    runner = _RUNNERS[scenario.backend]
    outcome = ScenarioOutcome(scenario=scenario, survived=False)
    start = time.perf_counter()
    try:
        fingerprint, ledger, checker, slo_report = runner(scenario)
        replay_fp, replay_ledger, _, _ = runner(scenario)
    except Exception as exc:  # scenario crash/hang is a FAILED verdict
        outcome.wall_s = time.perf_counter() - start
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.checks = {"terminates": False}
        return outcome
    outcome.wall_s = time.perf_counter() - start
    outcome.slo_report = slo_report
    outcome.counts = ledger.counts()
    outcome.dispatched = ledger.dispatched
    # Supervisor counters are timing-shaped (see _run_multiprocess), so
    # they ride outside the replay fingerprint.
    supervisor = fingerprint.pop("supervisor", None)
    replay_supervisor = replay_fp.pop("supervisor", None)
    outcome.supervisor = supervisor
    accounts = (
        ledger.ok
        and ledger.dispatched == sum(ledger.counts().values())
        and not ledger.unresolved()
    )
    outcome.checks = {
        "terminates": True,
        "accounts": bool(accounts),
        "invariants": bool(checker.ok),
        "replays": fingerprint == replay_fp
        and ledger.counts() == replay_ledger.counts(),
    }
    if scenario.respawn:
        # Self-healing scenarios must actually heal: at least one respawn
        # in both the run and the replay, with the budget never tripped.
        outcome.checks["respawned"] = bool(
            supervisor
            and supervisor["respawns"] > 0
            and not supervisor["fail_stop"]
            and replay_supervisor
            and replay_supervisor["respawns"] > 0
            and not replay_supervisor["fail_stop"]
        )
    if not checker.ok:
        outcome.error = checker.summary()
    outcome.survived = all(outcome.checks.values())
    return outcome


def run_campaign(
    scale: str = "default",
    seeds: int = 3,
    backends: tuple[str, ...] = ("sim", "threaded"),
    progress=None,
) -> SurvivalReport:
    """Run the full matrix; ``progress`` (if given) is called per scenario."""
    outcomes = []
    for scenario in build_matrix(scale=scale, seeds=seeds, backends=backends):
        outcome = run_scenario(scenario)
        outcomes.append(outcome)
        if progress is not None:
            verdict = "SURVIVED" if outcome.survived else "FAILED"
            progress(f"  {outcome.label:<28} {verdict} ({outcome.wall_s:.2f}s)")
    return SurvivalReport(outcomes=outcomes)
