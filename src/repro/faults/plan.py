"""Seeded, serializable fault plans (the injection half of ``repro.faults``).

A :class:`FaultPlan` is a *static* list of :class:`FaultSpec` records built
up-front from a seed — never sampled at run time — so the same seed always
produces the same plan, and a plan written to JSON replays the identical
fault sequence on any machine (the Vienna LTE-A simulator's reproducible
impairment-injection idiom). The adapters in :mod:`repro.faults.injector`
and the backend hooks (``MachineSimulator(faults=...)``,
``ThreadedRuntime(faults=...)``) consume plans; this module only describes
faults.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass
from pathlib import Path

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "SIM_KINDS", "THREAD_KINDS",
           "PAYLOAD_KINDS", "RESPAWN_KINDS"]


class FaultKind(str, enum.Enum):
    """What to break. Values double as the JSON ``kind`` field."""

    #: A simulated core dies permanently (its in-flight task is lost).
    CORE_CRASH = "core-crash"
    #: A simulated core freezes for ``param`` cycles (does no work).
    CORE_STALL = "core-stall"
    #: A simulated core runs ``param``× slower for one subframe period.
    CORE_SLOWDOWN = "core-slowdown"
    #: A worker thread exits mid-run (the silent-death path, made loud).
    WORKER_DEATH = "worker-death"
    #: A worker thread wedges for ``param`` seconds while holding a user.
    WORKER_HANG = "worker-hang"
    #: One user's task raises an exception (retryable).
    TASK_EXCEPTION = "task-exception"
    #: Bit flips in the received grid pre-CRC (decodes to a CRC failure).
    PAYLOAD_BITFLIP = "payload-bitflip"
    #: NaN/garbage soft bits injected into the received grid.
    PAYLOAD_NAN = "payload-nan"
    #: Work amplification: the subframe's load is multiplied so the
    #: admission controller must shed (exercises Eq. 1-4 based shedding).
    OVERLOAD = "overload"
    #: The target worker slot dies on its next ``param`` consecutive
    #: dispatches — each respawned replacement is killed again, which is
    #: what exercises supervised-respawn backoff (and, with ``param``
    #: past the restart budget, crash-loop detection).
    CRASH_LOOP = "crash-loop"
    #: Every worker slot (up to ``param`` distinct slots) dies once on
    #: its next dispatch — a correlated die-off that forces the
    #: supervisor to respawn the whole pool under one budget window.
    RESPAWN_STORM = "respawn-storm"


#: Kinds the discrete-event simulator backend can inject.
SIM_KINDS = frozenset(
    {
        FaultKind.CORE_CRASH,
        FaultKind.CORE_STALL,
        FaultKind.CORE_SLOWDOWN,
        FaultKind.OVERLOAD,
    }
)

#: Kinds the threaded runtime can inject.
THREAD_KINDS = frozenset(
    {
        FaultKind.WORKER_DEATH,
        FaultKind.WORKER_HANG,
        FaultKind.TASK_EXCEPTION,
    }
)

#: Kinds that corrupt subframe input data (any functional backend).
PAYLOAD_KINDS = frozenset({FaultKind.PAYLOAD_BITFLIP, FaultKind.PAYLOAD_NAN})

#: Kinds that only make sense against a supervised (respawning) pool —
#: they repeatedly kill worker slots, so a fail-stop runtime would just
#: abort on the first death.
RESPAWN_KINDS = frozenset({FaultKind.CRASH_LOOP, FaultKind.RESPAWN_STORM})


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``subframe`` is the dispatch index at which the fault arms;
    ``target`` is a core/worker index for machine faults or a user id for
    task/payload faults (-1 = first eligible); ``param`` is the
    kind-specific magnitude (stall cycles, slowdown factor, hang seconds,
    flipped-bit count, overload multiplier); ``seed`` feeds any per-fault
    randomness (e.g. which grid samples a bit flip hits) so corruption is
    itself replayable.
    """

    kind: FaultKind
    subframe: int
    target: int = -1
    param: float = 0.0
    seed: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "subframe": self.subframe,
            "target": self.target,
            "param": self.param,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "FaultSpec":
        return cls(
            kind=FaultKind(record["kind"]),
            subframe=int(record["subframe"]),
            target=int(record.get("target", -1)),
            param=float(record.get("param", 0.0)),
            seed=int(record.get("seed", 0)),
        )


_PLAN_VERSION = 1

#: Default magnitude per kind used by :meth:`FaultPlan.generate`.
_DEFAULT_PARAMS: dict[FaultKind, float] = {
    FaultKind.CORE_CRASH: 0.0,
    FaultKind.CORE_STALL: 200_000.0,  # cycles
    FaultKind.CORE_SLOWDOWN: 4.0,  # factor
    FaultKind.WORKER_DEATH: 0.0,
    FaultKind.WORKER_HANG: 2.0,  # seconds
    FaultKind.TASK_EXCEPTION: 0.0,
    FaultKind.PAYLOAD_BITFLIP: 24.0,  # flipped samples
    FaultKind.PAYLOAD_NAN: 8.0,  # poisoned samples
    FaultKind.OVERLOAD: 8.0,  # work multiplier
    FaultKind.CRASH_LOOP: 2.0,  # consecutive kills of one slot
    FaultKind.RESPAWN_STORM: 2.0,  # distinct slots killed once each
}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable set of planned faults.

    Plans are immutable; equality is structural, so
    ``FaultPlan.generate(seed=s, ...) == FaultPlan.generate(seed=s, ...)``
    and a JSON round-trip reproduces an identical plan.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    # ------------------------------------------------------------- builders
    @classmethod
    def generate(
        cls,
        seed: int,
        num_subframes: int,
        num_workers: int,
        kinds: tuple[FaultKind, ...] | None = None,
        faults_per_kind: int = 1,
    ) -> "FaultPlan":
        """Sample a plan deterministically from ``seed``.

        For each requested kind, ``faults_per_kind`` faults are placed at
        rng-chosen subframes/targets. Sampling happens here, once; the
        resulting plan carries no RNG state of its own.
        """
        if num_subframes < 1 or num_workers < 1:
            raise ValueError("num_subframes and num_workers must be >= 1")
        rng = random.Random(seed)
        chosen = kinds if kinds is not None else tuple(FaultKind)
        specs: list[FaultSpec] = []
        for kind in chosen:
            for _ in range(faults_per_kind):
                specs.append(
                    FaultSpec(
                        kind=kind,
                        subframe=rng.randrange(num_subframes),
                        target=rng.randrange(num_workers),
                        param=_DEFAULT_PARAMS[kind],
                        seed=rng.randrange(2**31),
                    )
                )
        specs.sort(key=lambda s: (s.subframe, s.kind.value, s.target))
        return cls(specs=tuple(specs), seed=seed)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.specs)

    def for_subframe(self, subframe_index: int) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.subframe == subframe_index)

    def of_kinds(self, kinds: frozenset[FaultKind]) -> "FaultPlan":
        """Sub-plan containing only ``kinds`` (same seed recorded)."""
        return FaultPlan(
            specs=tuple(s for s in self.specs if s.kind in kinds),
            seed=self.seed,
        )

    @property
    def max_subframe(self) -> int:
        return max((s.subframe for s in self.specs), default=-1)

    # ---------------------------------------------------------- persistence
    def to_dict(self) -> dict:
        return {
            "version": _PLAN_VERSION,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "FaultPlan":
        if record.get("version") != _PLAN_VERSION:
            raise ValueError(
                f"unsupported fault-plan version {record.get('version')!r}"
            )
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in record["specs"]),
            seed=int(record.get("seed", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        from ..ioutil import atomic_write_text

        return atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
