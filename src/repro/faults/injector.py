"""Fault-plan adapters: payload corruption and threaded-runtime injection.

Two consumers of a :class:`~repro.faults.plan.FaultPlan` live here:

* :func:`corrupt_subframe` — applies the payload kinds (bit flips, NaN
  soft bits) to a :class:`~repro.uplink.subframe.SubframeInput`, returning
  a corrupted *copy*; the original grid is never mutated, so a corrupted
  run and its clean reference can share inputs.
* :class:`ThreadFaultInjector` — the threaded runtime's injection hook:
  the runtime asks it, at well-defined points, whether a planned fault
  fires for (worker, subframe, user). Each armed fault fires exactly once
  (consumption is tracked under a lock), which is what makes bounded
  retry deterministic: the retried attempt runs fault-free.

The simulator consumes plans directly (see ``MachineSimulator(faults=)``)
because its injection points live inside the event loop.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from ..uplink.subframe import SubframeInput
from .plan import PAYLOAD_KINDS, FaultKind, FaultPlan, FaultSpec

__all__ = [
    "InjectedFault",
    "InjectedTaskError",
    "InjectedWorkerDeath",
    "ThreadFaultInjector",
    "corrupt_subframe",
    "corrupt_subframes",
]


class InjectedFault(Exception):
    """Base class for all injected failures (never raised by real bugs)."""


class InjectedTaskError(InjectedFault):
    """A planned per-task exception (retryable)."""


class InjectedWorkerDeath(BaseException):
    """Kills a worker thread; derives from BaseException so ordinary
    ``except Exception`` recovery paths cannot accidentally swallow it —
    only the worker loop's dedicated handler catches it."""


# ------------------------------------------------------------- payload
def _corrupt_grid(grid: np.ndarray, spec: FaultSpec, user_slice) -> None:
    """Apply one payload fault to the (writable) grid in place."""
    rng = np.random.default_rng(spec.seed)
    view = user_slice.view(grid)  # basic-slicing view: writes reach the grid
    count = max(1, int(spec.param))
    positions = rng.choice(view.size, size=min(count, view.size), replace=False)
    # Index through unravel_index rather than reshape(-1): reshaping a
    # non-contiguous view silently copies, and the corruption would be lost.
    idx = np.unravel_index(positions, view.shape)
    if spec.kind is FaultKind.PAYLOAD_BITFLIP:
        # Sign-flip received samples: the frequency-domain equivalent of
        # hard bit corruption ahead of the CRC — decode proceeds, CRC fails.
        view[idx] = -view[idx]
    elif spec.kind is FaultKind.PAYLOAD_NAN:
        view[idx] = complex("nan")
    else:  # pragma: no cover - guarded by caller
        raise ValueError(f"{spec.kind} is not a payload fault")


def corrupt_subframe(subframe: SubframeInput, plan: FaultPlan) -> SubframeInput:
    """Return ``subframe`` with this index's payload faults applied.

    Non-payload kinds are ignored. When no fault targets this subframe the
    original object is returned unchanged (no copy).
    """
    specs = [
        s
        for s in plan.for_subframe(subframe.subframe_index)
        if s.kind in PAYLOAD_KINDS
    ]
    if not specs:
        return subframe
    grid = subframe.grid.copy()
    for spec in specs:
        eligible = [
            sl
            for sl in subframe.slices
            if spec.target < 0 or sl.user.user_id == spec.target
        ]
        target = eligible or subframe.slices[:1]
        if target:
            _corrupt_grid(grid, spec, target[0])
    return SubframeInput(
        subframe_index=subframe.subframe_index,
        grid=grid,
        slices=subframe.slices,
        expected_payloads=subframe.expected_payloads,
    )


def corrupt_subframes(
    subframes: list[SubframeInput], plan: FaultPlan
) -> list[SubframeInput]:
    """Apply :func:`corrupt_subframe` across a whole run's inputs."""
    return [corrupt_subframe(s, plan) for s in subframes]


# ------------------------------------------------------------- threaded
class ThreadFaultInjector:
    """Arms a plan's thread faults and answers the runtime's queries.

    The runtime polls from worker threads, so consumption state is
    lock-protected (``_GUARDED_BY`` is enforced by ``repro lint`` REP101).
    """

    _GUARDED_BY: ClassVar[dict[str, str]] = {
        "_armed": "lock",
        "_crash_loops": "lock",
        "_storms": "lock",
    }

    def __init__(self, plan: FaultPlan) -> None:
        # Deferred import: repro.obs -> repro.sim -> repro.faults cycle.
        from ..obs.lockdep import tracked_lock

        self.plan = plan
        self.lock = tracked_lock("ThreadFaultInjector.lock")
        self._armed: list[FaultSpec] = [
            s
            for s in plan.specs
            if s.kind
            in (
                FaultKind.WORKER_DEATH,
                FaultKind.WORKER_HANG,
                FaultKind.TASK_EXCEPTION,
            )
        ]
        # Multi-shot respawn kinds carry consumption state of their own:
        # a crash loop fires on param consecutive dispatches to its slot,
        # a respawn storm once per distinct slot (up to param slots).
        self._crash_loops: list[list] = [  # [spec, kills remaining]
            [s, max(1, int(s.param))]
            for s in plan.specs
            if s.kind is FaultKind.CRASH_LOOP
        ]
        self._storms: list[tuple[FaultSpec, set[int]]] = [
            (s, set())
            for s in plan.specs
            if s.kind is FaultKind.RESPAWN_STORM
        ]
        self.fired: list[FaultSpec] = []

    def _consume(
        self, kind: FaultKind, worker_id: int, subframe_index: int
    ) -> FaultSpec | None:
        """Pop the first armed fault matching (kind, worker, subframe).

        A spec arms at its planned subframe and stays armed until a
        matching dispatch reaches its target worker: thread interleaving
        may let the planned subframe slip past a busy worker, and a fault
        that never fires would silently weaken the campaign.
        """
        with self.lock:
            for spec in self._armed:
                if spec.kind is not kind:
                    continue
                if spec.target >= 0 and spec.target != worker_id:
                    continue
                if subframe_index < spec.subframe:
                    continue
                self._armed.remove(spec)
                self.fired.append(spec)
                return spec
        return None

    def _consume_respawn_kinds(
        self, worker_id: int, subframe_index: int
    ) -> bool:
        """Fire any armed crash-loop/respawn-storm kill for this dispatch."""
        with self.lock:
            for entry in self._crash_loops:
                spec, remaining = entry
                if spec.target >= 0 and spec.target != worker_id:
                    continue
                if subframe_index < spec.subframe:
                    continue
                entry[1] = remaining - 1
                if entry[1] <= 0:
                    self._crash_loops.remove(entry)
                self.fired.append(spec)
                return True
            for spec, hit in self._storms:
                if subframe_index < spec.subframe:
                    continue
                if worker_id in hit:
                    continue
                hit.add(worker_id)
                if len(hit) >= max(1, int(spec.param)):
                    self._storms.remove((spec, hit))
                self.fired.append(spec)
                return True
        return False

    # ---------------------------------------------------------- run queries
    def check_worker_death(self, worker_id: int, subframe_index: int) -> bool:
        """True when this worker must die while holding this subframe."""
        if (
            self._consume(FaultKind.WORKER_DEATH, worker_id, subframe_index)
            is not None
        ):
            return True
        return self._consume_respawn_kinds(worker_id, subframe_index)

    def check_worker_hang(
        self, worker_id: int, subframe_index: int
    ) -> float | None:
        """Seconds to wedge, or None."""
        spec = self._consume(FaultKind.WORKER_HANG, worker_id, subframe_index)
        return spec.param if spec is not None else None

    def check_task_exception(self, worker_id: int, subframe_index: int) -> bool:
        """True when this user's processing must raise (once)."""
        return (
            self._consume(FaultKind.TASK_EXCEPTION, worker_id, subframe_index)
            is not None
        )

    @property
    def pending(self) -> int:
        with self.lock:
            return len(self._armed) + len(self._crash_loops) + len(self._storms)
