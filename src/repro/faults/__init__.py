"""Deterministic fault injection and overload resilience (``repro.faults``).

The package has three layers:

* **Injection** — :mod:`repro.faults.plan` describes *what* goes wrong as a
  seeded, serializable :class:`~repro.faults.plan.FaultPlan`;
  :mod:`repro.faults.injector` carries the thread-side trigger logic and
  payload corruption helpers.
* **Resilience** — :mod:`repro.faults.watchdog` holds the retry/deadline/
  join-timeout knobs (:class:`~repro.faults.watchdog.ResilienceConfig`) and
  the :func:`~repro.faults.watchdog.hang_guard` for CLI entry points;
  :mod:`repro.faults.admission` sheds users under overload using the
  paper's Eq. 1-4 activity estimator.
* **Accounting** — :mod:`repro.faults.accounting` tracks every dispatched
  subframe to exactly one terminal state
  (``ok | crc_failed | shed | aborted``).

The chaos campaign driver lives in :mod:`repro.faults.chaos`; import it
explicitly (``from repro.faults import chaos``) — it pulls in the threaded
runtime and the uplink pipeline, which this package root must not.
"""

from __future__ import annotations

from .accounting import LedgerError, SubframeLedger, TerminalState
from .admission import AdmissionController, AdmissionDecision
from .injector import (
    InjectedFault,
    InjectedTaskError,
    InjectedWorkerDeath,
    ThreadFaultInjector,
    corrupt_subframe,
)
from .plan import (
    PAYLOAD_KINDS,
    SIM_KINDS,
    THREAD_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from .watchdog import ResilienceConfig, RuntimeHung, WorkerFailure, hang_guard

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedTaskError",
    "InjectedWorkerDeath",
    "LedgerError",
    "PAYLOAD_KINDS",
    "ResilienceConfig",
    "RuntimeHung",
    "SIM_KINDS",
    "SubframeLedger",
    "TerminalState",
    "THREAD_KINDS",
    "ThreadFaultInjector",
    "WorkerFailure",
    "corrupt_subframe",
]
