"""Terminal-state accounting: every dispatched subframe ends exactly once.

The resilience layer's core promise is that the system never *loses* a
subframe: whatever faults fire, each dispatched subframe reaches exactly
one of four terminal states —

* ``ok`` — every admitted user decoded and passed CRC;
* ``crc_failed`` — decoded, but at least one user's CRC failed (payload
  corruption's graceful-degradation path);
* ``shed`` — the admission controller dropped users/the subframe under
  overload (Eq. 1-4 estimate exceeded the DELTA budget);
* ``aborted`` — a fault or deadline timeout prevented completion.

:class:`SubframeLedger` enforces ``dispatched == ok + crc_failed + shed +
aborted``: the first resolution wins, late duplicate resolutions are
counted separately (a hung worker finishing after its subframe was
deadline-aborted), and :meth:`check` verifies the invariant at end of run.
The ledger is shared by the serial driver, the threaded runtime, and the
simulator, and is thread-safe.
"""

from __future__ import annotations

import enum
from typing import ClassVar

__all__ = ["TerminalState", "LedgerError", "SubframeLedger"]


class TerminalState(str, enum.Enum):
    """The four terminal states of a dispatched subframe."""

    OK = "ok"
    CRC_FAILED = "crc_failed"
    SHED = "shed"
    ABORTED = "aborted"


class LedgerError(AssertionError):
    """The terminal-state accounting invariant did not hold."""


class SubframeLedger:
    """Tracks each dispatched subframe to its single terminal state.

    Worker threads resolve subframes concurrently with the watchdog, so
    every access goes through ``lock`` (enforced statically by ``repro
    lint``'s REP101 rule via the ``_GUARDED_BY`` map).
    """

    _GUARDED_BY: ClassVar[dict[str, str]] = {
        "_dispatched": "lock",
        "_resolved": "lock",
        "_late": "lock",
    }

    def __init__(self) -> None:
        # Imported here, not at module level: repro.obs pulls in
        # repro.sim, which imports this module back (TerminalState).
        from ..obs.lockdep import tracked_lock

        self.lock = tracked_lock("SubframeLedger.lock")
        self._dispatched: dict[int, int] = {}  # subframe -> user count
        self._resolved: dict[int, tuple[TerminalState, str]] = {}
        self._late: list[tuple[int, TerminalState, str]] = []

    # ------------------------------------------------------------ recording
    def dispatch(self, subframe_index: int, users: int) -> None:
        """Register one dispatched subframe (before any outcome is known)."""
        with self.lock:
            if subframe_index in self._dispatched:
                raise LedgerError(
                    f"subframe {subframe_index} dispatched twice"
                )
            self._dispatched[subframe_index] = users

    def resolve(
        self, subframe_index: int, state: TerminalState, reason: str = ""
    ) -> bool:
        """Record a terminal state; returns False for late duplicates.

        The first resolution wins. A second resolution is *not* an error at
        call time — a worker that wakes from a hang legitimately tries to
        complete a subframe the watchdog already aborted — but it is
        recorded and surfaced via :attr:`late_resolutions`.
        """
        with self.lock:
            if subframe_index not in self._dispatched:
                raise LedgerError(
                    f"subframe {subframe_index} resolved ({state.value}) "
                    "without being dispatched"
                )
            if subframe_index in self._resolved:
                self._late.append((subframe_index, state, reason))
                return False
            self._resolved[subframe_index] = (state, reason)
            return True

    def is_resolved(self, subframe_index: int) -> bool:
        with self.lock:
            return subframe_index in self._resolved

    # -------------------------------------------------------------- queries
    @property
    def dispatched(self) -> int:
        with self.lock:
            return len(self._dispatched)

    @property
    def late_resolutions(self) -> list[tuple[int, TerminalState, str]]:
        with self.lock:
            return list(self._late)

    def state_of(self, subframe_index: int) -> TerminalState | None:
        with self.lock:
            entry = self._resolved.get(subframe_index)
        return entry[0] if entry is not None else None

    def counts(self) -> dict[str, int]:
        """Terminal-state histogram, always carrying all four keys."""
        with self.lock:
            resolved = list(self._resolved.values())
        out = {state.value: 0 for state in TerminalState}
        for state, _ in resolved:
            out[state.value] += 1
        return out

    def unresolved(self) -> list[int]:
        with self.lock:
            return sorted(set(self._dispatched) - set(self._resolved))

    def summary(self) -> dict:
        """Plain-data snapshot (JSON-serializable, deterministic order)."""
        with self.lock:
            dispatched = len(self._dispatched)
            resolved = {
                index: {"state": state.value, "reason": reason}
                for index, (state, reason) in sorted(self._resolved.items())
            }
            late = len(self._late)
        return {
            "dispatched": dispatched,
            "counts": self.counts(),
            "resolved": resolved,
            "late_resolutions": late,
        }

    # ----------------------------------------------------------- invariants
    def check(self) -> None:
        """Raise :class:`LedgerError` unless the accounting invariant holds:
        every dispatched subframe resolved exactly once and
        ``dispatched == ok + crc_failed + shed + aborted``."""
        missing = self.unresolved()
        if missing:
            raise LedgerError(
                f"{len(missing)} dispatched subframe(s) never reached a "
                f"terminal state: {missing[:10]}"
            )
        counts = self.counts()
        total = sum(counts.values())
        if total != self.dispatched:
            raise LedgerError(
                f"terminal accounting broken: dispatched {self.dispatched} "
                f"!= {' + '.join(f'{k}={v}' for k, v in counts.items())}"
            )

    @property
    def ok(self) -> bool:
        try:
            self.check()
        except LedgerError:
            return False
        return True
