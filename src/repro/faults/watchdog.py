"""Resilience configuration, hang guards, and failure records.

Home of the pieces both backends (and the CLI) share:

* :class:`ResilienceConfig` — retry budgets, per-subframe deadlines, and
  join/drain timeouts consumed by
  :class:`~repro.sched.threaded.ThreadedRuntime` (wall-clock deadlines,
  watchdog thread) and :class:`~repro.sim.machine.MachineSimulator`
  (cycle deadlines, deterministic aborts);
* the monotonic clock helpers (:func:`monotonic_ns`, :func:`ns_from_s`,
  :func:`s_from_ns`) — the *single* clock the runtimes' deadline and
  drain paths use, so a deadline computed in nanoseconds is never
  compared against a ``time.monotonic()`` float from a different code
  path, and second-to-nanosecond conversion never truncates;
* :func:`hang_guard` — a ``faulthandler``-based last line of defence: if
  the guarded block wedges past its timeout, every thread's traceback is
  dumped to stderr and (optionally) the process exits, so no CLI entry
  point can hang silently forever;
* :class:`WorkerFailure` / :exc:`RuntimeHung` — how the threaded runtime
  reports dead workers and expired drains *loudly* instead of blocking
  result collection.
"""

from __future__ import annotations

import faulthandler
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "NS_PER_S",
    "ResilienceConfig",
    "RuntimeHung",
    "WorkerFailure",
    "hang_guard",
    "monotonic_ns",
    "ns_from_s",
    "s_from_ns",
]

#: Nanoseconds per second, as an int so conversions stay exact.
NS_PER_S = 1_000_000_000


def monotonic_ns() -> int:
    """The runtimes' one deadline clock (``time.monotonic_ns``).

    On Linux ``CLOCK_MONOTONIC`` is system-wide, so timestamps taken with
    this helper are comparable *across processes* — the property the
    multiprocess runtime's cross-process span timeline relies on.
    """
    return time.monotonic_ns()


def ns_from_s(seconds: float) -> int:
    """Convert seconds to integer nanoseconds without truncation drift.

    ``int(2.3 * 1e9)`` floors the float artefact to ``2_299_999_999`` —
    one tick *early* at the deadline boundary; rounding keeps the
    converted deadline within half a nanosecond of the configured value.
    """
    return round(seconds * NS_PER_S)


def s_from_ns(ns: int) -> float:
    """Convert integer nanoseconds back to float seconds."""
    return ns / NS_PER_S


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the fault-tolerance layer.

    ``deadline_s`` (threaded, wall seconds) and ``deadline_subframes``
    (simulator, DELTA multiples) bound how long one dispatched subframe
    may stay unresolved before the watchdog aborts it; ``None`` disables
    the deadline. ``max_retries`` bounds per-user requeues after an
    injected or real fault. ``drain_timeout_s`` turns an indefinitely
    blocking drain into a loud :exc:`RuntimeHung`.
    """

    max_retries: int = 1
    deadline_s: float | None = None
    deadline_subframes: float | None = None
    watchdog_poll_s: float = 0.02
    join_timeout_s: float = 10.0
    drain_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive or None")
        if self.deadline_subframes is not None and self.deadline_subframes <= 0:
            raise ValueError("deadline_subframes must be positive or None")
        if self.watchdog_poll_s <= 0:
            raise ValueError("watchdog_poll_s must be positive")
        if self.join_timeout_s <= 0:
            raise ValueError("join_timeout_s must be positive")
        if self.drain_timeout_s is not None and self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive or None")

    @property
    def wants_watchdog(self) -> bool:
        """True when the threaded runtime needs its monitor thread."""
        return self.deadline_s is not None


class RuntimeHung(RuntimeError):
    """A drain/join exceeded its timeout: the runtime is wedged."""


@dataclass(frozen=True)
class WorkerFailure:
    """One worker thread's fatal failure, propagated to the runtime."""

    worker_id: int
    error: str
    fatal: bool = False
    injected: bool = False

    def __str__(self) -> str:
        flavor = "injected" if self.injected else "unexpected"
        return f"worker {self.worker_id}: {flavor} {self.error}"


@contextmanager
def hang_guard(timeout_s: float | None, exit_on_hang: bool = True):
    """Dump all-thread tracebacks (and optionally exit) after ``timeout_s``.

    A no-op when ``timeout_s`` is None, so callers can thread an optional
    ``--timeout`` straight through. Re-entrant use simply rearms the
    (process-wide) faulthandler timer; the guard is cancelled on exit from
    the outermost block that armed it.
    """
    if timeout_s is None:
        yield
        return
    if timeout_s <= 0:
        raise ValueError("timeout_s must be positive or None")
    faulthandler.dump_traceback_later(
        timeout_s, exit=exit_on_hang, file=sys.stderr
    )
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
