"""Seeded per-cell subframe arrival processes for ``repro serve``.

The batch entry points replay a fixed workload; a base station instead
absorbs an *arrival process*: every DELTA it learns which users the
eNodeB scheduler granted uplink resources in that subframe. This module
provides the four processes the serve loop dispatches from, all built on
the same seeded, random-access RNG discipline as
:class:`~repro.uplink.parameter_model.RandomizedParameterModel`
(``np.random.default_rng((seed, tick))``), so a serve run is exactly
reproducible from its seed and any tick can be queried independently:

* :class:`ConstantRateArrivals` — delegates to the paper's randomized
  parameter model, so a single-cell constant-rate serve run is bit-exact
  with the equivalent batch ``repro run`` at the same seed;
* :class:`PoissonArrivals` — independent Poisson(``rate``) user counts
  per subframe, the classic teletraffic arrival model;
* :class:`DiurnalArrivals` — a Poisson process whose per-tick intensity
  follows the hour-by-hour
  :data:`~repro.uplink.scenarios.DEFAULT_DIURNAL_PROFILE` envelope,
  normalized so the expected arrival count over one mapped day equals
  ``daily_users`` exactly;
* :class:`MmtcBurstArrivals` — a low-rate background stream plus
  synchronized machine-device surges confined to a periodic window (the
  mMTC access-burst scenario from the related-work paper), with the
  burst component separately queryable so tests can assert it never
  fires outside its window.

Every process bounds the per-subframe user population by the carrier's
PRB budget, so :func:`repro.uplink.subframe.assign_offsets` can never
raise on a generated subframe. No module-level RNG or clock state is
created (spawn-safety: importing this module is side-effect free).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..phy.params import (
    MAX_PRB,
    MAX_USERS_PER_SUBFRAME,
    MIN_PRB_PER_USER,
    Modulation,
)
from ..uplink.parameter_model import RandomizedParameterModel
from ..uplink.scenarios import DEFAULT_DIURNAL_PROFILE
from ..uplink.user import UserParameters

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "ConstantRateArrivals",
    "DiurnalArrivals",
    "MmtcBurstArrivals",
    "PoissonArrivals",
    "make_arrivals",
]

#: Arrival-process names accepted by :func:`make_arrivals` (and the
#: ``repro serve --arrival`` CLI flag).
ARRIVAL_KINDS = ("constant", "poisson", "diurnal", "mmtc")

#: Hard cap on users per subframe: an all-mMTC population of
#: :data:`MIN_PRB_PER_USER`-PRB devices fills the carrier exactly.
_MAX_DEVICES = MAX_PRB // MIN_PRB_PER_USER


class ArrivalProcess(Protocol):
    """A seeded, random-access source of per-subframe user arrivals."""

    def users_for(self, tick: int) -> list[UserParameters]:
        """The users arriving in subframe ``tick`` (deterministic)."""
        ...

    def expected_users(self, tick: int) -> float:
        """The process's expected arrival count at ``tick``."""
        ...

    def describe(self) -> dict:
        """Plain-data description for the serve report."""
        ...


def _draw_users(
    rng: np.random.Generator, count: int, mix: str, prob: float = 0.5
) -> list[UserParameters]:
    """Materialize ``count`` arriving users under a traffic ``mix``.

    ``"mmtc"`` models machine devices: minimum-allocation QPSK
    single-layer uplinks, the dominant population in a synchronized
    access burst. ``"mixed"`` reuses the paper's Fig. 6 PRB-spread and
    Fig. 10 layer/modulation draws at a fixed probability, modelling a
    mixed-traffic cell. Both stop early when the PRB budget is exhausted
    so the subframe always fits the carrier.
    """
    users: list[UserParameters] = []
    remaining = MAX_PRB
    while len(users) < count and remaining >= MIN_PRB_PER_USER:
        if mix == "mmtc":
            num_prb = MIN_PRB_PER_USER
            layers = 1
            modulation = Modulation.QPSK
        else:
            user_prb = MAX_PRB * rng.random()
            distribution = rng.random()
            if distribution < 0.4:
                user_prb /= 8
            elif distribution < 0.6:
                user_prb /= 4
            elif distribution < 0.9:
                user_prb /= 2
            num_prb = int(user_prb)
            num_prb -= num_prb % 2
            num_prb = max(MIN_PRB_PER_USER, min(num_prb, remaining))
            layers = RandomizedParameterModel._draw_layers(rng, prob)
            modulation = RandomizedParameterModel._draw_modulation(rng, prob)
        remaining -= num_prb
        users.append(
            UserParameters(
                user_id=len(users),
                num_prb=num_prb,
                layers=layers,
                modulation=modulation,
            )
        )
    return users


def _validated_mix(mix: str) -> str:
    if mix not in ("mmtc", "mixed"):
        raise ValueError(f"unknown traffic mix {mix!r} (mmtc or mixed)")
    return mix


class ConstantRateArrivals:
    """The paper's randomized workload, replayed as an arrival stream.

    Delegates tick-for-tick to
    :class:`~repro.uplink.parameter_model.RandomizedParameterModel`, so
    the arrival sequence of cell 0 at seed ``s`` is identical to the
    subframe sequence ``repro run --seed s`` decodes — the property the
    serve-vs-batch differential test pins.
    """

    def __init__(
        self,
        seed: int = 0,
        max_users: int = MAX_USERS_PER_SUBFRAME,
        total_subframes: int = 2,
    ) -> None:
        self.model = RandomizedParameterModel(
            total_subframes=max(2, total_subframes),
            seed=seed,
            max_users=max_users,
        )
        self.seed = seed

    def users_for(self, tick: int) -> list[UserParameters]:
        return self.model.uplink_parameters(tick)

    def expected_users(self, tick: int) -> float:
        # The Fig. 6 loop admits users until the PRB budget runs out, so
        # the population is almost always the configured cap.
        return float(self.model.max_users)

    def describe(self) -> dict:
        return {
            "kind": "constant",
            "seed": self.seed,
            "max_users": self.model.max_users,
        }


class PoissonArrivals:
    """Independent Poisson(``rate``) arrivals per subframe."""

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        mix: str = "mmtc",
        max_users: int = _MAX_DEVICES,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        if max_users < 1:
            raise ValueError("max_users must be >= 1")
        self.rate = float(rate)
        self.seed = seed
        self.mix = _validated_mix(mix)
        self.max_users = min(max_users, _MAX_DEVICES)

    def _rng(self, tick: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, 2, tick))

    def count_for(self, tick: int) -> int:
        if tick < 0:
            raise ValueError("tick must be >= 0")
        return int(min(self._rng(tick).poisson(self.rate), self.max_users))

    def users_for(self, tick: int) -> list[UserParameters]:
        rng = self._rng(tick)
        count = int(min(rng.poisson(self.rate), self.max_users))
        return _draw_users(rng, count, self.mix)

    def expected_users(self, tick: int) -> float:
        return self.rate

    def describe(self) -> dict:
        return {
            "kind": "poisson",
            "seed": self.seed,
            "rate": self.rate,
            "mix": self.mix,
            "max_users": self.max_users,
        }


class DiurnalArrivals:
    """Poisson arrivals modulated by the 24-hour diurnal load profile.

    One mapped day spans ``subframes_per_hour * len(profile)`` ticks
    (repeating afterwards); the per-tick intensity is the hour's profile
    weight normalized so that ``sum(expected_users(t))`` over exactly one
    day equals ``daily_users`` — the "configured daily volume integrates
    exactly" contract the property tests assert.
    """

    def __init__(
        self,
        daily_users: float,
        seed: int = 0,
        subframes_per_hour: int = 100,
        mix: str = "mmtc",
        profile: tuple = DEFAULT_DIURNAL_PROFILE,
        max_users: int = _MAX_DEVICES,
    ) -> None:
        if daily_users < 0:
            raise ValueError("daily_users must be >= 0")
        if subframes_per_hour < 1:
            raise ValueError("subframes_per_hour must be >= 1")
        if not profile or min(profile) <= 0:
            raise ValueError("profile weights must be positive")
        self.daily_users = float(daily_users)
        self.seed = seed
        self.subframes_per_hour = subframes_per_hour
        self.mix = _validated_mix(mix)
        self.profile = tuple(float(w) for w in profile)
        self.max_users = min(max_users, _MAX_DEVICES)
        self._weight_sum = float(sum(self.profile))

    @property
    def day_subframes(self) -> int:
        """Ticks in one mapped day."""
        return self.subframes_per_hour * len(self.profile)

    def hour_of(self, tick: int) -> int:
        if tick < 0:
            raise ValueError("tick must be >= 0")
        return (tick // self.subframes_per_hour) % len(self.profile)

    def intensity(self, tick: int) -> float:
        """Expected arrivals in subframe ``tick`` (the Poisson mean)."""
        share = self.profile[self.hour_of(tick)] / self._weight_sum
        return self.daily_users * share / self.subframes_per_hour

    def users_for(self, tick: int) -> list[UserParameters]:
        rng = np.random.default_rng((self.seed, 3, tick))
        count = int(min(rng.poisson(self.intensity(tick)), self.max_users))
        return _draw_users(rng, count, self.mix)

    def expected_users(self, tick: int) -> float:
        return self.intensity(tick)

    def describe(self) -> dict:
        return {
            "kind": "diurnal",
            "seed": self.seed,
            "daily_users": self.daily_users,
            "subframes_per_hour": self.subframes_per_hour,
            "mix": self.mix,
            "hours": len(self.profile),
        }


class MmtcBurstArrivals:
    """Background traffic plus synchronized machine-device surges.

    Every ``burst_period`` ticks a synchronized access event begins:
    for the next ``burst_window`` ticks an *additional*
    Poisson(``burst_size / burst_window``) device population piles onto
    the Poisson(``base_rate``) background. :meth:`burst_count` exposes
    the surge component alone and is identically zero outside the
    window — the property the burst-window test pins.
    """

    def __init__(
        self,
        base_rate: float = 1.0,
        burst_size: float = 60.0,
        burst_period: int = 100,
        burst_window: int = 10,
        seed: int = 0,
        mix: str = "mmtc",
        max_users: int = _MAX_DEVICES,
    ) -> None:
        if base_rate < 0 or burst_size < 0:
            raise ValueError("base_rate and burst_size must be >= 0")
        if burst_period < 1:
            raise ValueError("burst_period must be >= 1")
        if not 1 <= burst_window <= burst_period:
            raise ValueError("burst_window must be in [1, burst_period]")
        self.base_rate = float(base_rate)
        self.burst_size = float(burst_size)
        self.burst_period = burst_period
        self.burst_window = burst_window
        self.seed = seed
        self.mix = _validated_mix(mix)
        self.max_users = min(max_users, _MAX_DEVICES)

    def in_burst(self, tick: int) -> bool:
        if tick < 0:
            raise ValueError("tick must be >= 0")
        return tick % self.burst_period < self.burst_window

    def burst_count(self, tick: int) -> int:
        """The surge component alone: zero outside the burst window."""
        if not self.in_burst(tick):
            return 0
        rng = np.random.default_rng((self.seed, 4, tick))
        return int(rng.poisson(self.burst_size / self.burst_window))

    def users_for(self, tick: int) -> list[UserParameters]:
        rng = np.random.default_rng((self.seed, 5, tick))
        count = int(rng.poisson(self.base_rate)) + self.burst_count(tick)
        count = min(count, self.max_users)
        return _draw_users(rng, count, self.mix)

    def expected_users(self, tick: int) -> float:
        expected = self.base_rate
        if self.in_burst(tick):
            expected += self.burst_size / self.burst_window
        return expected

    def describe(self) -> dict:
        return {
            "kind": "mmtc",
            "seed": self.seed,
            "base_rate": self.base_rate,
            "burst_size": self.burst_size,
            "burst_period": self.burst_period,
            "burst_window": self.burst_window,
            "mix": self.mix,
        }


def make_arrivals(
    kind: str,
    seed: int = 0,
    rate: float = 4.0,
    max_users: int = MAX_USERS_PER_SUBFRAME,
    total_subframes: int = 2,
    daily_users: float = 50_000.0,
    subframes_per_hour: int = 100,
    burst_size: float = 60.0,
    burst_period: int = 100,
    burst_window: int = 10,
    mix: str = "mmtc",
) -> ArrivalProcess:
    """Build an arrival process by CLI name (see :data:`ARRIVAL_KINDS`)."""
    if kind == "constant":
        # total_subframes sets the Fig. 10 probability-ramp cycle length,
        # exactly as ``repro run`` does — required for the serve-vs-batch
        # differential to stay bit-exact.
        return ConstantRateArrivals(
            seed=seed, max_users=max_users, total_subframes=total_subframes
        )
    if kind == "poisson":
        return PoissonArrivals(rate=rate, seed=seed, mix=mix)
    if kind == "diurnal":
        return DiurnalArrivals(
            daily_users=daily_users,
            seed=seed,
            subframes_per_hour=subframes_per_hour,
            mix=mix,
        )
    if kind == "mmtc":
        return MmtcBurstArrivals(
            base_rate=rate,
            burst_size=burst_size,
            burst_period=burst_period,
            burst_window=burst_window,
            seed=seed,
            mix=mix,
        )
    raise ValueError(f"unknown arrival kind {kind!r} (choose from {ARRIVAL_KINDS})")
