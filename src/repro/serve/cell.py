"""Per-cell scheduler shards for the serve loop.

Each simulated cell owns one :class:`CellShard`: its arrival process, a
:class:`~repro.uplink.subframe.SubframeFactory`, a per-cell
:class:`~repro.faults.admission.AdmissionController` (the Eq. 3-4
estimator shedding against the DELTA budget), a bounded in-flight queue,
and an execution backend — inline (serial/vectorized, run on a dedicated
single thread so the ingest loop never blocks) or a real scheduler
runtime (threaded/multiprocess) sharing the serve run's global
:class:`~repro.faults.accounting.SubframeLedger`.

Subframe identity: cell ``c``'s tick ``k`` dispatches as global id
``c * CELL_STRIDE + k``, so ids are unique across cells in the shared
ledger while cell 0's ids equal its ticks — which keeps a single-cell
serve run bit-exact with the batch driver at the same seed (the
synthesis RNG is keyed on the subframe id).
"""

from __future__ import annotations

from typing import Any, Callable

from ..faults.accounting import SubframeLedger
from ..faults.admission import AdmissionController, AdmissionDecision
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..faults.watchdog import ResilienceConfig
from ..power import calibrate_from_cost_model
from ..sim import CostModel
from ..uplink.serial import SubframeResult, process_subframe
from ..uplink.subframe import SubframeFactory, SubframeInput
from ..uplink.user import UserParameters

__all__ = ["CELL_STRIDE", "CellShard", "offset_plan"]

#: Global-id stride between cells: cell ``c``, tick ``k`` dispatches as
#: subframe id ``c * CELL_STRIDE + k``. Wide enough that no bounded serve
#: run can collide across cells, and cell 0 keeps ``id == tick``.
CELL_STRIDE = 10_000_000

#: Backends executed inline on a per-cell thread (no scheduler runtime).
_INLINE_BACKENDS = ("serial", "vectorized")


def offset_plan(plan: FaultPlan, offset: int) -> FaultPlan:
    """Rebase a fault plan's subframe indices into a cell's global-id space.

    Plans are generated per cell over local ticks ``[0, num_subframes)``;
    the runtimes arm specs by the *global* subframe id they observe, so
    every spec shifts by the cell's id offset.
    """
    specs = tuple(
        FaultSpec(
            kind=spec.kind,
            subframe=spec.subframe + offset,
            target=spec.target,
            param=spec.param,
            seed=spec.seed,
        )
        for spec in plan.specs
    )
    return FaultPlan(specs=specs, seed=plan.seed)


class CellShard:
    """One cell's arrival stream, admission control, and backend.

    The shard is driven by the asyncio serve loop (single consumer); its
    counters are only mutated from loop callbacks, so they need no lock.
    Runtime backends receive the shared ``ledger`` so their own
    dispatch/resolve accounting lands in the serve run's global ledger.
    """

    def __init__(
        self,
        cell_id: int,
        arrivals: Any,
        seed: int = 0,
        backend: str = "vectorized",
        workers: int = 2,
        queue_depth: int = 8,
        synthesize: bool = False,
        max_activity: float = 0.9,
        ledger: SubframeLedger | None = None,
        faults: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        observers: list | None = None,
        processor: Callable[[SubframeInput], SubframeResult] | None = None,
        respawn: Any = None,
    ) -> None:
        if cell_id < 0:
            raise ValueError("cell_id must be >= 0")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.cell_id = cell_id
        self.arrivals = arrivals
        self.backend = backend
        self.workers = workers
        self.queue_depth = queue_depth
        self.synthesize = synthesize
        self.factory = SubframeFactory(seed=seed)
        self.admission = AdmissionController(
            calibrate_from_cost_model(CostModel()), max_activity=max_activity
        )
        self.ledger = ledger if ledger is not None else SubframeLedger()
        self._processor = processor
        self.runtime: Any = None
        if backend not in _INLINE_BACKENDS:
            self.runtime = self._make_runtime(
                backend, faults, resilience, observers, respawn
            )
        # --- loop-owned state (single consumer, no lock needed) ---------
        self.inflight = 0
        self.max_depth = 0
        self.dispatched = 0
        self.offered_users = 0
        self.admitted_users = 0
        self.shed_users = 0
        self.backpressure_hits = 0
        self.served_users = 0
        self.crc_ok_users = 0
        self.terminal_counts: dict[str, int] = {}
        self.last_tick: int | None = None
        self.monotone = True
        #: Users admitted per in-flight global id (for served accounting).
        self.users_of: dict[int, int] = {}
        #: Ids dispatched-as-shed that never occupied the queue.
        self._unqueued: set[int] = set()
        #: Per-gid user accounting staged at dispatch and folded into the
        #: cell counters only at the terminal: (offered, shed, bp, tick).
        #: This makes every user counter cover exactly the *resolved*
        #: subframes — the consistent cut a crash-safe checkpoint needs.
        self._meta: dict[int, tuple[int, int, int, int]] = {}
        #: Terminal state per resolved local tick (this segment plus any
        #: restored checkpoint baseline): the checkpoint state map and the
        #: resume skip set.
        self.resolved_ticks: dict[int, str] = {}

    def _make_runtime(
        self,
        backend: str,
        faults: FaultPlan | None,
        resilience: ResilienceConfig | None,
        observers: list | None,
        respawn: Any = None,
    ) -> Any:
        plan = None
        if faults is not None:
            kinds = {FaultKind.WORKER_DEATH, FaultKind.TASK_EXCEPTION}
            if respawn is not None:
                # Repeated-kill kinds only make sense when the pool heals.
                from ..faults.plan import RESPAWN_KINDS

                kinds |= RESPAWN_KINDS
            plan = offset_plan(
                faults.of_kinds(frozenset(kinds)), self.global_id(0)
            )
        if backend == "threaded":
            from ..sched.threaded import ThreadedRuntime

            return ThreadedRuntime(
                num_workers=self.workers,
                observers=observers,
                emit_spans=False,
                faults=plan,
                resilience=resilience,
                ledger=self.ledger,
            )
        if backend == "multiprocess":
            from ..sched.multiprocess import MultiprocessRuntime

            return MultiprocessRuntime(
                num_workers=self.workers,
                observers=observers,
                emit_spans=False,
                faults=plan,
                resilience=resilience,
                ledger=self.ledger,
                respawn=respawn,
            )
        raise ValueError(f"unknown serve backend {backend!r}")

    # ------------------------------------------------------------- identity
    def global_id(self, tick: int) -> int:
        return self.cell_id * CELL_STRIDE + tick

    @property
    def inline(self) -> bool:
        return self.runtime is None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self.runtime is not None:
            self.runtime.start()

    def stop(self) -> None:
        if self.runtime is not None:
            if self.backend == "threaded":
                self.runtime._halt_threads()
            else:
                self.runtime.close()

    def abort(self) -> None:
        if self.runtime is not None:
            self.runtime.abort()

    # ------------------------------------------------------------- dispatch
    def make_subframe(self, tick: int, users: list[UserParameters]) -> SubframeInput:
        index = self.global_id(tick)
        if self.synthesize:
            return self.factory.synthesize(users, index)
        return self.factory.from_pool(users, index)

    def admit(
        self, users: list[UserParameters], load_factor: float | None = None
    ) -> AdmissionDecision:
        return self.admission.admit(users, load_factor=load_factor)

    def process(self, subframe: SubframeInput) -> SubframeResult:
        """Inline execution (runs on the shard's dedicated thread)."""
        if self._processor is not None:
            return self._processor(subframe)
        return process_subframe(subframe, backend=self.backend)

    # ------------------------------------------------------------- tracking
    def note_dispatch(
        self,
        tick: int,
        gid: int,
        users: int,
        queued: bool = True,
        offered: int = 0,
        shed: int = 0,
        backpressure: int = 0,
    ) -> None:
        """Track one ledger dispatch; ``queued=False`` for subframes shed
        before execution, which never occupy the in-flight queue.

        ``offered``/``shed``/``backpressure`` are this tick's user-level
        facts, staged here and folded into the cell counters when the
        subframe resolves (:meth:`note_terminal`) so the counters always
        describe exactly the resolved subframes.
        """
        if self.last_tick is not None and tick <= self.last_tick:
            self.monotone = False
        self.last_tick = tick
        self.dispatched += 1
        self.users_of[gid] = users
        self._meta[gid] = (offered, shed, backpressure, tick)
        if queued:
            self.inflight += 1
            if self.inflight > self.max_depth:
                self.max_depth = self.inflight
        else:
            self._unqueued.add(gid)

    def note_terminal(self, gid: int, state: str, crc_ok: int = 0) -> int:
        """Account one terminal; returns the subframe's admitted users."""
        users = self.users_of.pop(gid, 0)
        if gid in self._unqueued:
            self._unqueued.discard(gid)
        else:
            self.inflight = max(0, self.inflight - 1)
        self.terminal_counts[state] = self.terminal_counts.get(state, 0) + 1
        offered, shed, backpressure, tick = self._meta.pop(
            gid, (0, 0, 0, gid - self.cell_id * CELL_STRIDE)
        )
        self.offered_users += offered
        self.admitted_users += users
        self.shed_users += shed
        self.backpressure_hits += backpressure
        self.resolved_ticks[tick] = state
        if state in ("ok", "crc_failed"):
            self.served_users += users
            self.crc_ok_users += crc_ok
        return users

    @property
    def resolved(self) -> int:
        """Subframes that reached a terminal state (<= ``dispatched``)."""
        return sum(self.terminal_counts.values())

    # ----------------------------------------------------------- checkpoint
    def checkpoint_record(self) -> dict:
        """Consistent per-cell snapshot covering only resolved subframes.

        ``dispatched`` is deliberately the *resolved* count, not the live
        one: in-flight subframes at snapshot time have no terminal state
        yet, and a resumed run will re-dispatch their ticks.
        """
        return {
            "cell": self.cell_id,
            "states": {str(t): s for t, s in self.resolved_ticks.items()},
            "counters": {
                "dispatched": self.resolved,
                "offered_users": self.offered_users,
                "admitted_users": self.admitted_users,
                "shed_users": self.shed_users,
                "served_users": self.served_users,
                "crc_ok_users": self.crc_ok_users,
                "backpressure_hits": self.backpressure_hits,
                "terminal_counts": dict(sorted(self.terminal_counts.items())),
            },
        }

    def restore(self, record: dict) -> None:
        """Adopt a checkpoint record as this cell's already-done baseline.

        Must run before the first dispatch. ``last_tick`` stays ``None``:
        the monotonicity witness is per-segment (the resumed segment
        dispatches only the not-yet-resolved ticks, in order).
        """
        if self.dispatched:
            raise RuntimeError("cannot restore into a cell that already ran")
        counters = record["counters"]
        self.resolved_ticks = {
            int(tick): state for tick, state in record["states"].items()
        }
        self.dispatched = int(counters["dispatched"])
        self.offered_users = int(counters["offered_users"])
        self.admitted_users = int(counters["admitted_users"])
        self.shed_users = int(counters["shed_users"])
        self.served_users = int(counters["served_users"])
        self.crc_ok_users = int(counters["crc_ok_users"])
        self.backpressure_hits = int(counters["backpressure_hits"])
        self.terminal_counts = dict(counters["terminal_counts"])

    def summary(self) -> dict:
        """Per-cell report row (plain data)."""
        return {
            "cell": self.cell_id,
            "backend": self.backend,
            "dispatched": self.dispatched,
            "terminal_counts": dict(sorted(self.terminal_counts.items())),
            "offered_users": self.offered_users,
            "admitted_users": self.admitted_users,
            "shed_users": self.shed_users,
            "served_users": self.served_users,
            "crc_ok_users": self.crc_ok_users,
            "backpressure_hits": self.backpressure_hits,
            "max_queue_depth": self.max_depth,
            "last_tick": self.last_tick,
            "monotone_ids": self.monotone,
            "arrivals": self.arrivals.describe(),
        }
