"""Streaming base-station service mode: the async serve loop.

Batch drivers (``repro run``/``repro bench``) push a fixed worklist
through a backend as fast as it will go. A base station does not get
that luxury: subframes *arrive*, one per cell per DELTA (the paper's
5 ms cadence), whether or not the receiver is keeping up. This module
is that arrival side. :func:`serve` runs an asyncio ingest loop with
one producer per cell: each tick it draws the cell's offered users from
a seeded arrival process (:mod:`repro.serve.arrivals`), applies
backpressure against the cell's bounded in-flight queue, runs the
Eq. 3-4 admission controller, and hands the admitted subframe to the
cell's backend shard (:class:`repro.serve.cell.CellShard`) — inline
serial/vectorized execution on a dedicated thread, or a real
threaded/multiprocess scheduler runtime.

Accounting is ledger-first: every arrival that offers users is entered
into one shared :class:`~repro.faults.accounting.SubframeLedger` and
driven to exactly one terminal state (ok / crc_failed / shed /
aborted), including subframes refused by backpressure or admission
control and subframes orphaned by worker failures (reconciled to
``aborted`` at drain). ``report()["ledger_ok"]`` is therefore the
serve-mode survival criterion: overload and chaos must degrade into
*shed*, never into silently lost work.

Telemetry rides the PR 8 stream: the loop emits ``ARRIVAL`` /
``BACKPRESSURE`` / ``DISPATCH`` / ``SHED`` / ``SUBFRAME_TERMINAL``
events into an :class:`~repro.obs.slo.SLOEngine`, so ``repro serve
--json`` yields the same ``repro-slo/1`` burn-rate report as batch
runs, and ``--trace`` writes a line-flushed JSONL stream that
``repro top --from <path> --follow`` can tail live.

Threading model: the asyncio loop owns every shard counter and the
ledger-facing serve paths. Runtime worker threads only touch the loop's
state via ``call_soon_threadsafe`` (terminal marshaling); inline
processing happens on per-cell single-thread executors whose results
are consumed back on the loop. The multiprocess runtime's replies are
pumped from a loop task, so no second thread ever calls into it.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import IO, Any

from concurrent.futures import ThreadPoolExecutor

from ..faults.accounting import LedgerError, SubframeLedger, TerminalState
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..faults.watchdog import (
    ResilienceConfig,
    RuntimeHung,
    monotonic_ns,
    ns_from_s,
)
from ..ioutil import fsync_file
from ..obs.events import Event, EventKind
from ..obs.lockdep import tracked_lock
from ..obs.slo import SLOEngine
from ..obs.telemetry import TelemetryCollector
from ..uplink.serial import SubframeResult
from .arrivals import ARRIVAL_KINDS, make_arrivals
from .cell import CellShard
from .checkpoint import (
    build_checkpoint,
    load_checkpoint,
    validate_checkpoint,
    write_checkpoint,
)
from .overload import OverloadController
from .supervisor import RespawnPolicy

__all__ = [
    "SERVE_BACKENDS",
    "ServeConfig",
    "ServeResult",
    "serve",
    "serve_async",
]

#: Execution backends a serve cell can shard onto.
SERVE_BACKENDS = ("serial", "vectorized", "threaded", "multiprocess")

#: Backpressure policies when a cell's in-flight queue is full.
BACKPRESSURE_POLICIES = ("shed", "block")

#: Worker-core remap stride: cell ``c``'s runtime core ``k`` reports as
#: core ``c * _CORE_STRIDE + k`` so per-core telemetry stays distinct.
_CORE_STRIDE = 256


@dataclass
class ServeConfig:
    """One serve run's shape (all knobs the CLI exposes, plus test hooks)."""

    #: Number of cells; each owns an arrival process and a backend shard.
    cells: int = 4
    #: Ticks (subframe slots) per cell.
    subframes: int = 200
    #: Arrival cadence in seconds (the paper's DELTA = 5 ms).
    delta_s: float = 0.005
    #: Arrival process kind (see :data:`repro.serve.arrivals.ARRIVAL_KINDS`).
    arrival: str = "constant"
    #: Mean offered users per subframe (poisson / mmtc base rate).
    rate: float = 4.0
    #: Total daily users for the diurnal process.
    daily_users: float = 50_000.0
    #: Diurnal time compression: ticks per simulated hour.
    subframes_per_hour: int = 100
    #: mMTC synchronized-burst shape.
    burst_size: float = 60.0
    burst_period: int = 100
    burst_window: int = 10
    #: Device mix for the random processes ("mmtc" or "mixed").
    mix: str = "mmtc"
    #: Cap on users per subframe (matches ``repro run --users`` default).
    max_users: int = 4
    #: Execution backend for every cell shard.
    backend: str = "vectorized"
    #: Workers per runtime shard (threaded/multiprocess only).
    workers: int = 2
    #: Bounded in-flight queue depth per cell.
    queue_depth: int = 8
    #: Backpressure policy at full queue: "shed" drops, "block" waits.
    backpressure: str = "shed"
    #: Pace arrivals at DELTA (False = as-fast-as-possible, for tests).
    pace: bool = True
    #: Synthesize IQ grids per subframe (True) or draw from the pool.
    synthesize: bool = False
    #: Base seed; cell ``c`` draws arrivals with ``seed + c * stride``.
    seed: int = 0
    cell_seed_stride: int = 1_000_003
    #: Admission budget (Eq. 4 activity ceiling).
    max_activity: float = 0.9
    #: Chaos mode: inject worker deaths / task exceptions / overload.
    faults: bool = False
    #: Ticks an injected overload window stays active.
    overload_window: int = 20
    #: Per-subframe watchdog deadline under --faults (seconds).
    faults_deadline_s: float = 2.0
    #: Drain timeout for runtime shards at shutdown (seconds).
    drain_timeout_s: float = 60.0
    #: Keep per-subframe results (differential tests; off for long runs).
    keep_results: bool = True
    #: JSONL trace path (line-flushed; ``repro top --follow`` tails it).
    trace_path: str | None = None
    #: Optional inline processor override (``SubframeInput -> SubframeResult``)
    #: for serial/vectorized cells — the bench harness injects a
    #: stage-timed processor here to attribute per-kernel wall clock.
    processor: Any = None
    #: Close the SLO burn-rate loop into admission: AIMD load shedding
    #: with hysteresis (see :mod:`repro.serve.overload`). Opt-in.
    adaptive: bool = False
    #: Optional :class:`~repro.serve.overload.AimdConfig` override.
    adaptive_config: Any = None
    #: Supervised worker respawn (multiprocess backend only): heal
    #: worker deaths under a bounded restart budget instead of aborting
    #: the shard (see :mod:`repro.serve.supervisor`). Opt-in.
    respawn: bool = False
    #: Optional :class:`~repro.serve.supervisor.RespawnPolicy` override.
    respawn_policy: Any = None
    #: Crash-safe checkpoint path (``repro-ckpt/1``, atomic writes).
    checkpoint_path: str | None = None
    #: Seconds between periodic checkpoint snapshots.
    checkpoint_every_s: float = 1.0
    #: Resume from a prior run's checkpoint (validated against this
    #: config's signature before any state is adopted).
    resume_path: str | None = None
    #: Wall-clock guard: producers stop after this many seconds and the
    #: run drains; the CLI maps a tripped guard to exit code 124
    #: (``timeout(1)``'s convention).
    max_wall_s: float | None = None

    def validate(self) -> None:
        if self.cells < 1:
            raise ValueError("cells must be >= 1")
        if self.subframes < 1:
            raise ValueError("subframes must be >= 1")
        if self.delta_s <= 0:
            raise ValueError("delta_s must be positive")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.backend not in SERVE_BACKENDS:
            raise ValueError(f"unknown serve backend {self.backend!r}")
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.backpressure!r}"
            )
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.max_users < 1:
            raise ValueError("max_users must be >= 1")
        if self.respawn and self.backend != "multiprocess":
            raise ValueError("respawn requires the multiprocess backend")
        if self.checkpoint_every_s <= 0:
            raise ValueError("checkpoint_every_s must be positive")
        if self.max_wall_s is not None and self.max_wall_s <= 0:
            raise ValueError("max_wall_s must be positive")


@dataclass
class ServeResult:
    """What :func:`serve` returns: the report plus test-facing handles."""

    report: dict
    results: dict[int, SubframeResult] = field(default_factory=dict)
    ledger: SubframeLedger | None = None
    engine: SLOEngine | None = None
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.report.get("ledger_ok")) and not self.errors


class _JsonlTraceSink:
    """Line-flushed JSONL event sink (tailable while being written)."""

    def __init__(self, path: str) -> None:
        self._fh: IO[str] = open(path, "w", encoding="utf-8")
        # Runtime worker threads emit concurrently with the loop thread.
        self._lock = tracked_lock("_JsonlTraceSink._lock")

    def __call__(self, event: Event) -> None:
        line = json.dumps(event.to_dict()) + "\n"
        with self._lock:
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            # Final flush is crash-safe: force the tail of the trace to
            # stable storage before close so a kill right after the run
            # cannot truncate the last lines `repro top --from` reads.
            if not self._fh.closed:
                fsync_file(self._fh)
            self._fh.close()


class _RuntimeWatcher:
    """Observer bridging one cell's runtime events into the serve loop.

    Task/fault/retry events forward synchronously (the collectors are
    GIL-safe, same as every batch runtime observer) with worker cores
    remapped into the cell's core band. ``SUBFRAME_TERMINAL`` instead
    marshals onto the loop thread, where the shard's counters and the
    backpressure capacity signal live. The runtime's own ``DISPATCH``
    is swallowed — the serve loop already emitted its cell-tagged one.
    """

    def __init__(self, server: _Server) -> None:
        self._server = server
        self._cell: CellShard | None = None

    def bind(self, cell: CellShard) -> None:
        """Late-bind the shard (the runtime is built inside CellShard,
        so the watcher must exist before the cell it watches)."""
        self._cell = cell

    def __call__(self, event: Event) -> None:
        if self._cell is None:  # pragma: no cover - bound before start()
            return
        kind = event.kind
        if kind is EventKind.SUBFRAME_TERMINAL:
            data = event.data or {}
            self._server.loop.call_soon_threadsafe(
                self._server._on_runtime_terminal,
                self._cell,
                int(data.get("subframe", -1)),
                str(data.get("state", TerminalState.ABORTED.value)),
                event.t,
            )
            return
        if kind is EventKind.DISPATCH:
            return
        core = event.core
        if core >= 0:
            core = self._cell.cell_id * _CORE_STRIDE + core
        data = dict(event.data) if event.data else {}
        data.setdefault("cell", self._cell.cell_id)
        self._server.emit(Event(kind, event.t, core, data))

    def merge_shard(self, shard: dict) -> None:
        self._server.engine.merge_shard(shard)


class _Server:
    """One serve run: cells, producers, drains, and the final report."""

    def __init__(self, config: ServeConfig) -> None:
        config.validate()
        self.config = config
        self.errors: list[str] = []
        self.results: dict[int, SubframeResult] = {}
        self.ledger = SubframeLedger()
        self.trace_sink: _JsonlTraceSink | None = (
            _JsonlTraceSink(config.trace_path) if config.trace_path else None
        )
        self.engine = SLOEngine(TelemetryCollector(), sink=self.trace_sink)
        self.telemetry = self.engine.telemetry
        self.overload: OverloadController | None = (
            OverloadController(
                self.engine, config=config.adaptive_config, sink=self.emit
            )
            if config.adaptive
            else None
        )
        inline = config.backend in ("serial", "vectorized")
        self.telemetry.workers = (
            config.cells if inline else config.cells * config.workers
        )
        resilience = None
        if config.faults:
            resilience = ResilienceConfig(
                deadline_s=config.faults_deadline_s,
                drain_timeout_s=config.drain_timeout_s,
            )
        respawn_policy = None
        if config.respawn:
            respawn_policy = config.respawn_policy or RespawnPolicy()
        self.cells: list[CellShard] = []
        self.overloads: list[tuple[FaultSpec, ...]] = []
        for cell_id in range(config.cells):
            plan = self._cell_plan(cell_id) if config.faults else None
            # The runtimes freeze their observer fan-out at construction,
            # so the watcher must be handed in (and late-bound) rather
            # than appended afterwards.
            watcher = _RuntimeWatcher(self)
            cell = CellShard(
                cell_id,
                self._cell_arrivals(cell_id),
                seed=config.seed,
                backend=config.backend,
                workers=config.workers,
                queue_depth=config.queue_depth,
                synthesize=config.synthesize,
                max_activity=config.max_activity,
                ledger=self.ledger,
                faults=plan,
                resilience=resilience,
                observers=[watcher],
                processor=config.processor,
                respawn=respawn_policy,
            )
            watcher.bind(cell)
            self.cells.append(cell)
            self.overloads.append(
                tuple(plan.of_kinds(frozenset({FaultKind.OVERLOAD})).specs)
                if plan is not None
                else ()
            )
        self.loop: Any = None  # bound in run()
        self._capacity: list[asyncio.Event] = []
        self._executors: list[ThreadPoolExecutor | None] = []
        self._inline_tasks: set[asyncio.Task] = set()
        self._pump_stop = False
        self._start_ns = 0
        # --- checkpoint / resume / wall-guard state ---------------------
        self._skip: list[frozenset[int]] = [
            frozenset() for _ in self.cells
        ]
        self._segments = 1
        self._resumed_wall_s = 0.0
        self._wall_begin = 0.0
        self._ckpt_stop = False
        self._ckpt_writes = 0
        self._ckpt_telemetry_misses = 0
        self._max_wall_hit = False
        self._producers_done = False
        if config.resume_path:
            self._restore(load_checkpoint(config.resume_path))

    def _restore(self, snapshot: dict) -> None:
        """Adopt a validated ``repro-ckpt/1`` snapshot before running."""
        problems = validate_checkpoint(snapshot, self.config)
        if problems:
            raise ValueError(
                "checkpoint not resumable: " + "; ".join(problems)
            )
        records = sorted(
            snapshot["cells"], key=lambda record: record.get("cell", 0)
        )
        for cell, record in zip(self.cells, records):
            cell.restore(record)
            self._skip[cell.cell_id] = frozenset(cell.resolved_ticks)
        shard = snapshot.get("telemetry")
        if shard:
            self.engine.merge_shard(shard)
        self._segments = int(snapshot.get("segments", 1)) + 1
        self._resumed_wall_s = float(snapshot.get("wall_s", 0.0))

    # ------------------------------------------------------------ factories
    def _cell_arrivals(self, cell_id: int) -> Any:
        config = self.config
        return make_arrivals(
            config.arrival,
            seed=config.seed + config.cell_seed_stride * cell_id,
            rate=config.rate,
            max_users=config.max_users,
            total_subframes=max(2, config.subframes),
            daily_users=config.daily_users,
            subframes_per_hour=config.subframes_per_hour,
            burst_size=config.burst_size,
            burst_period=config.burst_period,
            burst_window=config.burst_window,
            mix=config.mix,
        )

    def _cell_plan(self, cell_id: int) -> FaultPlan:
        config = self.config
        inline = config.backend in ("serial", "vectorized")
        if inline:
            kinds: tuple[FaultKind, ...] = (FaultKind.OVERLOAD,)
        else:
            kinds = (
                FaultKind.WORKER_DEATH,
                FaultKind.TASK_EXCEPTION,
                FaultKind.OVERLOAD,
            )
            if config.respawn:
                # Repeated-kill kinds exercise the supervisor's bounded
                # respawn; without one they would just abort the shard.
                kinds += (FaultKind.CRASH_LOOP, FaultKind.RESPAWN_STORM)
        return FaultPlan.generate(
            seed=config.seed + config.cell_seed_stride * cell_id + 1,
            num_subframes=config.subframes,
            num_workers=max(1, config.workers),
            kinds=kinds,
            faults_per_kind=max(1, config.subframes // 100),
        )

    def _overload_factor(self, cell_id: int, tick: int) -> float | None:
        """Active injected overload multiplier at ``tick``, else None."""
        window = self.config.overload_window
        factor: float | None = None
        for spec in self.overloads[cell_id]:
            if spec.subframe <= tick < spec.subframe + window:
                factor = max(factor or 1.0, spec.param)
        return factor

    # ------------------------------------------------------------- emission
    def emit(self, event: Event) -> None:
        self.engine(event)
        if self.trace_sink is not None:
            self.trace_sink(event)

    # ------------------------------------------------------------ terminals
    def _finish(
        self, cell: CellShard, gid: int, state: str, t: int, crc_ok: int = 0
    ) -> None:
        """Loop-thread terminal accounting + uniform serve terminal event."""
        cell.note_terminal(gid, state, crc_ok)
        self.emit(
            Event(
                EventKind.SUBFRAME_TERMINAL,
                t,
                -1,
                {
                    "subframe": gid,
                    "state": state,
                    "cell": cell.cell_id,
                    "cell_subframe": gid - cell.global_id(0),
                },
            )
        )
        if self.overload is not None:
            # Terminals are what advance the SLO measurement window, so
            # this is the exact cadence the burn-rate alerts re-evaluate.
            self.overload.maybe_update(t)
        self._capacity[cell.cell_id].set()

    def _on_runtime_terminal(
        self, cell: CellShard, gid: int, state: str, t: int
    ) -> None:
        if gid not in cell.users_of:
            return  # duplicate or pre-reconciled terminal
        self._finish(cell, gid, state, t)

    async def _complete_inline(
        self, cell: CellShard, gid: int, fut: asyncio.Future
    ) -> None:
        try:
            result, begin_ns, end_ns = await fut
        except Exception as exc:  # noqa: BLE001 - recorded and accounted
            now = monotonic_ns()
            self.ledger.resolve(gid, TerminalState.ABORTED, reason=repr(exc))
            self.errors.append(
                f"cell {cell.cell_id} subframe {gid}: {exc!r}"
            )
            self._finish(cell, gid, TerminalState.ABORTED.value, now)
            return
        crc_ok = sum(1 for u in result.user_results if u.crc_ok)
        state = (
            TerminalState.OK
            if crc_ok == len(result.user_results)
            else TerminalState.CRC_FAILED
        )
        self.ledger.resolve(gid, state, reason="serve-inline")
        self.telemetry.record_busy(end_ns, end_ns - begin_ns)
        if self.config.keep_results:
            self.results[gid] = result
        self._finish(cell, gid, state.value, end_ns, crc_ok)

    # ------------------------------------------------------------- producer
    async def _await_capacity(self, cell: CellShard) -> None:
        event = self._capacity[cell.cell_id]
        while cell.inflight >= cell.queue_depth:
            event.clear()
            if cell.inflight < cell.queue_depth:
                break
            try:
                await asyncio.wait_for(event.wait(), timeout=0.05)
            # repro-lint: disable=REP402 poll heartbeat; while re-checks inflight
            except asyncio.TimeoutError:
                continue

    def _shed_whole(
        self,
        cell: CellShard,
        tick: int,
        gid: int,
        users: int,
        reason: str,
        backpressure: int = 0,
    ) -> None:
        """Account one subframe refused before dispatch (ledger: shed).

        ``users`` is the tick's full offered count; whole-subframe sheds
        stage ``offered == shed`` so the counters fold at the terminal.
        """
        self.ledger.dispatch(gid, users)
        self.ledger.resolve(gid, TerminalState.SHED, reason=reason)
        cell.note_dispatch(
            tick,
            gid,
            0,
            queued=False,
            offered=users,
            shed=users,
            backpressure=backpressure,
        )
        self._finish(cell, gid, TerminalState.SHED.value, monotonic_ns())

    async def _run_cell(self, cell: CellShard) -> None:
        config = self.config
        delta_ns = ns_from_s(config.delta_s)
        loop = self.loop
        skip = self._skip[cell.cell_id]
        max_wall_ns = (
            ns_from_s(config.max_wall_s)
            if config.max_wall_s is not None
            else None
        )
        burst_count = getattr(cell.arrivals, "burst_count", None)
        # Pacing position among the ticks this segment actually runs: a
        # resumed segment paces its *remaining* ticks at DELTA instead of
        # idling through the already-resolved prefix.
        slot = 0
        for tick in range(config.subframes):
            if tick in skip:
                continue  # resolved by a previous segment's run
            scheduled = self._start_ns + slot * delta_ns
            slot += 1
            now = monotonic_ns()
            if config.pace and now < scheduled:
                await asyncio.sleep((scheduled - now) / 1e9)
                now = monotonic_ns()
            elif not config.pace:
                # Unpaced runs still yield so terminals/pumps interleave.
                await asyncio.sleep(0)
                now = monotonic_ns()
            if (
                max_wall_ns is not None
                and now - self._start_ns >= max_wall_ns
            ):
                self._max_wall_hit = True
                break
            lag_ns = max(0, now - scheduled) if config.pace else 0
            users = cell.arrivals.users_for(tick)
            gid = cell.global_id(tick)
            offered = len(users)
            self.emit(
                Event(
                    EventKind.ARRIVAL,
                    now,
                    -1,
                    {
                        "cell": cell.cell_id,
                        "subframe": gid,
                        "users": offered,
                        "lag_ns": lag_ns,
                        "queue_depth": cell.inflight,
                    },
                )
            )
            if not users:
                continue
            # While the adaptive controller is degraded, mMTC surge users
            # (the tail the burst process appends beyond the base rate)
            # are shed first — machine devices retry, humans do not.
            shed_surge = 0
            if (
                self.overload is not None
                and self.overload.degraded
                and burst_count is not None
            ):
                shed_surge = min(offered, int(burst_count(tick)))
                if shed_surge:
                    users = users[: offered - shed_surge]
                    self.emit(
                        Event(
                            EventKind.SHED,
                            now,
                            -1,
                            {
                                "cell": cell.cell_id,
                                "subframe": gid,
                                "users": shed_surge,
                                "surge": True,
                                "load_factor": self.overload.load_factor,
                            },
                        )
                    )
                    if not users:
                        self._shed_whole(cell, tick, gid, offered, "surge")
                        continue
            depth = cell.queue_depth
            if self.overload is not None:
                depth = self.overload.effective_queue_depth(depth)
            backpressured = 0
            if cell.inflight >= depth:
                backpressured = 1
                self.emit(
                    Event(
                        EventKind.BACKPRESSURE,
                        now,
                        -1,
                        {
                            "cell": cell.cell_id,
                            "subframe": gid,
                            "users": len(users),
                            "queue_depth": cell.inflight,
                            "threshold": depth,
                            "policy": config.backpressure,
                        },
                    )
                )
                if config.backpressure == "shed":
                    self._shed_whole(
                        cell,
                        tick,
                        gid,
                        offered,
                        "backpressure",
                        backpressure=1,
                    )
                    continue
                await self._await_capacity(cell)
                now = monotonic_ns()
            factor = self._overload_factor(cell.cell_id, tick)
            if self.overload is not None:
                # Injected overload and adaptive inflation compose; 1.0
                # collapses back to None so the static path stays exact.
                factor = (factor or 1.0) * self.overload.admission_factor()
                if factor == 1.0:
                    factor = None
            decision = cell.admit(users, load_factor=factor)
            if decision.shed:
                self.emit(
                    Event(
                        EventKind.SHED,
                        now,
                        -1,
                        {
                            "cell": cell.cell_id,
                            "subframe": gid,
                            "users": len(decision.shed),
                            "estimated_activity": decision.estimated_activity,
                            "budget_activity": decision.budget_activity,
                        },
                    )
                )
            admitted = list(decision.admitted)
            shed_users = shed_surge + len(decision.shed)
            if not admitted:
                self._shed_whole(
                    cell,
                    tick,
                    gid,
                    offered,
                    "admission",
                    backpressure=backpressured,
                )
                continue
            subframe = cell.make_subframe(tick, admitted)
            self.emit(
                Event(
                    EventKind.DISPATCH,
                    monotonic_ns(),
                    -1,
                    {
                        "subframe": gid,
                        "users": len(admitted),
                        "cell": cell.cell_id,
                    },
                )
            )
            cell.note_dispatch(
                tick,
                gid,
                len(admitted),
                offered=offered,
                shed=shed_users,
                backpressure=backpressured,
            )
            if cell.inline:
                self.ledger.dispatch(gid, len(admitted))
                fut = loop.run_in_executor(
                    self._executors[cell.cell_id], self._process_inline,
                    cell, subframe,
                )
                task = loop.create_task(self._complete_inline(cell, gid, fut))
                self._inline_tasks.add(task)
                task.add_done_callback(self._inline_tasks.discard)
            else:
                try:
                    cell.runtime.submit(subframe)
                except Exception as exc:  # noqa: BLE001 - accounted below
                    self.errors.append(
                        f"cell {cell.cell_id} submit {gid}: {exc!r}"
                    )
                    if not self.ledger.is_resolved(gid):
                        try:
                            self.ledger.resolve(
                                gid,
                                TerminalState.ABORTED,
                                reason="submit-failed",
                            )
                        except LedgerError:
                            # submit failed before its own dispatch call
                            self.ledger.dispatch(gid, len(admitted))
                            self.ledger.resolve(
                                gid,
                                TerminalState.ABORTED,
                                reason="submit-failed",
                            )
                    self._finish(
                        cell, gid, TerminalState.ABORTED.value, monotonic_ns()
                    )

    @staticmethod
    def _process_inline(
        cell: CellShard, subframe: Any
    ) -> tuple[SubframeResult, int, int]:
        begin = monotonic_ns()
        result = cell.process(subframe)
        return result, begin, monotonic_ns()

    # ----------------------------------------------------------------- pump
    async def _pump_runtimes(self) -> None:
        """Pump multiprocess replies from the loop thread.

        The MP runtime only surfaces worker replies (and observer events)
        during ``submit``/``drain`` calls; with a blocked or idle producer
        nothing would pump them, so this task does — always from the loop
        thread, because the runtime is not safe for concurrent callers.
        """
        mp_cells = [
            c for c in self.cells if c.backend == "multiprocess"
        ]
        if not mp_cells:
            return
        while not self._pump_stop:
            for cell in mp_cells:
                try:
                    cell.runtime._pump(0.0)
                except Exception as exc:  # noqa: BLE001 - recorded
                    self.errors.append(
                        f"cell {cell.cell_id} pump: {exc!r}"
                    )
            await asyncio.sleep(0.002)

    # ----------------------------------------------------------- checkpoint
    async def _checkpoint_loop(self) -> None:
        """Periodic crash-safe snapshots while producers run."""
        every = self.config.checkpoint_every_s
        while not self._ckpt_stop:
            await asyncio.sleep(every)
            if self._ckpt_stop:
                break
            self._write_checkpoint(completed=False)

    def _telemetry_shard(self) -> dict | None:
        """Mergeable telemetry cut for the checkpoint (best effort).

        Runtime observer threads mutate these dicts concurrently with the
        loop; the ledger-backed per-cell state maps are the *exact* part
        of a snapshot, so a rare mid-mutation pass here is retried once
        and then dropped rather than adding a lock to the hot path.
        """
        for _ in range(2):
            try:
                return {
                    "sketches": {
                        name: sketch.to_dict()
                        for name, sketch in self.telemetry.sketches.items()
                    },
                    "counters": dict(self.telemetry.counters),
                }
            except RuntimeError:
                # Dict mutated during iteration: an observer thread
                # raced the cut. Counted (report `checkpoint` section)
                # so a snapshot that persistently lacks telemetry is
                # visible, then retried once.
                self._ckpt_telemetry_misses += 1
                continue
        return None

    def _write_checkpoint(self, completed: bool) -> None:
        path = self.config.checkpoint_path
        if not path:
            return
        wall = self._resumed_wall_s + max(
            0.0, time.perf_counter() - self._wall_begin
        )
        snapshot = build_checkpoint(
            self.config,
            self.cells,
            self._telemetry_shard(),
            wall,
            self._segments,
            completed,
        )
        try:
            write_checkpoint(path, snapshot)
            self._ckpt_writes += 1
        except OSError as exc:
            self.errors.append(f"checkpoint write: {exc!r}")

    # ---------------------------------------------------------------- drain
    async def _drain(self) -> None:
        from ..sched.threaded import WorkerFailuresError

        runtime_cells = [c for c in self.cells if c.runtime is not None]
        for cell in runtime_cells:
            try:
                # Blocking in the loop thread is fine here: pacing is
                # over and terminal callbacks queue until drain returns.
                cell.runtime.drain(timeout=self.config.drain_timeout_s)
            except (WorkerFailuresError, RuntimeHung) as exc:
                self.errors.append(
                    f"cell {cell.cell_id} drain: {exc!r}"
                )
                try:
                    cell.runtime.abort()
                except Exception as abort_exc:  # noqa: BLE001 - recorded
                    self.errors.append(
                        f"cell {cell.cell_id} abort: {abort_exc!r}"
                    )
        # Let marshaled terminal callbacks land, bounded.
        for _ in range(2000):
            if all(c.inflight == 0 for c in runtime_cells):
                break
            await asyncio.sleep(0.001)
        for cell in runtime_cells:
            self._reconcile(cell)

    def _reconcile(self, cell: CellShard) -> None:
        """Force any still-inflight subframe to a ledger terminal."""
        for gid in sorted(cell.users_of):
            state = self.ledger.state_of(gid)
            if state is None:
                self.ledger.resolve(
                    gid, TerminalState.ABORTED, reason="serve-reconcile"
                )
                state = TerminalState.ABORTED
            self._finish(cell, gid, state.value, monotonic_ns())

    def _collect_runtime_results(self) -> None:
        for cell in self.cells:
            if cell.runtime is None:
                continue
            try:
                results = cell.runtime.collect_results()
            except Exception as exc:  # noqa: BLE001 - recorded
                self.errors.append(
                    f"cell {cell.cell_id} collect: {exc!r}"
                )
                continue
            for result in results:
                crc_ok = sum(1 for u in result.user_results if u.crc_ok)
                cell.crc_ok_users += crc_ok
                if self.config.keep_results:
                    self.results[result.subframe_index] = result

    # ------------------------------------------------------------------ run
    async def run(self) -> ServeResult:
        config = self.config
        self.loop = asyncio.get_running_loop()
        self._capacity = [asyncio.Event() for _ in self.cells]
        self._executors: list[ThreadPoolExecutor | None] = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"serve-cell{c.cell_id}"
            )
            if c.inline
            else None
            for c in self.cells
        ]
        wall_begin = time.perf_counter()
        self._wall_begin = wall_begin
        pump_task = None
        ckpt_task = None
        try:
            for cell in self.cells:
                cell.start()
            pump_task = self.loop.create_task(self._pump_runtimes())
            if config.checkpoint_path:
                ckpt_task = self.loop.create_task(self._checkpoint_loop())
            self._start_ns = monotonic_ns()
            await asyncio.gather(
                *(self._run_cell(cell) for cell in self.cells)
            )
            self._producers_done = True
            if self._inline_tasks:
                await asyncio.gather(*tuple(self._inline_tasks))
            self._pump_stop = True
            await pump_task
            pump_task = None
            await self._drain()
            self._collect_runtime_results()
        finally:
            self._pump_stop = True
            self._ckpt_stop = True
            if pump_task is not None:
                pump_task.cancel()
            if ckpt_task is not None:
                ckpt_task.cancel()
            # Final snapshot after every terminal has been reconciled —
            # a graceful max-wall stop leaves a resumable checkpoint.
            self._write_checkpoint(completed=self._completed)
            for cell in self.cells:
                try:
                    cell.stop()
                except Exception as exc:  # noqa: BLE001 - recorded
                    self.errors.append(
                        f"cell {cell.cell_id} stop: {exc!r}"
                    )
            for executor in self._executors:
                if executor is not None:
                    executor.shutdown(wait=True)
            if self.trace_sink is not None:
                self.trace_sink.close()
        wall_s = max(1e-9, time.perf_counter() - wall_begin)
        return ServeResult(
            report=self._report(wall_s),
            results=self.results,
            ledger=self.ledger,
            engine=self.engine,
            errors=self.errors,
        )

    # --------------------------------------------------------------- report
    @property
    def _completed(self) -> bool:
        """Every tick this run was asked to serve reached a terminal."""
        return self._producers_done and not self._max_wall_hit

    def _report(self, wall_s: float) -> dict:
        config = self.config
        # Terminal counts aggregate across *all* segments (the restored
        # checkpoint baseline plus this run); the ledger itself is
        # segment-local, so ``ledger_ok`` certifies exactly this run.
        counts = {"ok": 0, "crc_failed": 0, "shed": 0, "aborted": 0}
        for c in self.cells:
            for state, n in c.terminal_counts.items():
                counts[state] = counts.get(state, 0) + n
        dispatched = sum(c.dispatched for c in self.cells)
        wall_s = max(1e-9, self._resumed_wall_s + wall_s)
        offered = sum(c.offered_users for c in self.cells)
        admitted = sum(c.admitted_users for c in self.cells)
        shed = sum(c.shed_users for c in self.cells)
        served = sum(c.served_users for c in self.cells)
        crc_ok = sum(c.crc_ok_users for c in self.cells)
        backpressure = sum(c.backpressure_hits for c in self.cells)
        snapshot = self.telemetry.snapshot()
        shedding_engaged = bool(
            shed or backpressure or counts.get(TerminalState.SHED.value, 0)
        )
        report = {
            "schema": "repro-serve/1",
            "seed": config.seed,
            "cells": config.cells,
            "subframes_per_cell": config.subframes,
            "delta_s": config.delta_s,
            "arrival": config.arrival,
            "backend": config.backend,
            "workers": config.workers,
            "paced": config.pace,
            "backpressure": config.backpressure,
            "queue_depth": config.queue_depth,
            "wall_s": wall_s,
            "dispatched": dispatched,
            "terminal_counts": {k: v for k, v in sorted(counts.items())},
            "ledger_ok": bool(self.ledger.ok),
            "offered_users": offered,
            "admitted_users": admitted,
            "shed_users": shed,
            "backpressure_hits": backpressure,
            "served_users": served,
            "crc_ok_users": crc_ok,
            "throughput_sf_per_s": dispatched / wall_s,
            "users_per_hour": served / wall_s * 3600.0,
            "arrival_lag": snapshot["sketches"].get("arrival_lag", {}),
            "queue_depth_series": snapshot["series"].get("queue_depth", []),
            "per_cell": [cell.summary() for cell in self.cells],
            "faults": {
                "enabled": config.faults,
                "shedding_engaged": shedding_engaged,
                "faults_seen": snapshot["counters"].get("faults", 0),
            },
            "adaptive": (
                self.overload.summary()
                if self.overload is not None
                else {"enabled": False}
            ),
            "supervisor": self._supervisor_summary(),
            "checkpoint": {
                "enabled": bool(
                    config.checkpoint_path or config.resume_path
                ),
                "path": config.checkpoint_path,
                "resumed_from": config.resume_path,
                "segments": self._segments,
                "writes": self._ckpt_writes,
                "telemetry_misses": self._ckpt_telemetry_misses,
                "completed": self._completed,
            },
            "max_wall": {
                "limit_s": config.max_wall_s,
                "hit": self._max_wall_hit,
            },
            "slo": self.engine.slo_report(),
            "errors": list(self.errors),
        }
        if config.checkpoint_path or config.resume_path:
            # The per-subframe terminal-state map is the differential
            # witness: a kill-midway-and-resume run must reproduce the
            # uninterrupted run's map exactly at the same seed.
            report["terminal_states"] = {
                str(cell.global_id(tick)): state
                for cell in self.cells
                for tick, state in sorted(cell.resolved_ticks.items())
            }
        return report

    def _supervisor_summary(self) -> dict:
        supervisors = [
            supervisor
            for supervisor in (
                getattr(cell.runtime, "supervisor", None)
                for cell in self.cells
            )
            if supervisor is not None
        ]
        if not supervisors:
            return {"enabled": False}
        return {
            "enabled": True,
            "deaths": sum(s.deaths for s in supervisors),
            "respawns": sum(s.respawns for s in supervisors),
            "fail_stop": any(s.fail_stop for s in supervisors),
            "per_cell": [s.summary() for s in supervisors],
        }


async def serve_async(config: ServeConfig | None = None) -> ServeResult:
    """Run one serve session on the current event loop."""
    return await _Server(config or ServeConfig()).run()


def serve(config: ServeConfig | None = None) -> ServeResult:
    """Run one serve session to completion (blocking wrapper)."""
    return asyncio.run(serve_async(config or ServeConfig()))
