"""Crash-safe serve checkpoints (``repro-ckpt/1``) and resume validation.

A checkpoint is a consistent cut of a streaming serve run: for every
cell, the terminal state of each *resolved* local tick plus the user
counters folded at those terminals (:meth:`CellShard.checkpoint_record`),
the merged telemetry sketches, and the accumulated wall clock. Nothing
about in-flight subframes is stored — a killed run simply re-dispatches
the unresolved ticks on resume, so every subframe still reaches exactly
one terminal state across segments (the differential test compares the
kill-and-resume per-subframe state map against an uninterrupted run).

Arrival "RNG state" needs no snapshotting: the arrival processes are
stateless random-access generators keyed ``(seed, stream_id, tick)``
(see :mod:`repro.serve.arrivals`), so the resumed segment re-draws
byte-identical user lists for the remaining ticks as long as the serve
*configuration signature* matches — which :func:`validate_checkpoint`
enforces before any state is adopted.

Snapshots are written atomically (tmp + fsync + rename via
:mod:`repro.ioutil`): a crash mid-write leaves the previous checkpoint
intact, never a torn file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..ioutil import atomic_write_json

__all__ = [
    "CKPT_SCHEMA",
    "SIGNATURE_FIELDS",
    "build_checkpoint",
    "config_signature",
    "load_checkpoint",
    "validate_checkpoint",
    "write_checkpoint",
]

CKPT_SCHEMA = "repro-ckpt/1"

#: ServeConfig fields that must match between the checkpointing run and
#: the resuming run: together they determine the arrival draws, subframe
#: synthesis, admission decisions, and id space. Anything outside this
#: tuple (trace paths, checkpoint cadence, wall guards) may differ.
SIGNATURE_FIELDS = (
    "seed",
    "cells",
    "subframes",
    "delta_s",
    "arrival",
    "rate",
    "daily_users",
    "subframes_per_hour",
    "burst_size",
    "burst_period",
    "burst_window",
    "mix",
    "max_users",
    "backend",
    "workers",
    "queue_depth",
    "backpressure",
    "synthesize",
    "cell_seed_stride",
    "max_activity",
    "faults",
)


def config_signature(config: Any) -> dict:
    """The resume-compatibility signature of a ServeConfig."""
    return {field: getattr(config, field) for field in SIGNATURE_FIELDS}


def build_checkpoint(
    config: Any,
    cells: list[Any],
    telemetry: dict | None,
    wall_s: float,
    segments: int,
    completed: bool,
) -> dict:
    """Assemble one ``repro-ckpt/1`` snapshot (plain data)."""
    return {
        "schema": CKPT_SCHEMA,
        "signature": config_signature(config),
        "segments": segments,
        "completed": completed,
        "wall_s": wall_s,
        "cells": [cell.checkpoint_record() for cell in cells],
        "telemetry": telemetry,
    }


def write_checkpoint(path: str | Path, snapshot: dict) -> Path:
    """Atomically persist a snapshot built by :func:`build_checkpoint`."""
    return atomic_write_json(path, snapshot, indent=None, sort_keys=True)


def load_checkpoint(path: str | Path) -> dict:
    """Parse a snapshot file; rejects non-``repro-ckpt/1`` payloads.

    A torn or truncated file cannot occur through
    :func:`write_checkpoint` (tmp + rename), but a user can hand
    ``--resume`` any path — fail with the schema name rather than a
    ``KeyError`` three layers deeper.
    """
    import json

    try:
        snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"checkpoint {path} is not valid JSON: {exc}")
    if not isinstance(snapshot, dict) or snapshot.get("schema") != CKPT_SCHEMA:
        kind = (
            snapshot.get("schema") if isinstance(snapshot, dict) else snapshot
        )
        raise ValueError(
            f"checkpoint {path} has schema {kind!r}, expected {CKPT_SCHEMA!r}"
        )
    return snapshot


def validate_checkpoint(snapshot: dict, config: Any) -> list[str]:
    """Schema + signature check; returns problems (empty = resumable)."""
    problems: list[str] = []
    if snapshot.get("schema") != CKPT_SCHEMA:
        problems.append(
            f"checkpoint schema {snapshot.get('schema')!r} != {CKPT_SCHEMA!r}"
        )
        return problems
    signature = snapshot.get("signature")
    if not isinstance(signature, dict):
        problems.append("checkpoint has no config signature")
        return problems
    current = config_signature(config)
    for field in SIGNATURE_FIELDS:
        if signature.get(field) != current[field]:
            problems.append(
                f"config mismatch on {field!r}: checkpoint "
                f"{signature.get(field)!r} != current {current[field]!r}"
            )
    records = snapshot.get("cells")
    if not isinstance(records, list):
        problems.append("checkpoint has no cell records")
    else:
        if len(records) != config.cells:
            problems.append(
                f"checkpoint covers {len(records)} cell(s), "
                f"config has {config.cells}"
            )
        for record in records:
            if not isinstance(record, dict) or "states" not in record:
                problems.append("malformed cell record in checkpoint")
                break
    return problems
