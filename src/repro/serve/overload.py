"""SLO-driven adaptive admission: AIMD load shedding with hysteresis.

The static admission controller (:mod:`repro.faults.admission`) sheds
against a *fixed* activity budget; it cannot tell that the budget itself
is wrong — e.g. an mMTC synchronized surge ("Subframe resource
optimization for massive machine device access in LTE networks"-style)
pushing sustained deadline misses even though each individual subframe's
estimate fit. This module closes that loop: the
:class:`OverloadController` samples the PR 8
:class:`~repro.obs.slo.SLOEngine` burn-rate signals once per measurement
window and drives a serve-wide **load factor** in ``(0, 1]`` with the
classic AIMD rule:

* **multiplicative decrease** while any watched target burns at or above
  ``degrade_burn`` (entering this state emits one ``DEGRADE`` event);
* **additive increase** back toward 1.0, but only after ``hold_windows``
  *consecutive* windows at or below ``recover_burn`` — the hysteresis
  band ``(recover_burn, degrade_burn)`` counts for neither side, so a
  burn rate oscillating around either threshold cannot flap the
  controller (one ``RECOVER`` event fires when the factor reaches 1.0).

The serve loop applies the factor in two places: it *inflates* the
Eq. 3-4 activity estimate (``estimate / load_factor``) so admission
sheds earlier, and it *shrinks* each cell's effective backpressure
threshold (``queue_depth * load_factor``) so the door closes sooner.
mMTC surge users — the tail the burst process appends beyond the base
rate — are shed first while degraded, before admission even runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..obs.events import Event, EventKind
from ..obs.slo import SLOEngine

__all__ = ["AimdConfig", "AimdController", "OverloadController"]


@dataclass(frozen=True)
class AimdConfig:
    """AIMD shape: cut/recover rates and the hysteresis thresholds.

    ``degrade_burn`` must sit strictly above ``recover_burn``; the gap is
    the hysteresis band in which the controller holds its current state.
    """

    #: Multiplicative cut applied to the load factor per burning window.
    decrease: float = 0.5
    #: Additive recovery step per clean window (after the hold).
    increase: float = 0.1
    #: Lowest load factor the controller will cut to (keeps it > 0).
    floor: float = 0.05
    #: Burn rate at/above which a window counts as overloaded.
    degrade_burn: float = 2.0
    #: Burn rate at/below which a window counts as clean.
    recover_burn: float = 1.0
    #: Consecutive clean windows required before recovery starts.
    hold_windows: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if self.increase <= 0.0:
            raise ValueError("increase must be positive")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError("floor must be in (0, 1]")
        if self.recover_burn < 0.0:
            raise ValueError("recover_burn must be >= 0")
        if self.degrade_burn <= self.recover_burn:
            raise ValueError("degrade_burn must exceed recover_burn")
        if self.hold_windows < 1:
            raise ValueError("hold_windows must be >= 1")


class AimdController:
    """The pure AIMD state machine (one :meth:`observe` per window).

    ``load_factor`` starts at 1.0 and stays in ``[floor, 1.0]``; it only
    moves inside :meth:`observe`, so callers on a single thread need no
    lock. ``observe`` returns ``"degrade"`` when the controller *enters*
    the degraded state, ``"recover"`` when it fully leaves it, and
    ``None`` otherwise — sustained burn keeps cutting without re-emitting.
    """

    def __init__(self, config: AimdConfig | None = None) -> None:
        self.config = config if config is not None else AimdConfig()
        self.load_factor = 1.0
        self.degraded = False
        self.degrade_count = 0
        self.recover_count = 0
        self._clean_streak = 0

    def observe(self, burn: float) -> str | None:
        """Fold one window's burn rate in; returns the transition, if any."""
        if burn < 0.0:
            raise ValueError("burn rate must be >= 0")
        cfg = self.config
        if burn >= cfg.degrade_burn:
            self._clean_streak = 0
            entered = not self.degraded
            self.degraded = True
            self.load_factor = max(cfg.floor, self.load_factor * cfg.decrease)
            if entered:
                self.degrade_count += 1
                return "degrade"
            return None
        if not self.degraded:
            return None
        if burn <= cfg.recover_burn:
            self._clean_streak += 1
            if self._clean_streak >= cfg.hold_windows:
                self.load_factor = min(1.0, self.load_factor + cfg.increase)
                if self.load_factor >= 1.0:
                    self.degraded = False
                    self._clean_streak = 0
                    self.recover_count += 1
                    return "recover"
        else:
            # Inside the hysteresis band: neither clean nor burning.
            # Resetting the streak is what prevents boundary flapping.
            self._clean_streak = 0
        return None


class OverloadController:
    """Bridge from :class:`SLOEngine` burn signals to serve admission.

    Driven from the serve loop thread only (one :meth:`maybe_update` per
    ``SUBFRAME_TERMINAL``); it samples the engine once per *completed
    measurement window* — the same cadence the engine's own alerting
    evaluates on — takes the worst burn across the watched targets, and
    feeds it to the AIMD state machine. Transitions are emitted as
    ``DEGRADE``/``RECOVER`` events through ``sink``.
    """

    #: SLO targets whose burn the controller reacts to by default. The
    #: latency/power targets are deliberately excluded: latency burn is
    #: what the *miss-rate* target already confirms over a window, and
    #: power is a budget, not an overload signal.
    DEFAULT_TARGETS = ("miss-rate", "shed-rate")

    def __init__(
        self,
        engine: SLOEngine,
        config: AimdConfig | None = None,
        targets: tuple[str, ...] | None = None,
        sink: Callable[[Event], None] | None = None,
    ) -> None:
        self.engine = engine
        self.aimd = AimdController(config)
        self.targets = tuple(
            targets if targets is not None else self.DEFAULT_TARGETS
        )
        self.sink = sink
        self.transitions: list[dict[str, Any]] = []
        self._last_window: int | None = None

    # ------------------------------------------------------------ signals
    @property
    def load_factor(self) -> float:
        return self.aimd.load_factor

    @property
    def degraded(self) -> bool:
        return self.aimd.degraded

    def admission_factor(self) -> float:
        """Multiplier for the Eq. 3-4 activity estimate (>= 1.0).

        Dividing by the load factor inflates the estimate, so a degraded
        controller makes admission strictly more conservative.
        """
        return 1.0 / self.aimd.load_factor

    def effective_queue_depth(self, queue_depth: int) -> int:
        """Per-cell backpressure threshold under the current factor."""
        if not self.aimd.degraded:
            return queue_depth
        return max(1, int(round(queue_depth * self.aimd.load_factor)))

    # ------------------------------------------------------------- update
    def _worst_burn(self) -> tuple[float, str]:
        burn, name = 0.0, ""
        rates = self.engine.burn_rates()
        for target in self.targets:
            rate = rates.get(target)
            if rate is not None and rate >= burn:
                burn, name = rate, target
        return burn, name

    def maybe_update(self, t: float) -> str | None:
        """Re-observe if the measurement window advanced since last call."""
        window = self.engine.window_index
        if window is None or window == self._last_window:
            return None
        self._last_window = window
        burn, slo_name = self._worst_burn()
        action = self.aimd.observe(burn)
        if action is None:
            return None
        payload = {
            "load_factor": self.aimd.load_factor,
            "burn": burn,
            "slo": slo_name,
        }
        self.transitions.append({"action": action, "t": t, **payload})
        if self.sink is not None:
            if action == "degrade":
                self.sink(Event(EventKind.DEGRADE, t, -1, payload))
            else:
                self.sink(Event(EventKind.RECOVER, t, -1, payload))
        return action

    # ------------------------------------------------------------- report
    def summary(self) -> dict:
        """Report section (``repro-serve/1`` ``adaptive`` key)."""
        return {
            "enabled": True,
            "load_factor": self.aimd.load_factor,
            "degraded": self.aimd.degraded,
            "degrades": self.aimd.degrade_count,
            "recovers": self.aimd.recover_count,
            "targets": list(self.targets),
            "transitions": list(self.transitions),
        }
