"""Supervised worker respawn: bounded self-healing for the process pool.

Real eNodeB stacks run as long-lived supervised services (srsLTE-style):
a dead signal-processing worker is restarted, not taken as a reason to
fail the whole base station. The multiprocess runtime's historical
policy is fail-stop — an unexpected worker death aborts all pending work
— which is the right *default* for reproducible chaos campaigns but the
wrong operational posture for ``repro serve``. This module provides the
opt-in alternative:

* :class:`RespawnPolicy` — the knobs: exponential backoff between a
  worker slot's consecutive deaths, a **restart budget per rolling
  window**, and an optional per-worker heartbeat timeout (a worker busy
  on one task longer than the timeout is presumed wedged and killed, so
  the standard death path requeues its work and respawns the slot);
* :class:`WorkerSupervisor` — the bookkeeping state machine the runtime
  consults on every death: *when* (if ever) each dead slot may be
  respawned. When the rolling budget is exhausted the supervisor trips
  **crash-loop detection** and permanently degrades to fail-stop — no
  further respawns are scheduled and the runtime reverts to its
  historical abort semantics.

The supervisor never touches processes itself; the runtime owns spawn
and reap. All methods are called from the runtime's single pump thread
(the serve loop task or the draining caller), so no lock is needed.
Ledger accounting is unaffected either way: orphaned shape groups are
requeued through the runtime's existing bounded-retry path and every
subframe still resolves exactly once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..faults.watchdog import ns_from_s

__all__ = ["RespawnPolicy", "WorkerSupervisor"]


@dataclass(frozen=True)
class RespawnPolicy:
    """Respawn budget and backoff shape for one worker pool."""

    #: Respawns allowed per rolling ``window_s`` before crash-loop
    #: detection trips and the pool degrades to fail-stop.
    max_respawns: int = 8
    #: Rolling budget window in seconds.
    window_s: float = 30.0
    #: Backoff before the first respawn of a slot (seconds); doubles per
    #: consecutive death of the same slot.
    backoff_initial_s: float = 0.05
    #: Backoff ceiling (seconds).
    backoff_max_s: float = 2.0
    #: Kill a worker busy on a single task longer than this (seconds);
    #: ``None`` disables heartbeat-based hang detection.
    heartbeat_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_respawns < 1:
            raise ValueError("max_respawns must be >= 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.backoff_initial_s <= 0:
            raise ValueError("backoff_initial_s must be positive")
        if self.backoff_max_s < self.backoff_initial_s:
            raise ValueError("backoff_max_s must be >= backoff_initial_s")
        if (
            self.heartbeat_timeout_s is not None
            and self.heartbeat_timeout_s <= 0
        ):
            raise ValueError("heartbeat_timeout_s must be positive")


class WorkerSupervisor:
    """Decides when each dead worker slot may be respawned.

    One instance supervises one pool. The runtime calls
    :meth:`record_death` when a slot dies, polls :meth:`respawn_due`
    during pumping, and confirms with :meth:`note_respawn` once the
    replacement process is up. :meth:`note_progress` resets a slot's
    consecutive-death backoff after it completes real work, so a slot
    that crashes, heals, and crashes again much later starts from the
    initial backoff rather than the accumulated one.
    """

    def __init__(self, policy: RespawnPolicy, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.policy = policy
        self.num_workers = num_workers
        self.deaths = 0
        self.respawns = 0
        #: Crash-loop detection tripped: permanently fail-stop.
        self.fail_stop = False
        self._consecutive = [0] * num_workers
        self._due_ns: dict[int, int] = {}
        self._backoff_ns: dict[int, int] = {}
        self._window: deque[int] = deque()

    # ------------------------------------------------------------- budget
    def _budget_left(self, now_ns: int) -> bool:
        horizon = now_ns - ns_from_s(self.policy.window_s)
        window = self._window
        while window and window[0] <= horizon:
            window.popleft()
        return len(window) < self.policy.max_respawns

    # ------------------------------------------------------------- events
    def record_death(self, worker_id: int, now_ns: int) -> int | None:
        """Record one death; returns the scheduled respawn time (ns).

        Returns ``None`` when no respawn will happen — the rolling budget
        is exhausted (crash loop, now permanently fail-stop) or it
        already was.
        """
        self.deaths += 1
        self._consecutive[worker_id] += 1
        if self.fail_stop:
            return None
        if not self._budget_left(now_ns):
            # Budget exhausted inside the window: the pool is crash
            # looping. Degrade to fail-stop for the rest of the run —
            # a supervisor that keeps feeding workers to a hard fault
            # just burns the machine.
            self.fail_stop = True
            self._due_ns.clear()
            return None
        exponent = max(0, self._consecutive[worker_id] - 1)
        backoff_ns = min(
            ns_from_s(self.policy.backoff_initial_s) << exponent
            if exponent < 60
            else ns_from_s(self.policy.backoff_max_s),
            ns_from_s(self.policy.backoff_max_s),
        )
        self._backoff_ns[worker_id] = backoff_ns
        due = now_ns + backoff_ns
        self._due_ns[worker_id] = due
        return due

    def respawn_due(self, worker_id: int) -> int | None:
        """Scheduled respawn time for a dead slot, or ``None``."""
        return self._due_ns.get(worker_id)

    def note_respawn(self, worker_id: int, now_ns: int) -> None:
        """The replacement process for ``worker_id`` is up."""
        self._due_ns.pop(worker_id, None)
        self._window.append(now_ns)
        self.respawns += 1

    def note_progress(self, worker_id: int) -> None:
        """A slot completed real work: reset its consecutive-death run."""
        self._consecutive[worker_id] = 0

    # ------------------------------------------------------------ queries
    @property
    def pending(self) -> bool:
        """True while any dead slot still has a scheduled respawn."""
        return bool(self._due_ns)

    @property
    def heartbeat_timeout_ns(self) -> int | None:
        timeout = self.policy.heartbeat_timeout_s
        return ns_from_s(timeout) if timeout is not None else None

    def last_backoff_s(self, worker_id: int) -> float:
        """Backoff that preceded the slot's most recent respawn (s)."""
        return self._backoff_ns.get(worker_id, 0) / 1e9

    def summary(self) -> dict:
        """Report section (aggregated per cell by the serve loop)."""
        return {
            "deaths": self.deaths,
            "respawns": self.respawns,
            "fail_stop": self.fail_stop,
            "max_respawns": self.policy.max_respawns,
            "window_s": self.policy.window_s,
        }
