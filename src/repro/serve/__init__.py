"""Streaming base-station service mode (``repro serve``).

The batch drivers answer "how fast can the receiver chew through N
subframes"; this package answers the operational question the paper's
DELTA cadence poses: does the receiver *keep up* when subframes arrive
every 5 ms across many cells, and does overload degrade into shedding
instead of deadline collapse? See ``docs/serving.md``.

* :mod:`repro.serve.arrivals` — seeded offered-load processes
  (constant-rate, Poisson, diurnal, mMTC synchronized bursts);
* :mod:`repro.serve.cell` — per-cell shards: arrival stream, Eq. 3-4
  admission, bounded queue, and an execution backend;
* :mod:`repro.serve.loop` — the asyncio ingest loop, backpressure, and
  ledger-first accounting;
* :mod:`repro.serve.report` — the ``repro-serve/1`` report schema;
* :mod:`repro.serve.overload` — SLO-driven adaptive admission (AIMD
  with hysteresis, ``--adaptive``);
* :mod:`repro.serve.supervisor` — bounded worker-respawn policy for the
  multiprocess backend (``--respawn``, see ``docs/robustness.md``);
* :mod:`repro.serve.checkpoint` — crash-safe ``repro-ckpt/1`` snapshots
  and ``--resume`` validation.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ConstantRateArrivals,
    DiurnalArrivals,
    MmtcBurstArrivals,
    PoissonArrivals,
    make_arrivals,
)
from .cell import CELL_STRIDE, CellShard, offset_plan
from .checkpoint import (
    CKPT_SCHEMA,
    load_checkpoint,
    validate_checkpoint,
    write_checkpoint,
)
from .loop import (
    SERVE_BACKENDS,
    ServeConfig,
    ServeResult,
    serve,
    serve_async,
)
from .overload import AimdConfig, AimdController, OverloadController
from .report import SERVE_SCHEMA, validate_serve_report
from .supervisor import RespawnPolicy, WorkerSupervisor

__all__ = [
    "AimdConfig",
    "AimdController",
    "ARRIVAL_KINDS",
    "CELL_STRIDE",
    "CKPT_SCHEMA",
    "CellShard",
    "ConstantRateArrivals",
    "DiurnalArrivals",
    "MmtcBurstArrivals",
    "OverloadController",
    "PoissonArrivals",
    "RespawnPolicy",
    "SERVE_BACKENDS",
    "SERVE_SCHEMA",
    "ServeConfig",
    "ServeResult",
    "WorkerSupervisor",
    "load_checkpoint",
    "make_arrivals",
    "offset_plan",
    "serve",
    "serve_async",
    "validate_checkpoint",
    "validate_serve_report",
    "write_checkpoint",
]
