"""Streaming base-station service mode (``repro serve``).

The batch drivers answer "how fast can the receiver chew through N
subframes"; this package answers the operational question the paper's
DELTA cadence poses: does the receiver *keep up* when subframes arrive
every 5 ms across many cells, and does overload degrade into shedding
instead of deadline collapse? See ``docs/serving.md``.

* :mod:`repro.serve.arrivals` — seeded offered-load processes
  (constant-rate, Poisson, diurnal, mMTC synchronized bursts);
* :mod:`repro.serve.cell` — per-cell shards: arrival stream, Eq. 3-4
  admission, bounded queue, and an execution backend;
* :mod:`repro.serve.loop` — the asyncio ingest loop, backpressure, and
  ledger-first accounting;
* :mod:`repro.serve.report` — the ``repro-serve/1`` report schema.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ConstantRateArrivals,
    DiurnalArrivals,
    MmtcBurstArrivals,
    PoissonArrivals,
    make_arrivals,
)
from .cell import CELL_STRIDE, CellShard, offset_plan
from .loop import (
    SERVE_BACKENDS,
    ServeConfig,
    ServeResult,
    serve,
    serve_async,
)
from .report import SERVE_SCHEMA, validate_serve_report

__all__ = [
    "ARRIVAL_KINDS",
    "CELL_STRIDE",
    "CellShard",
    "ConstantRateArrivals",
    "DiurnalArrivals",
    "MmtcBurstArrivals",
    "PoissonArrivals",
    "SERVE_BACKENDS",
    "SERVE_SCHEMA",
    "ServeConfig",
    "ServeResult",
    "make_arrivals",
    "offset_plan",
    "serve",
    "serve_async",
    "validate_serve_report",
]
