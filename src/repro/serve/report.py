"""Schema validation for the ``repro-serve/1`` report.

``repro serve --json`` emits one report per run; CI's serve-smoke job
and the soak tests validate it with :func:`validate_serve_report`
rather than spot-checking ad-hoc keys, so schema drift fails loudly in
one place. Validation is dependency-free (no jsonschema): a flat
required-key/type table plus the cross-field accounting identities the
ledger guarantees (``dispatched == sum(terminal_counts)``,
``offered == admitted + shed`` per run).
"""

from __future__ import annotations

from typing import Any

__all__ = ["SERVE_SCHEMA", "validate_serve_report"]

#: Required top-level report fields and their accepted types.
SERVE_SCHEMA: dict[str, tuple[type, ...]] = {
    "schema": (str,),
    "seed": (int,),
    "cells": (int,),
    "subframes_per_cell": (int,),
    "delta_s": (float, int),
    "arrival": (str,),
    "backend": (str,),
    "workers": (int,),
    "paced": (bool,),
    "backpressure": (str,),
    "queue_depth": (int,),
    "wall_s": (float, int),
    "dispatched": (int,),
    "terminal_counts": (dict,),
    "ledger_ok": (bool,),
    "offered_users": (int,),
    "admitted_users": (int,),
    "shed_users": (int,),
    "backpressure_hits": (int,),
    "served_users": (int,),
    "crc_ok_users": (int,),
    "throughput_sf_per_s": (float, int),
    "users_per_hour": (float, int),
    "arrival_lag": (dict,),
    "queue_depth_series": (list,),
    "per_cell": (list,),
    "faults": (dict,),
    "adaptive": (dict,),
    "supervisor": (dict,),
    "checkpoint": (dict,),
    "max_wall": (dict,),
    "slo": (dict,),
    "errors": (list,),
}

#: Required per-cell summary fields.
_CELL_FIELDS = (
    "cell",
    "backend",
    "dispatched",
    "terminal_counts",
    "offered_users",
    "admitted_users",
    "shed_users",
    "served_users",
    "crc_ok_users",
    "backpressure_hits",
    "max_queue_depth",
    "monotone_ids",
    "arrivals",
)

#: Every terminal-state histogram must carry exactly these keys.
_TERMINAL_KEYS = frozenset({"ok", "crc_failed", "shed", "aborted"})


def validate_serve_report(report: Any) -> list[str]:
    """Return a list of schema violations (empty = valid)."""
    problems: list[str] = []
    if not isinstance(report, dict):
        return [f"report is {type(report).__name__}, expected dict"]
    for key, types in SERVE_SCHEMA.items():
        if key not in report:
            problems.append(f"missing field {key!r}")
        elif not isinstance(report[key], types):
            problems.append(
                f"field {key!r} is {type(report[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if problems:
        return problems
    if report["schema"] != "repro-serve/1":
        problems.append(f"unknown schema {report['schema']!r}")
    counts = report["terminal_counts"]
    if set(counts) != _TERMINAL_KEYS:
        problems.append(
            f"terminal_counts keys {sorted(counts)} != "
            f"{sorted(_TERMINAL_KEYS)}"
        )
    elif report["dispatched"] != sum(counts.values()):
        problems.append(
            f"dispatched {report['dispatched']} != terminal sum "
            f"{sum(counts.values())}"
        )
    if report["offered_users"] < report["admitted_users"]:
        problems.append("admitted_users exceeds offered_users")
    if report["served_users"] < report["crc_ok_users"]:
        problems.append("crc_ok_users exceeds served_users")
    if len(report["per_cell"]) != report["cells"]:
        problems.append(
            f"per_cell has {len(report['per_cell'])} entries for "
            f"{report['cells']} cells"
        )
    for i, cell in enumerate(report["per_cell"]):
        if not isinstance(cell, dict):
            problems.append(f"per_cell[{i}] is not a dict")
            continue
        for field in _CELL_FIELDS:
            if field not in cell:
                problems.append(f"per_cell[{i}] missing {field!r}")
    slo = report["slo"]
    if slo.get("schema") != "repro-slo/1":
        problems.append(f"slo schema {slo.get('schema')!r} != 'repro-slo/1'")
    faults = report["faults"]
    for field in ("enabled", "shedding_engaged"):
        if field not in faults:
            problems.append(f"faults missing {field!r}")
    for section in ("adaptive", "supervisor", "checkpoint"):
        if "enabled" not in report[section]:
            problems.append(f"{section} missing 'enabled'")
    if "hit" not in report["max_wall"]:
        problems.append("max_wall missing 'hit'")
    states = report.get("terminal_states")
    if states is not None:
        if not isinstance(states, dict):
            problems.append("terminal_states is not a dict")
        elif report["checkpoint"].get("completed") and len(states) > report[
            "dispatched"
        ]:
            problems.append(
                f"terminal_states has {len(states)} entries but only "
                f"{report['dispatched']} subframes dispatched"
            )
    return problems
