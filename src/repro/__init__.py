"""repro — reproduction of "An LTE Uplink Receiver PHY Benchmark and
Subframe-Based Power Management" (Själander et al., ISPASS 2012).

Subpackages
-----------
``repro.phy``
    LTE uplink PHY signal-processing substrate (modulation, DMRS, channel
    estimation, MMSE combining, SC-FDMA, CRC, optional turbo codec) plus a
    transmitter + MIMO channel to synthesize input data.
``repro.uplink``
    The benchmark itself: user/subframe structures, the paper's randomized
    input parameter model, the serial reference implementation, and the
    task decomposition of Fig. 5.
``repro.sched``
    Work-stealing runtime (functional, thread-based).
``repro.sim``
    Discrete-event TILEPro64-like multicore simulator with a calibrated
    per-kernel cycle cost model (substitute for the paper's hardware).
``repro.power``
    Power model (base + per-core dynamic + thermal leakage), subframe
    workload estimator, and the NONAP/IDLE/NAP/NAP+IDLE/PowerGating
    resource-management policies.
``repro.experiments``
    Drivers that regenerate every figure and table of the evaluation.
``repro.obs``
    Structured event tracing, scheduler metrics, and runtime invariant
    checking over both execution backends (``docs/observability.md``).
"""

__version__ = "1.0.0"
