"""Serial-vs-parallel verification (Section IV-D).

"The serial version processes a predetermined sequence of subframes,
recording and storing the results from each subframe. By processing the
same sequence of subframes in the parallel versions of the benchmark,
results from each subframe can be compared against the serial version's
data."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .serial import SubframeResult

__all__ = ["VerificationReport", "verify_against_serial"]


@dataclass
class VerificationReport:
    """Outcome of comparing a parallel run against the serial reference."""

    subframes_compared: int
    mismatched_subframes: list[int] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatched_subframes

    def __str__(self) -> str:
        if self.passed:
            return f"verification PASSED over {self.subframes_compared} subframes"
        return (
            f"verification FAILED: {len(self.mismatched_subframes)} of "
            f"{self.subframes_compared} subframes mismatched "
            f"(first: {self.mismatched_subframes[0]})"
        )


def verify_against_serial(
    serial_results: list[SubframeResult],
    parallel_results: list[SubframeResult],
) -> VerificationReport:
    """Compare two runs of the same subframe sequence bit-for-bit.

    Results are matched by subframe index; within a subframe, user results
    are matched by user id, so the parallel run's completion order does not
    matter.
    """
    by_index = {r.subframe_index: r for r in parallel_results}
    if len(by_index) != len(parallel_results):
        raise ValueError("parallel results contain duplicate subframe indices")
    mismatched = []
    for reference in serial_results:
        candidate = by_index.get(reference.subframe_index)
        if candidate is None or not reference.equals(candidate):
            mismatched.append(reference.subframe_index)
    return VerificationReport(
        subframes_compared=len(serial_results), mismatched_subframes=mismatched
    )
