"""Serial-vs-parallel verification (Section IV-D).

"The serial version processes a predetermined sequence of subframes,
recording and storing the results from each subframe. By processing the
same sequence of subframes in the parallel versions of the benchmark,
results from each subframe can be compared against the serial version's
data."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .serial import SubframeResult

__all__ = ["VerificationReport", "verify_against_serial"]


@dataclass
class VerificationReport:
    """Outcome of comparing a parallel run against the serial reference.

    ``mismatched_subframes`` is the pass/fail signal (it includes the
    missing ones); ``missing_subframes`` and ``crc_mismatches`` break the
    failure down for diagnosis — a CRC flag that differs between two runs
    of the same input pinpoints payload corruption (or a scheduler bug
    handing a user the wrong data) without diffing whole payloads.
    """

    subframes_compared: int
    mismatched_subframes: list[int] = field(default_factory=list)
    #: Subframes present in the reference but absent from the candidate.
    missing_subframes: list[int] = field(default_factory=list)
    #: ``(subframe_index, user_id)`` pairs whose CRC flags disagree.
    crc_mismatches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatched_subframes

    def __str__(self) -> str:
        if self.passed:
            return f"verification PASSED over {self.subframes_compared} subframes"
        detail = (
            f"verification FAILED: {len(self.mismatched_subframes)} of "
            f"{self.subframes_compared} subframes mismatched "
            f"(first: {self.mismatched_subframes[0]})"
        )
        if self.missing_subframes:
            detail += f"; missing: {self.missing_subframes}"
        if self.crc_mismatches:
            pairs = ", ".join(
                f"sf{sf}/u{uid}" for sf, uid in self.crc_mismatches[:8]
            )
            detail += (
                f"; CRC flags disagree for {len(self.crc_mismatches)} "
                f"user(s): {pairs}"
            )
        return detail


def _crc_diff(
    reference: SubframeResult, candidate: SubframeResult
) -> list[tuple[int, int]]:
    """(subframe, user) pairs whose CRC verdicts differ between the runs."""
    theirs = {u.user_id: bool(u.crc_ok) for u in candidate.user_results}
    return [
        (reference.subframe_index, u.user_id)
        for u in reference.user_results
        if u.user_id in theirs and bool(u.crc_ok) != theirs[u.user_id]
    ]


def verify_against_serial(
    serial_results: list[SubframeResult],
    parallel_results: list[SubframeResult],
) -> VerificationReport:
    """Compare two runs of the same subframe sequence bit-for-bit.

    Results are matched by subframe index; within a subframe, user results
    are matched by user id, so the parallel run's completion order does not
    matter.
    """
    by_index = {r.subframe_index: r for r in parallel_results}
    if len(by_index) != len(parallel_results):
        raise ValueError("parallel results contain duplicate subframe indices")
    report = VerificationReport(subframes_compared=len(serial_results))
    for reference in serial_results:
        candidate = by_index.get(reference.subframe_index)
        if candidate is None:
            report.mismatched_subframes.append(reference.subframe_index)
            report.missing_subframes.append(reference.subframe_index)
        elif not reference.equals(candidate):
            report.mismatched_subframes.append(reference.subframe_index)
            report.crc_mismatches.extend(_crc_diff(reference, candidate))
    return report
