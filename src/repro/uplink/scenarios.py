"""Usage scenarios built on the randomized parameter model.

The paper motivates power management with the diurnal load cycle
(Section I: "periods of peak loads (rush hours) and periods of low loads
(late nights)") and notes that "a typical workload for base stations is
25 %" with "long periods where the load is much lower (e.g., nights)"
(Sections VI-B, VIII). These scenario models make those workloads
runnable:

* :class:`ScaledLoadModel` — the evaluation workload with its PRB budget
  scaled to hit a target average load (e.g. the 25 % typical case).
* :class:`DiurnalParameterModel` — a compressed 24-hour cell: an
  hour-by-hour load envelope modulates the number of schedulable PRBs and
  users, with rush-hour peaks and a night trough.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.params import MAX_PRB, MAX_USERS_PER_SUBFRAME, MIN_PRB_PER_USER
from .parameter_model import RandomizedParameterModel
from .user import UserParameters

__all__ = ["ScaledLoadModel", "DiurnalParameterModel", "DEFAULT_DIURNAL_PROFILE"]


class ScaledLoadModel(RandomizedParameterModel):
    """The paper's randomized workload at a scaled PRB budget.

    ``load_fraction=0.5`` reproduces the paper's ~50 % evaluation;
    ``0.25`` approximates the "typical" base-station load.
    """

    def __init__(
        self,
        load_fraction: float,
        total_subframes: int = 4_000,
        seed: int = 0,
    ) -> None:
        if not 0.0 < load_fraction <= 1.0:
            raise ValueError("load_fraction must be in (0, 1]")
        # The 50%-average evaluation uses the full 200-PRB budget, so the
        # budget scales as 2x the target load fraction (capped at MAX_PRB).
        budget = min(MAX_PRB, max(MIN_PRB_PER_USER, int(round(2 * load_fraction * MAX_PRB))))
        budget -= budget % 2
        super().__init__(
            total_subframes=total_subframes,
            seed=seed,
            max_prb=max(MIN_PRB_PER_USER, budget),
        )
        self.load_fraction = load_fraction


#: Relative load per hour of day, 0..23: a night trough, a morning ramp,
#: a lunchtime plateau, and an evening rush-hour peak.
DEFAULT_DIURNAL_PROFILE = (
    0.10, 0.07, 0.05, 0.05, 0.06, 0.10,  # 00-05: night
    0.20, 0.40, 0.65, 0.70, 0.65, 0.70,  # 06-11: morning ramp
    0.75, 0.70, 0.60, 0.60, 0.70, 0.85,  # 12-17: day / commute build-up
    1.00, 0.95, 0.80, 0.60, 0.35, 0.18,  # 18-23: evening peak and wind-down
)


@dataclass
class DiurnalParameterModel:
    """A compressed 24-hour cell load.

    The full day is mapped onto ``total_subframes``; within each "hour"
    the randomized model runs with its PRB budget and user cap scaled by
    the profile. Layers/modulation probability follows the load as well
    (busy hours carry more MIMO/high-order traffic), using the underlying
    model's probability machinery.
    """

    total_subframes: int = 24_000
    seed: int = 0
    profile: tuple = DEFAULT_DIURNAL_PROFILE

    def __post_init__(self) -> None:
        if self.total_subframes < len(self.profile):
            raise ValueError("total_subframes must cover the profile")
        if not self.profile or min(self.profile) <= 0 or max(self.profile) > 1:
            raise ValueError("profile values must be in (0, 1]")
        self._subframes_per_hour = self.total_subframes // len(self.profile)

    def hour_of(self, subframe_index: int) -> int:
        if subframe_index < 0:
            raise ValueError("subframe_index must be >= 0")
        return (subframe_index // self._subframes_per_hour) % len(self.profile)

    def load_at(self, subframe_index: int) -> float:
        return self.profile[self.hour_of(subframe_index)]

    def uplink_parameters(self, subframe_index: int) -> list[UserParameters]:
        load = self.load_at(subframe_index)
        budget = max(MIN_PRB_PER_USER, int(round(load * MAX_PRB)))
        budget -= budget % 2
        users_cap = max(1, int(round(load * MAX_USERS_PER_SUBFRAME)))
        inner = RandomizedParameterModel(
            total_subframes=2,
            seed=self.seed,
            max_prb=max(MIN_PRB_PER_USER, budget),
            max_users=users_cap,
        )
        rng = inner._rng_for(subframe_index)
        # Busy hours carry heavier per-user traffic (layers/modulation).
        prob = max(0.006, min(1.0, load))
        users: list[UserParameters] = []
        remaining = inner.max_prb
        while len(users) < users_cap and remaining >= MIN_PRB_PER_USER:
            user_prb = inner.max_prb * rng.random()
            distribution = rng.random()
            if distribution < 0.4:
                user_prb /= 8
            elif distribution < 0.6:
                user_prb /= 4
            elif distribution < 0.9:
                user_prb /= 2
            num_prb = int(user_prb)
            num_prb -= num_prb % 2
            num_prb = max(MIN_PRB_PER_USER, min(num_prb, remaining))
            remaining -= num_prb
            users.append(
                UserParameters(
                    user_id=len(users),
                    num_prb=num_prb,
                    layers=RandomizedParameterModel._draw_layers(rng, prob),
                    modulation=RandomizedParameterModel._draw_modulation(rng, prob),
                )
            )
        return users
