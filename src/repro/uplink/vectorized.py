"""Batched vectorized backend: whole subframes through stacked kernels.

The serial backend (:mod:`repro.uplink.serial`) walks the Fig. 5 task
graph one small NumPy call at a time. This backend keeps the *chain*
identical but fuses the task axes: for every group of users that share an
allocation shape ``(subcarriers, layers, modulation)``, all of the
group's (user, slot, antenna, layer) channel-estimation tasks run as one
:func:`repro.phy.batched.batched_chest` call, every per-subcarrier MMSE
system of the whole group solves in one ``np.linalg.solve``, all
(user, symbol, layer) combining tasks run as one einsum + one IFFT, and
the groups' soft demaps run as one stacked call.

Results are **bit-exact** with the serial reference (the batched NumPy
kernels process rows independently with the same primitives), which the
differential suite in ``tests/differential`` enforces across the full
seeded scenario matrix.

The module is deterministic-scope clean: it never reads the host clock.
Callers that want per-kernel wall-clock attribution (``repro bench``)
pass a ``stage_timer`` context-manager factory instead.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..phy.batched import (
    batched_chest,
    batched_combine_symbols,
    batched_combiner_weights,
    batched_soft_demap,
)
from ..phy.chain import UserResult
from ..phy.chest import ChestConfig
from ..phy.crc import CRC24A, crc_check
from ..phy.dtypes import REAL_DTYPE, ensure_complex
from ..phy.params import (
    DATA_SYMBOLS_PER_SLOT,
    DATA_SYMBOLS_PER_SUBFRAME,
    REFERENCE_SYMBOL_INDEX,
    SLOTS_PER_SUBFRAME,
    SYMBOLS_PER_SLOT,
)
from ..phy.scrambling import descramble_llrs
from ..phy.transmitter import UserAllocation, data_symbol_indices
from ..phy.turbo import PassThroughTurbo
from .serial import SubframeResult
from .subframe import SubframeInput, UserSlice

__all__ = [
    "group_slices_by_shape",
    "process_group",
    "process_user_vectorized",
    "process_subframe_vectorized",
]

_REF_SYMBOLS = tuple(
    slot * SYMBOLS_PER_SLOT + REFERENCE_SYMBOL_INDEX
    for slot in range(SLOTS_PER_SUBFRAME)
)


def group_slices_by_shape(
    slices: list[UserSlice],
) -> list[list[tuple[int, UserSlice]]]:
    """Group a subframe's user slices by batchable allocation shape.

    Users sharing ``(num_subcarriers, layers, modulation)`` stack into one
    batch; each entry keeps its original position so results can be
    emitted in dispatch order. Group order follows first appearance, so
    the grouping itself is deterministic.
    """
    groups: dict[tuple[int, int, str], list[tuple[int, UserSlice]]] = {}
    for position, user_slice in enumerate(slices):
        user = user_slice.user
        key = (user_slice.num_subcarriers, user.layers, user.modulation.value)
        groups.setdefault(key, []).append((position, user_slice))
    return list(groups.values())


def _null_timer(kernel: str, batch: int):
    return nullcontext()


def _finalize_group(
    allocation: UserAllocation,
    layer_symbols: np.ndarray,
    noise_per_layer_slot: np.ndarray,
    user_ids: list[int],
    codec,
    trace,
    scrambling_c_inits: list[int | None] | None = None,
) -> list[UserResult]:
    """Batched serial tail for one shape group: deinterleave → demap → CRC.

    ``layer_symbols`` is ``(users, layers, 12, subcarriers)``;
    ``noise_per_layer_slot`` is ``(users, layers, 2)``.
    """
    from ..phy import interleaver as il

    codec = codec or PassThroughTurbo()
    num_users = layer_symbols.shape[0]
    layers = allocation.layers
    num_sc = allocation.num_subcarriers
    layer_symbols = ensure_complex(layer_symbols)
    if layer_symbols.shape != (
        num_users,
        layers,
        DATA_SYMBOLS_PER_SLOT * SLOTS_PER_SUBFRAME,
        num_sc,
    ):
        raise ValueError("layer_symbols shape mismatch")

    # Invert the transmitter's layer mapping back to one stream per user:
    # (users, layers, 12*sc) -> transpose -> (users, 12*sc, layers) -> flat.
    streams = layer_symbols.reshape(num_users, layers, -1)
    interleaved = streams.transpose(0, 2, 1).reshape(num_users, -1)
    # Per-symbol noise follows the same reshaping as the data.
    per_slot = DATA_SYMBOLS_PER_SLOT * num_sc
    noise_streams = np.repeat(
        np.asarray(noise_per_layer_slot, dtype=REAL_DTYPE), per_slot, axis=2
    )  # (users, layers, 2*per_slot)
    interleaved_noise = noise_streams.transpose(0, 2, 1).reshape(num_users, -1)

    if trace is not None:
        trace.record(
            "deinterleave", symbols=interleaved.shape[1], batch=num_users
        )
    symbols = il.deinterleave_rows(interleaved)
    noise = il.deinterleave_rows(interleaved_noise)

    llrs_rows = batched_soft_demap(
        symbols, allocation.modulation, np.maximum(noise, 1e-12), trace=trace
    )

    results: list[UserResult] = []
    for row, user_id in enumerate(user_ids):
        llrs = llrs_rows[row]
        c_init = scrambling_c_inits[row] if scrambling_c_inits else None
        if c_init is not None:
            llrs = descramble_llrs(llrs, c_init)
        if codec.rate_denominator == 1:
            num_info = llrs.size - CRC24A.width
            useful = llrs
        else:
            capacity = llrs.size
            num_info_with_crc = (capacity - 12) // 3
            num_info = num_info_with_crc - CRC24A.width
            useful = llrs[: 3 * num_info_with_crc + 12]
        if trace is not None:
            trace.record("turbo_decode", bits=useful.size)
        decoded = codec.decode(useful, num_info + CRC24A.width)
        if trace is not None:
            trace.record("crc_check", bits=decoded.size)
        ok = crc_check(decoded, CRC24A)
        results.append(
            UserResult(
                user_id=user_id,
                payload=decoded[: -CRC24A.width],
                crc_ok=ok,
                llrs=llrs,
            )
        )
    return results


def _process_group(
    grids: np.ndarray,
    allocation: UserAllocation,
    user_ids: list[int],
    config: ChestConfig | None,
    codec,
    trace,
    stage_timer,
    scrambling_c_inits: list[int | None] | None = None,
) -> list[UserResult]:
    """Run the batched chain over one shape group.

    ``grids`` is the stacked received data, shape ``(users, antennas, 14,
    subcarriers)``.
    """
    num_users = grids.shape[0]
    layers = allocation.layers

    # --- stage 1: channel estimation over (users, slots, antennas, layers)
    refs = grids[:, :, _REF_SYMBOLS, :].transpose(0, 2, 1, 3)
    with stage_timer("chest", num_users):
        channel, noise = batched_chest(refs, layers, config, trace=trace)
        # Per-(user, slot) noise estimate: mean over the (antenna, layer)
        # task grid, matching the serial join's np.mean over its list.
        noise_variance = noise.reshape(num_users, SLOTS_PER_SUBFRAME, -1).mean(
            axis=-1
        )

    # --- stage 2: combiner weights for every (user, slot, subcarrier)
    with stage_timer("combiner", num_users):
        weights, noise_after = batched_combiner_weights(
            channel, noise_variance, trace=trace
        )

    # --- stage 3: antenna combining + SC-FDMA IFFT for all data symbols
    with stage_timer("symbol", num_users):
        data_idx = data_symbol_indices()
        data = grids[:, :, data_idx, :]  # (users, antennas, 12, sc)
        per_slot_symbols = []
        for slot in range(SLOTS_PER_SUBFRAME):
            sym_lo = slot * DATA_SYMBOLS_PER_SLOT
            per_slot_symbols.append(
                batched_combine_symbols(
                    data[:, :, sym_lo : sym_lo + DATA_SYMBOLS_PER_SLOT, :],
                    weights[:, slot],
                    trace=trace,
                )
            )
        # (users, layers, 12, sc) in data-symbol order.
        layer_symbols = np.concatenate(per_slot_symbols, axis=2)
        if layer_symbols.shape[2] != DATA_SYMBOLS_PER_SUBFRAME:
            raise AssertionError("data symbol concatenation mismatch")

    # --- stage 4: serial tail, batched across the group
    with stage_timer("finalize", num_users):
        # (users, slots, layers) -> (users, layers, slots).
        noise_per_layer_slot = noise_after.mean(axis=-1).transpose(0, 2, 1)
        return _finalize_group(
            allocation,
            layer_symbols,
            noise_per_layer_slot,
            user_ids,
            codec,
            trace,
            scrambling_c_inits,
        )


#: Public name for the shape-group chain: the multiprocess runtime's
#: workers execute exactly this per dispatched group, so the parallel
#: backends share one batched code path (and its bit-exactness proofs).
process_group = _process_group


def process_user_vectorized(
    allocation: UserAllocation,
    received: np.ndarray,
    user_id: int = 0,
    config: ChestConfig | None = None,
    codec=None,
    trace=None,
    scrambling_c_init: int | None = None,
) -> UserResult:
    """Batched twin of :func:`repro.phy.chain.process_user` (one user).

    Accepts the same ``(antennas, 14 symbols, subcarriers)`` grid and
    returns a bit-exact :class:`UserResult`; all of the user's tasks run
    as stacked kernels.
    """
    received = ensure_complex(received)
    if received.ndim != 3:
        raise ValueError("received grid must be (antennas, symbols, subcarriers)")
    if received.shape[1] != SLOTS_PER_SUBFRAME * SYMBOLS_PER_SLOT:
        raise ValueError("received grid must hold 14 SC-FDMA symbols")
    if received.shape[2] != allocation.num_subcarriers:
        raise ValueError("received grid subcarrier width mismatch")
    results = _process_group(
        received[None],
        allocation,
        [user_id],
        config,
        codec,
        trace,
        _null_timer,
        [scrambling_c_init],
    )
    return results[0]


def process_subframe_vectorized(
    subframe: SubframeInput,
    config: ChestConfig | None = None,
    codec=None,
    trace=None,
    stage_timer=None,
) -> SubframeResult:
    """Process one subframe with the batched vectorized backend.

    Users sharing an allocation shape are stacked and processed together;
    results come back in dispatch order and are bit-exact with
    :func:`repro.uplink.serial.process_subframe_serial`.

    Parameters
    ----------
    stage_timer:
        Optional ``stage_timer(kernel, batch)`` context-manager factory
        used by ``repro bench`` for per-kernel wall-clock attribution
        (``kernel`` is one of :data:`repro.uplink.tasks.KERNEL_KINDS`).
        The default is a no-op, keeping this module free of host-clock
        reads.
    """
    timer = stage_timer or _null_timer
    ordered: list[UserResult | None] = [None] * len(subframe.slices)
    for group in group_slices_by_shape(subframe.slices):
        positions = [position for position, _ in group]
        slices = [user_slice for _, user_slice in group]
        grids = np.stack([s.view(subframe.grid) for s in slices])
        results = _process_group(
            grids,
            slices[0].user.allocation,
            [s.user.user_id for s in slices],
            config,
            codec,
            trace,
            timer,
        )
        for position, result in zip(positions, results):
            ordered[position] = result
    return SubframeResult(
        subframe_index=subframe.subframe_index,
        user_results=list(ordered),
    )
