"""Subframe input parameter models (Section V-A, Figs. 6 and 10).

The paper defines the model as two functions, ``init_parameter_model`` and
``uplink_parameters``; here a model is an object whose
:meth:`ParameterModel.uplink_parameters` returns the users of one subframe.

Two models are provided:

* :class:`RandomizedParameterModel` — the evaluation workload: a random
  number of users per subframe (Fig. 6), each with a randomly spread PRB
  count, and layers/modulation drawn with a probability that ramps linearly
  from 0.6 % to 100 % over the first half of the run and back down over the
  second half (Fig. 10), changing every 200 subframes.
* :class:`SteadyStateParameterModel` — a single user with fixed parameters,
  used to calibrate the workload estimator (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence

import numpy as np

from ..phy.params import (
    MAX_PRB,
    MAX_USERS_PER_SUBFRAME,
    MIN_PRB_PER_USER,
    Modulation,
)
from .user import UserParameters

__all__ = [
    "ParameterModel",
    "RandomizedParameterModel",
    "SteadyStateParameterModel",
    "TraceParameterModel",
    "DEFAULT_TOTAL_SUBFRAMES",
    "PROBABILITY_STEP_SUBFRAMES",
]

#: Length of the paper's evaluation run (Figs. 7-9, 12-16): 68 000 subframes.
DEFAULT_TOTAL_SUBFRAMES = 68_000

#: The layer/modulation probability changes every 200th subframe.
PROBABILITY_STEP_SUBFRAMES = 200

#: Fig. 10's probability ramp runs from 0.6 % to 100 %.
MIN_PROBABILITY = 0.006
MAX_PROBABILITY = 1.0


class ParameterModel(Protocol):
    """A source of per-subframe user parameters."""

    def uplink_parameters(self, subframe_index: int) -> list[UserParameters]:
        """Users scheduled in subframe ``subframe_index``."""
        ...


class RandomizedParameterModel:
    """The paper's randomized evaluation workload (Figs. 6 + 10).

    Parameters
    ----------
    total_subframes:
        Length of one probability ramp cycle (up over the first half, down
        over the second). The paper uses 68 000; scaled-down runs keep the
        same shape by shrinking this value.
    seed:
        Seed of the model's private RNG. Subframe parameters are generated
        independently per subframe index, so the sequence is reproducible
        and random-access: ``uplink_parameters(i)`` always returns the same
        users for the same ``(seed, i)``.
    max_users, max_prb:
        Fig. 6's MAX_USERS and MAX_PRB.
    """

    def __init__(
        self,
        total_subframes: int = DEFAULT_TOTAL_SUBFRAMES,
        seed: int = 0,
        max_users: int = MAX_USERS_PER_SUBFRAME,
        max_prb: int = MAX_PRB,
        probability_step: int = PROBABILITY_STEP_SUBFRAMES,
    ) -> None:
        if total_subframes < 2:
            raise ValueError("total_subframes must be >= 2")
        if max_users < 1 or max_prb < MIN_PRB_PER_USER:
            raise ValueError("max_users/max_prb out of range")
        if probability_step < 1:
            raise ValueError("probability_step must be >= 1")
        self.total_subframes = total_subframes
        self.seed = seed
        self.max_users = max_users
        self.max_prb = max_prb
        self.probability_step = probability_step

    def current_probability(self, subframe_index: int) -> float:
        """Fig. 10's probability at a given subframe.

        Linear ramp 0.6 % → 100 % over the first half of the cycle, then
        back down; the value only changes every ``probability_step``
        subframes. Runs longer than one cycle repeat the triangle wave.
        """
        if subframe_index < 0:
            raise ValueError("subframe_index must be >= 0")
        position = subframe_index % self.total_subframes
        half = self.total_subframes / 2.0
        stepped = (position // self.probability_step) * self.probability_step
        if stepped <= half:
            fraction = stepped / half
        else:
            fraction = (self.total_subframes - stepped) / half
        return MIN_PROBABILITY + (MAX_PROBABILITY - MIN_PROBABILITY) * fraction

    def _rng_for(self, subframe_index: int) -> np.random.Generator:
        return np.random.default_rng((self.seed, subframe_index))

    def uplink_parameters(self, subframe_index: int) -> list[UserParameters]:
        """Generate one subframe's users per the Fig. 6 / Fig. 10 pseudocode."""
        rng = self._rng_for(subframe_index)
        prob = self.current_probability(subframe_index)
        users: list[UserParameters] = []
        remaining_prb = self.max_prb
        while len(users) < self.max_users and remaining_prb >= MIN_PRB_PER_USER:
            user_prb = self.max_prb * rng.random()
            # "Create a larger spread in number of PRBs" (Fig. 6 lines 7-15).
            distribution = rng.random()
            if distribution < 0.4:
                user_prb /= 8
            elif distribution < 0.6:
                user_prb /= 4
            elif distribution < 0.9:
                user_prb /= 2
            num_prb = int(user_prb)
            num_prb -= num_prb % 2  # allocations span both slots (PRB pairs)
            num_prb = max(MIN_PRB_PER_USER, min(num_prb, remaining_prb))
            remaining_prb -= num_prb
            users.append(
                UserParameters(
                    user_id=len(users),
                    num_prb=num_prb,
                    layers=self._draw_layers(rng, prob),
                    modulation=self._draw_modulation(rng, prob),
                )
            )
        return users

    @staticmethod
    def _draw_layers(rng: np.random.Generator, prob: float) -> int:
        """Fig. 10 lines 2-11: three Bernoulli(prob) increments above 1."""
        layers = 1
        for _ in range(3):
            if prob > rng.random():
                layers += 1
        return layers

    @staticmethod
    def _draw_modulation(rng: np.random.Generator, prob: float) -> Modulation:
        """Fig. 10 lines 12-18: QPSK → 16QAM → 64QAM with nested draws."""
        modulation = Modulation.QPSK
        if prob > rng.random():
            modulation = Modulation.QAM16
            if prob > rng.random():
                modulation = Modulation.QAM64
        return modulation

    def iter_subframes(
        self, count: int | None = None, start: int = 0
    ) -> Iterator[list[UserParameters]]:
        """Iterate subframe user lists (defaults to one full cycle)."""
        count = self.total_subframes if count is None else count
        for index in range(start, start + count):
            yield self.uplink_parameters(index)


@dataclass(frozen=True)
class SteadyStateParameterModel:
    """A single user with fixed parameters in every subframe.

    Section VI-A: "the parameter model creates a steady state with the same
    user parameter configuration (fixed number of PRBs, layers, and
    modulation)" so the per-configuration activity can be measured.
    """

    num_prb: int
    layers: int
    modulation: Modulation

    def uplink_parameters(self, subframe_index: int) -> list[UserParameters]:
        if subframe_index < 0:
            raise ValueError("subframe_index must be >= 0")
        return [
            UserParameters(
                user_id=0,
                num_prb=self.num_prb,
                layers=self.layers,
                modulation=self.modulation,
            )
        ]


class TraceParameterModel:
    """Replays a fixed, explicit sequence of subframe user lists.

    Used by the serial-vs-parallel verification (Section IV-D processes "a
    predetermined sequence of subframes") and by tests.
    """

    def __init__(self, trace: Sequence[Sequence[UserParameters]]) -> None:
        if not trace:
            raise ValueError("trace must contain at least one subframe")
        self._trace = [list(subframe) for subframe in trace]

    def __len__(self) -> int:
        return len(self._trace)

    def uplink_parameters(self, subframe_index: int) -> list[UserParameters]:
        return list(self._trace[subframe_index % len(self._trace)])
