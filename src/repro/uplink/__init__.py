"""The LTE Uplink Receiver PHY benchmark core: user/subframe structures,
the paper's randomized input parameter model (Figs. 6 and 10), the serial
reference implementation, the Fig. 5 task decomposition, and
serial-vs-parallel verification.
"""

from .benchmark import BenchmarkConfig, BenchmarkDriver
from .parameter_model import (
    DEFAULT_TOTAL_SUBFRAMES,
    ParameterModel,
    RandomizedParameterModel,
    SteadyStateParameterModel,
    TraceParameterModel,
)
from .recording import load_results, save_results, verify_against_recording
from .scenarios import DiurnalParameterModel, ScaledLoadModel
from .serial import SerialBenchmark, SubframeResult, process_subframe_serial
from .subframe import DEFAULT_POOL_SIZE, SubframeFactory, SubframeInput, UserSlice
from .tasks import TaskDescriptor, UserJob, describe_user_tasks
from .user import UserParameters
from .verification import VerificationReport, verify_against_serial

__all__ = [
    "BenchmarkConfig",
    "BenchmarkDriver",
    "DEFAULT_TOTAL_SUBFRAMES",
    "ParameterModel",
    "RandomizedParameterModel",
    "SteadyStateParameterModel",
    "TraceParameterModel",
    "DiurnalParameterModel",
    "ScaledLoadModel",
    "load_results",
    "save_results",
    "verify_against_recording",
    "SerialBenchmark",
    "SubframeResult",
    "process_subframe_serial",
    "DEFAULT_POOL_SIZE",
    "SubframeFactory",
    "SubframeInput",
    "UserSlice",
    "TaskDescriptor",
    "UserJob",
    "describe_user_tasks",
    "UserParameters",
    "VerificationReport",
    "verify_against_serial",
]
