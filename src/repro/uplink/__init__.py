"""The LTE Uplink Receiver PHY benchmark core: user/subframe structures,
the paper's randomized input parameter model (Figs. 6 and 10), the serial
reference implementation, the Fig. 5 task decomposition, and
serial-vs-parallel verification.
"""

from .benchmark import DRIVER_BACKENDS, BenchmarkConfig, BenchmarkDriver
from .parameter_model import (
    DEFAULT_TOTAL_SUBFRAMES,
    ParameterModel,
    RandomizedParameterModel,
    SteadyStateParameterModel,
    TraceParameterModel,
)
from .recording import (
    RecordingError,
    load_results,
    save_results,
    verify_against_recording,
)
from .scenarios import DiurnalParameterModel, ScaledLoadModel
from .serial import (
    FUNCTIONAL_BACKENDS,
    SerialBenchmark,
    SubframeResult,
    process_subframe,
    process_subframe_serial,
)
from .subframe import DEFAULT_POOL_SIZE, SubframeFactory, SubframeInput, UserSlice
from .tasks import (
    BATCHED_KERNEL_KINDS,
    KERNEL_KINDS,
    TaskDescriptor,
    UserJob,
    describe_user_tasks,
    describe_user_tasks_batched,
)
from .user import UserParameters
from .vectorized import process_subframe_vectorized, process_user_vectorized
from .verification import VerificationReport, verify_against_serial

__all__ = [
    "BenchmarkConfig",
    "BenchmarkDriver",
    "DRIVER_BACKENDS",
    "FUNCTIONAL_BACKENDS",
    "DEFAULT_TOTAL_SUBFRAMES",
    "ParameterModel",
    "RandomizedParameterModel",
    "SteadyStateParameterModel",
    "TraceParameterModel",
    "DiurnalParameterModel",
    "ScaledLoadModel",
    "RecordingError",
    "load_results",
    "save_results",
    "verify_against_recording",
    "SerialBenchmark",
    "SubframeResult",
    "process_subframe",
    "process_subframe_serial",
    "process_subframe_vectorized",
    "process_user_vectorized",
    "DEFAULT_POOL_SIZE",
    "SubframeFactory",
    "SubframeInput",
    "UserSlice",
    "TaskDescriptor",
    "UserJob",
    "KERNEL_KINDS",
    "BATCHED_KERNEL_KINDS",
    "describe_user_tasks",
    "describe_user_tasks_batched",
    "UserParameters",
    "VerificationReport",
    "verify_against_serial",
]
