"""Recording and replaying benchmark results (Section IV-D).

"The serial version processes a predetermined sequence of subframes,
recording and storing the results from each subframe. ... This can be used
to verify that the computation is consistent across different
architectures, as well."

Results are stored as a single compressed ``.npz`` archive: per user, the
decoded payload bits and CRC flag, keyed by subframe and user id. A stored
reference can then be checked against any later run — a different worker
count, runtime, or machine.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..phy.chain import UserResult
from .serial import SubframeResult
from .verification import VerificationReport, verify_against_serial

__all__ = [
    "RecordingError",
    "save_results",
    "load_results",
    "verify_against_recording",
]

_FORMAT_KEY = "__format__"
_FORMAT_VERSION = 1


class RecordingError(ValueError):
    """A results recording is unreadable, truncated, or inconsistent.

    Raised instead of the grab-bag a damaged ``.npz`` produces naturally
    (``BadZipFile``, ``KeyError``, ``OSError``, ...), so callers checking
    a reference recording can distinguish "this file is damaged" from
    "the results genuinely differ" with a single except clause.
    """


def _key(subframe_index: int, user_id: int, field: str) -> str:
    return f"sf{subframe_index:08d}/u{user_id:04d}/{field}"


def save_results(results: list[SubframeResult], path: str | Path) -> Path:
    """Store a run's decoded results as a compressed archive."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        _FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64)
    }
    indices = []
    for result in results:
        indices.append(result.subframe_index)
        user_ids = []
        for user_result in result.user_results:
            user_ids.append(user_result.user_id)
            arrays[_key(result.subframe_index, user_result.user_id, "payload")] = (
                np.asarray(user_result.payload, dtype=np.uint8)
            )
            arrays[_key(result.subframe_index, user_result.user_id, "crc")] = (
                np.array([user_result.crc_ok], dtype=np.uint8)
            )
        arrays[f"sf{result.subframe_index:08d}/users"] = np.array(
            sorted(user_ids), dtype=np.int64
        )
    arrays["subframes"] = np.array(sorted(indices), dtype=np.int64)
    if len(set(indices)) != len(indices):
        raise ValueError("duplicate subframe indices cannot be recorded")
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz when missing; report the real path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_results(path: str | Path) -> list[SubframeResult]:
    """Load a stored run back into :class:`SubframeResult` objects.

    Raises :class:`RecordingError` for anything short of a healthy
    archive: an unreadable or truncated file, a foreign ``.npz``, or an
    archive whose internal index names entries that are missing or
    malformed (the shape a partially-written recording takes).
    """
    path = Path(path)
    try:
        archive_cm = np.load(path)
    except FileNotFoundError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise RecordingError(
            f"{path} is not a readable recording (truncated or corrupt): "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    with archive_cm as archive:
        if (
            _FORMAT_KEY not in archive
            or archive[_FORMAT_KEY].size != 1
            or int(archive[_FORMAT_KEY][0]) != _FORMAT_VERSION
        ):
            raise RecordingError(
                f"{path} is not a recognized results recording "
                f"(format marker missing or unsupported)"
            )
        try:
            results = []
            for subframe_index in archive["subframes"]:
                subframe_index = int(subframe_index)
                user_results = []
                for user_id in archive[f"sf{subframe_index:08d}/users"]:
                    user_id = int(user_id)
                    payload = archive[
                        _key(subframe_index, user_id, "payload")
                    ].astype(np.int64)
                    crc_array = archive[_key(subframe_index, user_id, "crc")]
                    if crc_array.size != 1:
                        raise RecordingError(
                            f"{path}: malformed CRC entry for subframe "
                            f"{subframe_index} user {user_id}"
                        )
                    user_results.append(
                        UserResult(
                            user_id=user_id,
                            payload=payload,
                            crc_ok=bool(crc_array[0]),
                        )
                    )
                results.append(
                    SubframeResult(
                        subframe_index=subframe_index, user_results=user_results
                    )
                )
        except KeyError as exc:
            raise RecordingError(
                f"{path}: recording index names missing entry {exc} "
                f"(archive is incomplete)"
            ) from exc
    return results


def verify_against_recording(
    path: str | Path, results: list[SubframeResult]
) -> VerificationReport:
    """Check a fresh run against a stored reference recording."""
    reference = load_results(path)
    return verify_against_serial(reference, results)
