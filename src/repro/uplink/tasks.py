"""Task decomposition of per-user processing (Section III, Fig. 5).

A user's subframe processing is split exactly as the paper describes:

* **Channel-estimation tasks** — one per (receive antenna × layer), up to
  4 × 4 = 16 tasks. Each task runs the matched-filter/IFFT/window/FFT chain
  for its antenna-layer pair in both slots.
* **Combiner-weight computation** — a join step executed by the user
  thread once all channel-estimation tasks have finished ("considers all
  the receiver channels and layers, and is therefore not easily
  parallelized").
* **Data tasks** — one per (data symbol × layer), up to 12 × 4 = 48 tasks
  across the subframe's two slots (the paper quotes 24 per slot at four
  layers). Each performs antenna combining and the SC-FDMA IFFT.
* **Finalize** — a join step executed by the user thread: deinterleave,
  soft demap, turbo decode (pass-through), CRC.

The same structure is consumed two ways: :class:`UserJob` carries
executable numpy closures for the functional runtimes, while
:func:`describe_user_tasks` yields pure :class:`TaskDescriptor` work
records for the timing simulator's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..phy.chain import (
    UserResult,
    chest_task,
    combiner_stage,
    finalize_user,
    symbol_task,
)
from ..phy.chest import ChestConfig
from ..phy.params import (
    DATA_SYMBOLS_PER_SUBFRAME,
    REFERENCE_SYMBOL_INDEX,
    SLOTS_PER_SUBFRAME,
    SYMBOLS_PER_SLOT,
)
from ..phy.transmitter import data_symbol_indices
from .subframe import UserSlice
from .user import UserParameters

__all__ = [
    "KERNEL_KINDS",
    "BATCHED_KERNEL_KINDS",
    "TaskDescriptor",
    "describe_user_tasks",
    "describe_user_tasks_batched",
    "UserJob",
]

#: The four per-user kernels of Fig. 5, in stage order. This is the
#: canonical attribution key set for the profiling layer: both backends
#: label their task/span events with one of these names, and
#: :meth:`repro.obs.profiling.Profiler.kernel_breakdown` reports in this
#: order.
KERNEL_KINDS: tuple[str, ...] = ("chest", "combiner", "symbol", "finalize")

#: Fused-stage task kinds emitted by the batched vectorized backend: each
#: one covers *all* of a user's tasks for that Fig. 5 stage (e.g. one
#: ``chest_batch`` task stands for all antennas × layers chest tasks).
#: The cost model prices them as the summed stage work plus a single
#: per-task overhead — that overhead collapse is exactly the scheduling
#: cost the vectorized path saves.
BATCHED_KERNEL_KINDS: tuple[str, ...] = (
    "chest_batch",
    "combiner_batch",
    "symbol_batch",
    "finalize_batch",
)


@dataclass(frozen=True)
class TaskDescriptor:
    """Pure work record for one schedulable task (consumed by the cost model).

    ``kind`` is one of ``"chest"``, ``"combiner"``, ``"symbol"``,
    ``"finalize"``. ``num_prb`` is the user's whole-subframe PRB count;
    per-kind work scaling happens in the cost model.
    """

    kind: str
    user_id: int
    num_prb: int
    layers: int
    bits_per_symbol: int
    antennas: int


def describe_user_tasks(
    user: UserParameters, antennas: int = 4
) -> tuple[list[TaskDescriptor], TaskDescriptor, list[TaskDescriptor], TaskDescriptor]:
    """(chest tasks, combiner join, data tasks, finalize join) for a user."""
    common = dict(
        user_id=user.user_id,
        num_prb=user.num_prb,
        layers=user.layers,
        bits_per_symbol=user.modulation.bits_per_symbol,
        antennas=antennas,
    )
    chest = [
        TaskDescriptor(kind="chest", **common)
        for _ in range(antennas * user.layers)
    ]
    combiner = TaskDescriptor(kind="combiner", **common)
    data = [
        TaskDescriptor(kind="symbol", **common)
        for _ in range(DATA_SYMBOLS_PER_SUBFRAME * user.layers)
    ]
    finalize = TaskDescriptor(kind="finalize", **common)
    return chest, combiner, data, finalize


def describe_user_tasks_batched(
    user: UserParameters, antennas: int = 4
) -> tuple[TaskDescriptor, TaskDescriptor, TaskDescriptor, TaskDescriptor]:
    """One fused task per Fig. 5 stage, as the vectorized backend runs them.

    Returns ``(chest_batch, combiner_batch, symbol_batch, finalize_batch)``
    descriptors; each carries the same work as the corresponding stage's
    whole per-task fan-out in :func:`describe_user_tasks`, but is
    scheduled (and overhead-charged) once.
    """
    common = dict(
        user_id=user.user_id,
        num_prb=user.num_prb,
        layers=user.layers,
        bits_per_symbol=user.modulation.bits_per_symbol,
        antennas=antennas,
    )
    return (
        TaskDescriptor(kind="chest_batch", **common),
        TaskDescriptor(kind="combiner_batch", **common),
        TaskDescriptor(kind="symbol_batch", **common),
        TaskDescriptor(kind="finalize_batch", **common),
    )


class UserJob:
    """Executable task graph for one user in one subframe.

    Drives the Fig. 5 stages over real data. The job is *not* thread-safe
    by itself: the runtime must call :meth:`chest_tasks` / :meth:`run_combiner`
    / :meth:`data_tasks` / :meth:`finalize` in stage order, with whatever
    synchronization it uses to ensure each stage's tasks completed (the
    closures themselves may run concurrently — they write disjoint slots of
    pre-allocated arrays).
    """

    def __init__(
        self,
        user_slice: UserSlice,
        grid: np.ndarray,
        config: ChestConfig | None = None,
        codec=None,
    ) -> None:
        self.user = user_slice.user
        self.received = user_slice.view(grid)
        self.config = config
        self.codec = codec
        self.antennas = self.received.shape[0]
        self.layers = self.user.layers
        self.num_sc = user_slice.num_subcarriers
        self._channel = np.empty(
            (SLOTS_PER_SUBFRAME, self.antennas, self.layers, self.num_sc),
            dtype=np.complex128,
        )
        self._noise = np.empty((SLOTS_PER_SUBFRAME, self.antennas, self.layers))
        self._weights: list[np.ndarray | None] = [None] * SLOTS_PER_SUBFRAME
        self._noise_after: list[np.ndarray | None] = [None] * SLOTS_PER_SUBFRAME
        self._layer_symbols = np.empty(
            (self.layers, DATA_SYMBOLS_PER_SUBFRAME, self.num_sc), dtype=np.complex128
        )
        self.result: UserResult | None = None

    # ----- stage 1: channel estimation ---------------------------------
    def chest_tasks(self) -> list[Callable[[], None]]:
        """One closure per (antenna, layer); each covers both slots."""
        tasks = []
        for antenna in range(self.antennas):
            for layer in range(self.layers):
                tasks.append(self._make_chest_task(antenna, layer))
        return tasks

    def _make_chest_task(self, antenna: int, layer: int) -> Callable[[], None]:
        def run() -> None:
            for slot in range(SLOTS_PER_SUBFRAME):
                ref_sym = slot * SYMBOLS_PER_SLOT + REFERENCE_SYMBOL_INDEX
                estimate, noise = chest_task(
                    self.received[antenna, ref_sym, :], layer, self.config
                )
                self._channel[slot, antenna, layer, :] = estimate
                self._noise[slot, antenna, layer] = noise

        return run

    # ----- stage 2: combiner weights (user thread) ----------------------
    def run_combiner(self) -> None:
        for slot in range(SLOTS_PER_SUBFRAME):
            estimate = combiner_stage(
                self._channel[slot], float(np.mean(self._noise[slot]))
            )
            self._weights[slot] = estimate.weights
            self._noise_after[slot] = estimate.noise_after_combining

    # ----- stage 3: data demodulation -----------------------------------
    def data_tasks(self) -> list[Callable[[], None]]:
        """One closure per (data symbol, layer) across both slots."""
        tasks = []
        for row, sym in enumerate(data_symbol_indices()):
            for layer in range(self.layers):
                tasks.append(self._make_symbol_task(row, sym, layer))
        return tasks

    def _make_symbol_task(self, row: int, sym: int, layer: int) -> Callable[[], None]:
        def run() -> None:
            slot = sym // SYMBOLS_PER_SLOT
            weights = self._weights[slot]
            if weights is None:
                raise RuntimeError("data task ran before combiner stage")
            self._layer_symbols[layer, row, :] = symbol_task(
                self.received[:, sym, :], weights, layer
            )

        return run

    # ----- stage 4: finalize (user thread) -------------------------------
    def finalize(self) -> UserResult:
        noise_pls = np.stack(
            [na.mean(axis=1) for na in self._noise_after], axis=1
        )
        self.result = finalize_user(
            self.user.allocation,
            self._layer_symbols,
            noise_pls,
            user_id=self.user.user_id,
            codec=self.codec,
        )
        return self.result

    # ----- convenience ---------------------------------------------------
    def run_serially(self) -> UserResult:
        """Execute all stages in order on the calling thread."""
        for task in self.chest_tasks():
            task()
        self.run_combiner()
        for task in self.data_tasks():
            task()
        return self.finalize()
