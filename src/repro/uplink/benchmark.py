"""Top-level benchmark driver: the maintenance thread's dispatch loop.

Section IV-B: "the maintenance thread enters a loop in which input data
and parameters for a subframe are created and dispatched every DELTA
milliseconds (where DELTA is configurable)". This driver paces dispatch
in real time over the threaded runtime — the functional twin of the
paper's default benchmark binary. (The timing-accurate counterpart is
``repro.sim.MachineSimulator``, which paces dispatch in simulated time.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .parameter_model import ParameterModel
from .serial import SubframeResult, process_subframe
from .subframe import SubframeFactory

__all__ = ["DRIVER_BACKENDS", "BenchmarkConfig", "BenchmarkDriver"]

#: Execution backends the driver can dispatch onto: the work-stealing
#: thread runtime (the paper's Pthreads twin), the per-task serial
#: reference, and the batched vectorized fast path.
DRIVER_BACKENDS = ("threaded", "serial", "vectorized")


@dataclass(frozen=True)
class BenchmarkConfig:
    """Driver knobs.

    ``delta_s`` is the paper's DELTA — the dispatch interval. It is
    configurable precisely because "this allows the benchmark to run on
    hardware that cannot sustain a rate of one subframe per millisecond".
    ``backend`` selects how dispatched subframes execute: ``"threaded"``
    (default) submits to the work-stealing runtime; ``"serial"`` and
    ``"vectorized"`` process each subframe inline on the dispatch thread
    (the vectorized path runs the batched kernels of
    ``repro.phy.batched``).
    """

    delta_s: float = 5e-3
    num_workers: int = 4
    synthesize: bool = False
    backend: str = "threaded"

    def __post_init__(self) -> None:
        if self.delta_s <= 0:
            raise ValueError("delta_s must be positive")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.backend not in DRIVER_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} (choose from {DRIVER_BACKENDS})"
            )


class BenchmarkDriver:
    """Runs the benchmark: timed dispatch onto the work-stealing runtime."""

    def __init__(
        self,
        model: ParameterModel,
        factory: SubframeFactory | None = None,
        config: BenchmarkConfig | None = None,
    ) -> None:
        self.model = model
        self.factory = factory or SubframeFactory()
        self.config = config or BenchmarkConfig()

    def _build(self, index: int):
        users = self.model.uplink_parameters(index)
        if self.config.synthesize:
            return self.factory.synthesize(users, index)
        return self.factory.from_pool(users, index)

    def run(self, num_subframes: int, start: int = 0) -> list[SubframeResult]:
        """Dispatch ``num_subframes`` subframes every DELTA; return results.

        Subframe inputs are prepared ahead of the deadline (the paper
        pre-generates input data at initialization for the same reason),
        so the dispatch loop only enqueues.
        """
        if num_subframes < 1:
            raise ValueError("num_subframes must be >= 1")
        subframes = [self._build(start + i) for i in range(num_subframes)]
        if self.config.backend != "threaded":
            # Inline backends: the dispatch thread processes each subframe
            # itself (serial reference or batched vectorized fast path),
            # still paced at DELTA so deadline behaviour is comparable.
            results: list[SubframeResult] = []
            epoch = time.monotonic()
            for i, subframe in enumerate(subframes):
                deadline = epoch + i * self.config.delta_s
                delay = deadline - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                results.append(
                    process_subframe(subframe, backend=self.config.backend)
                )
            return results
        # Imported here: repro.sched depends on repro.uplink's task graph,
        # so a module-level import would be circular.
        from ..sched.threaded import ThreadedRuntime

        runtime = ThreadedRuntime(num_workers=self.config.num_workers)
        runtime.start()
        try:
            epoch = time.monotonic()
            for i, subframe in enumerate(subframes):
                deadline = epoch + i * self.config.delta_s
                delay = deadline - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                runtime.submit(subframe)
            runtime.drain()
        finally:
            runtime.stop()
        return runtime.collect_results()
