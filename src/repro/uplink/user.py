"""Per-user subframe input parameters (Section IV: "The following input
parameters define the workload for a subframe: number of users; number of
PRBs allocated to each user; number of layers used for each user; and
modulation technique used for each user.").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.params import Modulation, validate_allocation
from ..phy.transmitter import UserAllocation

__all__ = ["UserParameters"]


@dataclass(frozen=True)
class UserParameters:
    """One scheduled user's parameters for one subframe."""

    user_id: int
    num_prb: int
    layers: int
    modulation: Modulation

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise ValueError("user_id must be >= 0")
        validate_allocation(self.num_prb, self.layers, self.modulation)

    @property
    def allocation(self) -> UserAllocation:
        """The PHY-level allocation for this user."""
        return UserAllocation(
            num_prb=self.num_prb, layers=self.layers, modulation=self.modulation
        )

    def config_key(self) -> tuple[int, str]:
        """(layers, modulation) key used by the workload estimator's k_LM."""
        return (self.layers, self.modulation.value)
