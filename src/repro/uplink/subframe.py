"""Subframe input data: antenna sample grids plus scheduled users.

Section IV-B1: "At benchmark initialization, input data sets are created
for multiple subframes and then reused across all dispatched subframes...
The number of unique input data subframes to generate is configurable
(with ten as the default)."

Two ways to obtain input data are provided, matching the two ways the
benchmark is used:

* :meth:`SubframeFactory.from_pool` — the paper's approach: a fixed pool of
  pre-generated pseudo-random antenna grids, reused round-robin across
  dispatched subframes. Fast, and sufficient because the benchmark's
  *compute* is data-independent.
* :meth:`SubframeFactory.synthesize` — full TX → channel → RX synthesis per
  user, so decoded CRCs actually pass. Used by examples and correctness
  tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..phy.channel import ChannelModel
from ..phy.params import (
    SLOTS_PER_SUBFRAME,
    SUBCARRIERS_PER_PRB,
    SYMBOLS_PER_SLOT,
    CellConfig,
)
from ..phy.transmitter import random_payload, transmit_subframe
from .user import UserParameters

__all__ = ["UserSlice", "SubframeInput", "SubframeFactory", "DEFAULT_POOL_SIZE"]

#: Paper default: ten unique pre-generated input-data subframes.
DEFAULT_POOL_SIZE = 10

_NUM_SYMBOLS = SLOTS_PER_SUBFRAME * SYMBOLS_PER_SLOT


@dataclass(frozen=True)
class UserSlice:
    """Where one user's allocation sits in the full-band grid."""

    user: UserParameters
    subcarrier_offset: int

    @property
    def num_subcarriers(self) -> int:
        return self.user.allocation.num_subcarriers

    def view(self, grid: np.ndarray) -> np.ndarray:
        """The user's (antennas, 14, width) slice of the full-band grid."""
        lo = self.subcarrier_offset
        return grid[:, :, lo : lo + self.num_subcarriers]


@dataclass
class SubframeInput:
    """One dispatched subframe: antenna samples plus the scheduled users."""

    subframe_index: int
    grid: np.ndarray  # (antennas, 14 symbols, total subcarriers)
    slices: list[UserSlice]
    expected_payloads: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def users(self) -> list[UserParameters]:
        return [s.user for s in self.slices]

    @property
    def total_prb(self) -> int:
        return sum(u.num_prb for u in self.users)


def assign_offsets(users: list[UserParameters], cell: CellConfig) -> list[UserSlice]:
    """Pack users' allocations contiguously across the carrier (first-fit).

    Raises when the users exceed the cell's frequency capacity — the
    scheduler (parameter model) guarantees they never do.
    """
    slices: list[UserSlice] = []
    offset = 0
    capacity = cell.max_prb_per_slot * SUBCARRIERS_PER_PRB
    for user in users:
        width = user.allocation.num_subcarriers
        if offset + width > capacity:
            raise ValueError(
                f"users exceed carrier capacity ({offset + width} > {capacity} subcarriers)"
            )
        slices.append(UserSlice(user=user, subcarrier_offset=offset))
        offset += width
    return slices


class SubframeFactory:
    """Builds :class:`SubframeInput` objects for the benchmark.

    Parameters
    ----------
    cell:
        Receiver configuration (antenna count, carrier width).
    pool_size:
        Number of unique pre-generated input grids (paper default 10).
    seed:
        Seed for pool generation and synthesis.
    channel:
        Channel model used by :meth:`synthesize`.
    """

    def __init__(
        self,
        cell: CellConfig | None = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        seed: int = 0,
        channel: ChannelModel | None = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.cell = cell or CellConfig()
        self.pool_size = pool_size
        self.seed = seed
        # Defaults model a well-served cell (35 dB, mild delay spread) so
        # synthesized subframes decode cleanly even at 4 layers.
        self.channel = channel or ChannelModel(
            num_rx_antennas=self.cell.num_rx_antennas, num_taps=3, snr_db=35.0
        )
        self._pool: list[np.ndarray] | None = None

    @property
    def total_subcarriers(self) -> int:
        return self.cell.max_prb_per_slot * SUBCARRIERS_PER_PRB

    def _ensure_pool(self) -> list[np.ndarray]:
        if self._pool is None:
            rng = np.random.default_rng((self.seed, 0))
            shape = (self.cell.num_rx_antennas, _NUM_SYMBOLS, self.total_subcarriers)
            self._pool = [
                (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))
                / np.sqrt(2.0)
                for _ in range(self.pool_size)
            ]
        return self._pool

    def from_pool(
        self, users: list[UserParameters], subframe_index: int
    ) -> SubframeInput:
        """Paper mode: reuse one of the pre-generated grids round-robin."""
        pool = self._ensure_pool()
        grid = pool[subframe_index % self.pool_size]
        return SubframeInput(
            subframe_index=subframe_index,
            grid=grid,
            slices=assign_offsets(users, self.cell),
        )

    def synthesize(
        self, users: list[UserParameters], subframe_index: int
    ) -> SubframeInput:
        """Full TX → channel → RX synthesis; records expected payloads."""
        rng = np.random.default_rng((self.seed, 1, subframe_index))
        slices = assign_offsets(users, self.cell)
        grid = np.zeros(
            (self.cell.num_rx_antennas, _NUM_SYMBOLS, self.total_subcarriers),
            dtype=np.complex128,
        )
        expected: dict[int, np.ndarray] = {}
        for user_slice in slices:
            user = user_slice.user
            allocation = user.allocation
            payload = random_payload(allocation, rng)
            tx = transmit_subframe(allocation, payload, rng)
            realization = self.channel.realize(
                user.layers, allocation.num_subcarriers, rng
            )
            rx = realization.apply(tx.grid, rng)
            lo = user_slice.subcarrier_offset
            grid[:, :, lo : lo + allocation.num_subcarriers] += rx
            expected[user.user_id] = payload
        return SubframeInput(
            subframe_index=subframe_index,
            grid=grid,
            slices=slices,
            expected_payloads=expected,
        )
