"""Serial reference implementation of the benchmark (Section IV-A).

"We implemented the serial version as a reference to verify parallelized
versions of the benchmark." The serial benchmark processes each dispatched
subframe's users one at a time, in order, recording every result so
parallel runs can be compared bit-for-bit (Section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..phy.chain import UserResult
from ..phy.chest import ChestConfig
from .parameter_model import ParameterModel
from .subframe import SubframeFactory, SubframeInput
from .tasks import UserJob

__all__ = [
    "FUNCTIONAL_BACKENDS",
    "SubframeResult",
    "SerialBenchmark",
    "process_subframe",
    "process_subframe_serial",
]

#: Single-thread functional backends selectable via ``backend=``: the
#: per-task serial reference and the batched vectorized fast path
#: (``repro.uplink.vectorized``). The threaded runtime lives in
#: ``repro.sched`` and is selected at the driver/CLI level.
FUNCTIONAL_BACKENDS = ("serial", "vectorized")


@dataclass
class SubframeResult:
    """All users' decoded results for one subframe.

    ``aborted_user_ids`` lists users the resilience layer gave up on
    (retry budget exhausted or subframe deadline-aborted); it is empty on
    every fault-free path and is deliberately *not* part of :meth:`equals`,
    which compares the decoded payloads that were produced.
    """

    subframe_index: int
    user_results: list[UserResult] = field(default_factory=list)
    aborted_user_ids: list[int] = field(default_factory=list)

    def equals(self, other: "SubframeResult") -> bool:
        """Bit-exact comparison against another run of the same subframe."""
        if self.subframe_index != other.subframe_index:
            return False
        if len(self.user_results) != len(other.user_results):
            return False
        mine = sorted(self.user_results, key=lambda r: r.user_id)
        theirs = sorted(other.user_results, key=lambda r: r.user_id)
        return all(a.equals(b) for a, b in zip(mine, theirs))


def process_subframe_serial(
    subframe: SubframeInput,
    config: ChestConfig | None = None,
    codec=None,
) -> SubframeResult:
    """Process one subframe's users sequentially on the calling thread."""
    result = SubframeResult(subframe_index=subframe.subframe_index)
    for user_slice in subframe.slices:
        job = UserJob(user_slice, subframe.grid, config=config, codec=codec)
        result.user_results.append(job.run_serially())
    return result


def process_subframe(
    subframe: SubframeInput,
    config: ChestConfig | None = None,
    codec=None,
    backend: str = "serial",
) -> SubframeResult:
    """Process one subframe on the selected single-thread backend.

    ``backend="serial"`` walks the per-task reference chain;
    ``backend="vectorized"`` runs the batched fast path
    (:func:`repro.uplink.vectorized.process_subframe_vectorized`), which
    is bit-exact with the reference.
    """
    if backend == "serial":
        return process_subframe_serial(subframe, config=config, codec=codec)
    if backend == "vectorized":
        from .vectorized import process_subframe_vectorized

        return process_subframe_vectorized(subframe, config=config, codec=codec)
    raise ValueError(
        f"unknown backend {backend!r} (choose from {FUNCTIONAL_BACKENDS})"
    )


class SerialBenchmark:
    """Drives the serial version over a parameter model.

    Parameters
    ----------
    model:
        Source of per-subframe user parameters.
    factory:
        Source of input data (pool mode by default, per the paper).
    synthesize:
        When True, build physically meaningful input (CRCs pass) instead of
        reusing the pre-generated pool.
    backend:
        ``"serial"`` (the per-task reference, default) or ``"vectorized"``
        (the batched fast path; bit-exact with the reference).
    """

    def __init__(
        self,
        model: ParameterModel,
        factory: SubframeFactory | None = None,
        synthesize: bool = False,
        config: ChestConfig | None = None,
        codec=None,
        backend: str = "serial",
    ) -> None:
        if backend not in FUNCTIONAL_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {FUNCTIONAL_BACKENDS})"
            )
        self.model = model
        self.factory = factory or SubframeFactory()
        self.synthesize = synthesize
        self.config = config
        self.codec = codec
        self.backend = backend

    def build_subframe(self, subframe_index: int) -> SubframeInput:
        users = self.model.uplink_parameters(subframe_index)
        if self.synthesize:
            return self.factory.synthesize(users, subframe_index)
        return self.factory.from_pool(users, subframe_index)

    def run(self, num_subframes: int, start: int = 0) -> list[SubframeResult]:
        """Process ``num_subframes`` consecutive subframes; returns results."""
        if num_subframes < 1:
            raise ValueError("num_subframes must be >= 1")
        return [
            process_subframe(
                self.build_subframe(index),
                config=self.config,
                codec=self.codec,
                backend=self.backend,
            )
            for index in range(start, start + num_subframes)
        ]
