"""Chip power model (substitute for the paper's DAQ measurements).

Total power is decomposed the way the paper's measurements imply:

* a constant **base power** of 14 W — what the TILEPro64 dissipates with
  all cores napped (Section V-B);
* **dynamic power** per worker core by state: computing, busy-spinning
  (slightly cheaper than computing), reactively napping (clock-gated but
  periodically waking to poll — the overhead the paper blames for IDLE's
  gap to NAP), or proactively disabled (deep nap, no polling);
* a **thermal leakage** term: a first-order thermal RC driven by total
  power, with leakage growing linearly in temperature. This reproduces the
  paper's observation that NONAP's 18 % higher average power "raises the
  TILEPro64's temperature, which increases power" and the elevated tail
  after peak load.

Default per-core powers are calibrated against Tables I and II: at 100 %
activity dynamic power is ~11.7 W (62 cores × 188 mW) plus thermal
leakage; busy-spinning costs ~84 % of computing; a reactively napping core
averages ~24 mW (wake-check duty); a disabled core ~8 mW.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.trace import CoreState, OccupancyTrace

__all__ = [
    "PowerModelParams",
    "PowerModel",
    "PowerTrace",
    "power_from_busy_fraction",
]


@dataclass(frozen=True)
class PowerModelParams:
    """All knobs of the power model (watts, seconds, kelvin)."""

    base_power_w: float = 14.0
    compute_power_w: float = 0.188  # per core at 100 % duty
    spin_power_w: float = 0.158
    reactive_nap_power_w: float = 0.024
    disabled_power_w: float = 0.008
    # Thermal feedback.
    thermal_resistance_c_per_w: float = 1.5
    thermal_time_constant_s: float = 60.0
    leakage_w_per_c: float = 0.09
    ambient_c: float = 45.0

    def __post_init__(self) -> None:
        if self.base_power_w < 0:
            raise ValueError("base_power_w must be >= 0")
        for name in (
            "compute_power_w",
            "spin_power_w",
            "reactive_nap_power_w",
            "disabled_power_w",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not self.disabled_power_w <= self.reactive_nap_power_w <= self.spin_power_w:
            raise ValueError(
                "expected disabled <= reactive nap <= spin per-core power"
            )
        if self.thermal_time_constant_s <= 0:
            raise ValueError("thermal_time_constant_s must be positive")

    @property
    def reference_temperature_c(self) -> float:
        """Steady-state die temperature when dissipating only base power.

        Leakage is defined as zero at this point (it is already inside the
        measured 14 W base)."""
        return self.ambient_c + self.thermal_resistance_c_per_w * self.base_power_w


@dataclass
class PowerTrace:
    """Per-window power decomposition produced by :class:`PowerModel`."""

    window_s: float
    base_power_w: float
    total_w: np.ndarray
    dynamic_w: np.ndarray
    leakage_w: np.ndarray
    temperature_c: np.ndarray

    @property
    def times_s(self) -> np.ndarray:
        return (np.arange(self.total_w.size) + 0.5) * self.window_s

    def mean_total(self) -> float:
        return float(self.total_w.mean())

    def mean_above_base(self) -> float:
        """Average power with the 14 W base subtracted (Table I's view)."""
        return float((self.total_w - self.base_power_w).mean())


def power_from_busy_fraction(
    busy_fraction,
    num_workers: int,
    params: PowerModelParams | None = None,
):
    """Windowed power estimate from a busy fraction (no occupancy trace).

    The streaming telemetry layer only sees task durations, not per-core
    state occupancies, so its per-window power estimate assumes each of
    ``num_workers`` cores draws compute power for the window's busy
    fraction and reactive-nap power for the remainder (the NAP policy's
    steady state) — the live analog of the paper's 100 ms RMS windows,
    without the thermal feedback loop. Accepts a scalar or array of busy
    fractions (clipped to [0, 1]) and returns watts with matching shape.
    """
    p = params or PowerModelParams()
    busy = np.clip(np.asarray(busy_fraction, dtype=np.float64), 0.0, 1.0)
    dynamic = num_workers * (
        busy * p.compute_power_w + (1.0 - busy) * p.reactive_nap_power_w
    )
    result = p.base_power_w + dynamic
    return float(result) if result.ndim == 0 else result


class PowerModel:
    """Turns a state-occupancy trace into a power trace."""

    def __init__(self, params: PowerModelParams | None = None) -> None:
        self.params = params or PowerModelParams()

    def dynamic_power(self, trace: OccupancyTrace) -> np.ndarray:
        """Per-window dynamic power from state occupancies (no thermal)."""
        p = self.params
        per_state = {
            CoreState.COMPUTE: p.compute_power_w,
            CoreState.SPIN: p.spin_power_w,
            CoreState.NAP: p.reactive_nap_power_w,
            CoreState.DISABLED: p.disabled_power_w,
        }
        dynamic = np.zeros(trace.num_windows)
        for state, watts in per_state.items():
            dynamic += trace.occupancy_fraction(state) * trace.num_workers * watts
        return dynamic

    def evaluate(self, trace: OccupancyTrace, clock_hz: float) -> PowerTrace:
        """Full power trace including the thermal-leakage feedback loop."""
        p = self.params
        window_s = trace.window_cycles / clock_hz
        dynamic = self.dynamic_power(trace)
        n = dynamic.size
        temperature = np.empty(n)
        leakage = np.empty(n)
        total = np.empty(n)
        t_now = p.reference_temperature_c
        alpha = window_s / p.thermal_time_constant_s
        for w in range(n):
            leak = max(0.0, p.leakage_w_per_c * (t_now - p.reference_temperature_c))
            power = p.base_power_w + dynamic[w] + leak
            # First-order RC toward the equilibrium temperature for this power.
            t_target = p.ambient_c + p.thermal_resistance_c_per_w * power
            t_now = t_now + alpha * (t_target - t_now)
            temperature[w] = t_now
            leakage[w] = leak
            total[w] = power
        return PowerTrace(
            window_s=window_s,
            base_power_w=p.base_power_w,
            total_w=total,
            dynamic_w=dynamic,
            leakage_w=leakage,
            temperature_c=temperature,
        )
