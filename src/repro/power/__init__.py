"""Power modeling and management: the subframe workload estimator
(Eqs. 3-4), the NONAP/IDLE/NAP/NAP+IDLE policies (Eq. 5), the chip power
model with thermal-leakage feedback, DAQ-style RMS measurement helpers,
and the analytical power-gating model (Eqs. 6-9).
"""

from .estimator import (
    WorkloadEstimator,
    all_configurations,
    calibrate_from_cost_model,
    calibrate_from_simulation,
    fit_slope_through_origin,
)
from .dvfs import DvfsModel, DvfsParams, DvfsTrace, OperatingPoint
from .energy import EnergyReport, energy_report, integrate_energy
from .gating import GatingTrace, PowerGatingModel, PowerGatingParams
from .governor import (
    OVER_PROVISION_CORES,
    POLICY_NAMES,
    IdlePolicy,
    NapIdlePolicy,
    NapPolicy,
    NonapPolicy,
    estimated_active_cores,
    make_policy,
)
from .measurement import SUPPLY_VOLTAGE_V, currents_from_voltages, rms_windows
from .model import PowerModel, PowerModelParams, PowerTrace

__all__ = [
    "WorkloadEstimator",
    "all_configurations",
    "calibrate_from_cost_model",
    "calibrate_from_simulation",
    "fit_slope_through_origin",
    "DvfsModel",
    "DvfsParams",
    "DvfsTrace",
    "OperatingPoint",
    "EnergyReport",
    "energy_report",
    "integrate_energy",
    "GatingTrace",
    "PowerGatingModel",
    "PowerGatingParams",
    "OVER_PROVISION_CORES",
    "POLICY_NAMES",
    "IdlePolicy",
    "NapIdlePolicy",
    "NapPolicy",
    "NonapPolicy",
    "estimated_active_cores",
    "make_policy",
    "SUPPLY_VOLTAGE_V",
    "currents_from_voltages",
    "rms_windows",
    "PowerModel",
    "PowerModelParams",
    "PowerTrace",
]
