"""DAQ-style power measurement emulation (Section V-B).

The paper samples the voltage drop across two precision resistors in the
buck converter's phases at 8 µs, converts to current, and reports the RMS
over 100 ms windows at a 1.0 V supply (so current equals power). These
helpers reproduce that pipeline for tests and for consumers who want to
post-process fine-grained power samples the same way.
"""

from __future__ import annotations

import numpy as np

__all__ = ["currents_from_voltages", "rms_windows", "SUPPLY_VOLTAGE_V"]

#: TILEPro64 supply voltage: 1.0 V, so measured amps equal watts.
SUPPLY_VOLTAGE_V = 1.0


def currents_from_voltages(
    v_phase_a: np.ndarray,
    v_phase_b: np.ndarray,
    resistance_a_ohm: float,
    resistance_b_ohm: float,
) -> np.ndarray:
    """Sum the two buck-converter phase currents (V = I·R per phase)."""
    if resistance_a_ohm <= 0 or resistance_b_ohm <= 0:
        raise ValueError("resistances must be positive")
    v_phase_a = np.asarray(v_phase_a, dtype=np.float64)
    v_phase_b = np.asarray(v_phase_b, dtype=np.float64)
    if v_phase_a.shape != v_phase_b.shape:
        raise ValueError("phase sample arrays must have equal shape")
    return v_phase_a / resistance_a_ohm + v_phase_b / resistance_b_ohm


def rms_windows(samples: np.ndarray, samples_per_window: int) -> np.ndarray:
    """RMS over consecutive windows (trailing partial window dropped).

    "The current varies rapidly, so we compute the root mean square (RMS)
    value of the current for every 100 milliseconds."
    """
    if samples_per_window < 1:
        raise ValueError("samples_per_window must be >= 1")
    samples = np.asarray(samples, dtype=np.float64).reshape(-1)
    n_windows = samples.size // samples_per_window
    if n_windows == 0:
        raise ValueError("not enough samples for a single window")
    trimmed = samples[: n_windows * samples_per_window]
    windows = trimmed.reshape(n_windows, samples_per_window)
    return np.sqrt(np.mean(windows**2, axis=1))
