"""Power-aware resource-management policies (Section VI-B).

Four policies, exactly the paper's:

* **NONAP** — all workers always active; idle workers busy-spin.
* **IDLE** (reactive) — workers that find no work execute ``nap`` and wake
  periodically to re-check.
* **NAP** (proactive) — Eq. 5: ``active_cores = estimated_activity ×
  max_cores + 2``; surplus workers are napped and do not look for work.
* **NAP+IDLE** — both combined.

Each policy object plugs into :class:`repro.sim.machine.MachineSimulator`
(``reactive_nap`` flag + ``target_active_workers``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..uplink.user import UserParameters
from .estimator import WorkloadEstimator

__all__ = [
    "OVER_PROVISION_CORES",
    "NonapPolicy",
    "IdlePolicy",
    "NapPolicy",
    "NapIdlePolicy",
    "estimated_active_cores",
    "make_policy",
    "POLICY_NAMES",
]

#: Eq. 5's safety margin: "the system is over-provisioned with two cores".
OVER_PROVISION_CORES = 2


def estimated_active_cores(
    estimated_activity: float,
    max_cores: int,
    over_provision: int = OVER_PROVISION_CORES,
) -> int:
    """Eq. 5, before clamping to the physically available workers."""
    if max_cores < 1:
        raise ValueError("max_cores must be >= 1")
    if estimated_activity < 0:
        raise ValueError("estimated_activity must be >= 0")
    return int(math.ceil(estimated_activity * max_cores)) + over_provision


@dataclass
class NonapPolicy:
    """All workers active, idle workers spin (the baseline)."""

    num_workers: int
    reactive_nap: bool = False
    name: str = "NONAP"

    def target_active_workers(
        self, users: list[UserParameters], subframe_index: int
    ) -> int:
        return self.num_workers


@dataclass
class IdlePolicy:
    """Reactive: nap whenever a worker finds nothing to do."""

    num_workers: int
    reactive_nap: bool = True
    name: str = "IDLE"

    def target_active_workers(
        self, users: list[UserParameters], subframe_index: int
    ) -> int:
        return self.num_workers


class NapPolicy:
    """Proactive: nap workers beyond the Eq. 5 estimate (+2 margin)."""

    name = "NAP"
    reactive_nap = False

    def __init__(
        self,
        num_workers: int,
        estimator: WorkloadEstimator,
        over_provision: int = OVER_PROVISION_CORES,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.estimator = estimator
        self.over_provision = over_provision
        #: Raw Eq. 5 value per processed subframe (for Fig. 13 / gating).
        self.active_cores_history: list[int] = []

    def target_active_workers(
        self, users: list[UserParameters], subframe_index: int
    ) -> int:
        estimate = self.estimator.estimate_subframe(users)
        raw = estimated_active_cores(
            estimate, self.num_workers, self.over_provision
        )
        self.active_cores_history.append(raw)
        return min(self.num_workers, raw)


class NapIdlePolicy(NapPolicy):
    """Proactive Eq. 5 napping plus reactive napping of the active set."""

    name = "NAP+IDLE"
    reactive_nap = True


POLICY_NAMES = ("NONAP", "IDLE", "NAP", "NAP+IDLE")


def make_policy(
    name: str,
    num_workers: int,
    estimator: WorkloadEstimator | None = None,
    over_provision: int = OVER_PROVISION_CORES,
):
    """Factory by paper name ("NONAP", "IDLE", "NAP", "NAP+IDLE")."""
    key = name.strip().upper()
    if key == "NONAP":
        return NonapPolicy(num_workers)
    if key == "IDLE":
        return IdlePolicy(num_workers)
    if key in ("NAP", "NAP+IDLE", "NAPIDLE"):
        if estimator is None:
            raise ValueError(f"policy {name!r} requires a WorkloadEstimator")
        cls = NapPolicy if key == "NAP" else NapIdlePolicy
        return cls(num_workers, estimator, over_provision)
    raise ValueError(f"unknown policy {name!r}")
