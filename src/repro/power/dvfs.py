"""DVFS extension (Section VII: "we could also use [the workload
estimation] in combination with DVFS to create further power management
opportunities").

The paper does not evaluate DVFS; this module implements the natural
design it hints at, in the same analytical style as the power-gating
model: per subframe, the estimated activity picks the lowest
frequency/voltage operating point that still leaves deadline headroom,
and the chip's *dynamic* power scales by ``(f/f_nom) · (V/V_nom)²``.

Like Eq. 7, the chosen point is held for the maximum demand over the
5-subframe visibility window (two ahead known, three in flight), and each
operating-point switch costs a fixed overhead for one subframe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OperatingPoint", "DvfsParams", "DvfsTrace", "DvfsModel"]


@dataclass(frozen=True)
class OperatingPoint:
    """One frequency/voltage step.

    ``frequency`` and ``voltage`` are relative to nominal (1.0, 1.0).
    """

    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency <= 1.0:
            raise ValueError("frequency must be in (0, 1]")
        if not 0.0 < self.voltage <= 1.0:
            raise ValueError("voltage must be in (0, 1]")

    @property
    def dynamic_power_factor(self) -> float:
        """P_dyn ∝ f · V²."""
        return self.frequency * self.voltage**2


#: A realistic four-step ladder: voltage falls more slowly than frequency.
DEFAULT_LADDER = (
    OperatingPoint(frequency=0.25, voltage=0.70),
    OperatingPoint(frequency=0.50, voltage=0.80),
    OperatingPoint(frequency=0.75, voltage=0.90),
    OperatingPoint(frequency=1.00, voltage=1.00),
)


@dataclass(frozen=True)
class DvfsParams:
    """Knobs of the analytical DVFS model."""

    ladder: tuple[OperatingPoint, ...] = DEFAULT_LADDER
    #: Utilization ceiling: pick the slowest point with activity/f below it.
    headroom: float = 0.9
    #: Extra power for one subframe on every operating-point switch (W).
    switch_overhead_w: float = 0.2
    lookahead_subframes: int = 2
    lookbehind_subframes: int = 2

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder must contain at least one operating point")
        freqs = [p.frequency for p in self.ladder]
        if freqs != sorted(freqs):
            raise ValueError("ladder must be sorted by ascending frequency")
        if freqs[-1] != 1.0:
            raise ValueError("ladder must include the nominal point (f=1.0)")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        if self.switch_overhead_w < 0:
            raise ValueError("switch_overhead_w must be >= 0")


@dataclass
class DvfsTrace:
    """Per-subframe DVFS decisions."""

    frequency: np.ndarray
    power_factor: np.ndarray
    switch_overhead_w: np.ndarray

    def mean_power_factor(self) -> float:
        return float(self.power_factor.mean())


class DvfsModel:
    """Chooses operating points from estimated activity and scales power."""

    def __init__(self, params: DvfsParams | None = None) -> None:
        self.params = params or DvfsParams()

    def select_point(self, estimated_activity: float) -> OperatingPoint:
        """Slowest ladder point that keeps utilization under the headroom."""
        if estimated_activity < 0:
            raise ValueError("estimated_activity must be >= 0")
        for point in self.params.ladder:
            if estimated_activity <= self.params.headroom * point.frequency:
                return point
        return self.params.ladder[-1]

    def evaluate(self, estimated_activity: np.ndarray) -> DvfsTrace:
        """Per-subframe decisions with the 5-subframe visibility window."""
        p = self.params
        activity = np.asarray(estimated_activity, dtype=np.float64)
        n = activity.size
        # Hold the maximum demand over [i-2, i+2], like Eq. 7.
        demanded = np.empty(n)
        for i in range(n):
            lo = max(0, i - p.lookbehind_subframes)
            hi = min(n, i + p.lookahead_subframes + 1)
            demanded[i] = activity[lo:hi].max()
        points = [self.select_point(a) for a in demanded]
        freq = np.array([pt.frequency for pt in points])
        factor = np.array([pt.dynamic_power_factor for pt in points])
        switches = np.concatenate([[0.0], (np.diff(freq) != 0).astype(float)])
        return DvfsTrace(
            frequency=freq,
            power_factor=factor,
            switch_overhead_w=switches * p.switch_overhead_w,
        )

    def apply_to_power(
        self,
        dynamic_power_w: np.ndarray,
        window_s: float,
        estimated_activity: np.ndarray,
        subframe_period_s: float,
    ) -> np.ndarray:
        """Scale a per-window *dynamic* power trace by the DVFS factors.

        Returns the adjusted dynamic power (base power is unaffected by
        DVFS of the cores and must be added back by the caller).
        """
        if window_s <= 0 or subframe_period_s <= 0:
            raise ValueError("window_s and subframe_period_s must be positive")
        trace = self.evaluate(estimated_activity)
        dynamic = np.asarray(dynamic_power_w, dtype=np.float64)
        per_window = int(round(window_s / subframe_period_s))
        if per_window < 1:
            raise ValueError("window must cover at least one subframe")
        adjusted = dynamic.copy()
        for w in range(dynamic.size):
            lo = w * per_window
            hi = min(trace.power_factor.size, lo + per_window)
            if lo >= trace.power_factor.size:
                break
            adjusted[w] = (
                dynamic[w] * trace.power_factor[lo:hi].mean()
                + trace.switch_overhead_w[lo:hi].mean()
            )
        return adjusted
