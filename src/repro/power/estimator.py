"""Subframe workload estimation (Section VI-A, Eqs. 3-4).

The paper observes (Fig. 11) that activity is linear in the PRB count for
a fixed (layers, modulation) configuration, fits one slope ``k_LM`` per
configuration, and estimates a subframe's workload as::

    estimated_user_activity = PRBs × k_LM                 (Eq. 3)
    estimated_activity      = Σ estimated_user_activity_i (Eq. 4)

Slopes can be obtained two ways:

* :func:`calibrate_from_cost_model` — analytically from the cycle cost
  model (instant; what a perfectly converged measurement would yield,
  minus per-task overheads, which Eq. 3's origin-through fit cannot
  represent);
* :func:`calibrate_from_simulation` — the paper's procedure: steady-state
  single-user runs per configuration over a PRB sweep, least-squares slope
  through the origin (used by the Fig. 11 bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..phy.params import ALL_MODULATIONS, MAX_LAYERS, Modulation
from ..sim.cost import CostModel
from ..uplink.parameter_model import SteadyStateParameterModel
from ..uplink.user import UserParameters

__all__ = [
    "WorkloadEstimator",
    "all_configurations",
    "calibrate_from_cost_model",
    "calibrate_from_simulation",
    "fit_slope_through_origin",
]

ConfigKey = tuple[int, str]


def all_configurations() -> list[tuple[int, Modulation]]:
    """The 12 (layers, modulation) configurations of Fig. 11."""
    return [
        (layers, modulation)
        for modulation in ALL_MODULATIONS
        for layers in range(1, MAX_LAYERS + 1)
    ]


def fit_slope_through_origin(prbs: np.ndarray, activities: np.ndarray) -> float:
    """Least-squares slope of activity vs PRBs with zero intercept (Eq. 3)."""
    prbs = np.asarray(prbs, dtype=np.float64)
    activities = np.asarray(activities, dtype=np.float64)
    if prbs.shape != activities.shape or prbs.size == 0:
        raise ValueError("prbs and activities must be equal-length, non-empty")
    denom = float(np.dot(prbs, prbs))
    if denom == 0:
        raise ValueError("all PRB values are zero")
    return float(np.dot(prbs, activities) / denom)


@dataclass
class WorkloadEstimator:
    """Holds the per-configuration slopes and applies Eqs. 3-4."""

    slopes: dict[ConfigKey, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, value in self.slopes.items():
            if value <= 0:
                raise ValueError(f"slope for {key} must be positive, got {value}")

    def slope(self, layers: int, modulation: Modulation) -> float:
        try:
            return self.slopes[(layers, modulation.value)]
        except KeyError:
            raise KeyError(
                f"no calibration for {layers} layers / {modulation.value}"
            ) from None

    def estimate_user(self, user: UserParameters) -> float:
        """Eq. 3: one user's estimated activity share."""
        return user.num_prb * self.slope(user.layers, user.modulation)

    def estimate_subframe(self, users: list[UserParameters]) -> float:
        """Eq. 4: sum over the subframe's users."""
        return float(sum(self.estimate_user(u) for u in users))


def calibrate_from_cost_model(cost: CostModel, reference_prb: int = 200) -> WorkloadEstimator:
    """Analytic slopes: activity per PRB straight from the cost model.

    Uses a large reference allocation so constant per-task overheads are
    amortized the same way a measurement-based fit would amortize them.
    """
    if reference_prb < 2:
        raise ValueError("reference_prb must be >= 2")
    slopes: dict[ConfigKey, float] = {}
    for layers, modulation in all_configurations():
        user = UserParameters(
            user_id=0, num_prb=reference_prb, layers=layers, modulation=modulation
        )
        slopes[(layers, modulation.value)] = cost.user_activity(user) / reference_prb
    return WorkloadEstimator(slopes=slopes)


def calibrate_from_simulation(
    cost: CostModel,
    prb_values: list[int] | None = None,
    settle_subframes: int = 40,
    measure_subframes: int = 160,
) -> tuple[WorkloadEstimator, dict[ConfigKey, tuple[np.ndarray, np.ndarray]]]:
    """The paper's calibration: steady-state sweeps on the simulator.

    For every (layers, modulation) configuration and every PRB count, a
    single fixed user is dispatched every DELTA; activity is measured from
    the simulator's compute-cycle trace after a settling period
    (Section VI-A uses 10 s per point; the defaults here use a shorter
    window that converges to the same slopes).

    Returns the fitted estimator plus the raw (prbs, activities) sweep per
    configuration — the data behind Fig. 11.
    """
    from ..sim.machine import AlwaysOnPolicy, MachineSimulator, SimConfig

    if prb_values is None:
        prb_values = list(range(2, 201, 18))
    if min(prb_values) < 2 or max(prb_values) > 200:
        raise ValueError("prb_values must lie within [2, 200]")
    slopes: dict[ConfigKey, float] = {}
    sweeps: dict[ConfigKey, tuple[np.ndarray, np.ndarray]] = {}
    total = settle_subframes + measure_subframes
    window_s = cost.machine.subframe_period_s
    for layers, modulation in all_configurations():
        activities = []
        for num_prb in prb_values:
            model = SteadyStateParameterModel(
                num_prb=num_prb, layers=layers, modulation=modulation
            )
            simulator = MachineSimulator(
                cost,
                policy=AlwaysOnPolicy(cost.machine.num_workers),
                config=SimConfig(window_s=window_s, drain_margin_s=0.0),
            )
            result = simulator.run(model, num_subframes=total)
            activity = result.trace.activity()
            activities.append(float(activity[settle_subframes:total].mean()))
        prbs = np.array(prb_values, dtype=np.float64)
        acts = np.array(activities, dtype=np.float64)
        key = (layers, modulation.value)
        slopes[key] = fit_slope_through_origin(prbs, acts)
        sweeps[key] = (prbs, acts)
    return WorkloadEstimator(slopes=slopes), sweeps
