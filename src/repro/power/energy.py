"""Energy accounting on top of the power traces.

The paper argues in watts; operators think in energy ("reduce the
operational cost, which is a large portion of the base station total
cost-of-ownership", Section I). These helpers integrate power traces to
energy and derive the adoption-relevant figures of merit: joules per run,
kWh per day per cell, and energy per decoded information bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import PowerTrace

__all__ = ["EnergyReport", "integrate_energy", "energy_report", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400.0


def integrate_energy(power_w: np.ndarray, window_s: float) -> float:
    """Trapezoid-free integration: each window holds its mean power."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    power_w = np.asarray(power_w, dtype=np.float64)
    if power_w.size == 0:
        raise ValueError("power trace must be non-empty")
    return float(power_w.sum() * window_s)


@dataclass
class EnergyReport:
    """Energy figures of merit for one policy run."""

    duration_s: float
    energy_j: float
    mean_power_w: float
    #: Projected energy per day at this operating point (kWh).
    daily_kwh: float
    #: Energy per decoded information bit, if a bit count was supplied.
    joules_per_bit: float | None = None

    def savings_vs(self, baseline: "EnergyReport") -> float:
        """Fractional energy saving relative to a baseline run."""
        if baseline.energy_j <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - self.energy_j / baseline.energy_j


def energy_report(
    power: PowerTrace | np.ndarray,
    window_s: float | None = None,
    decoded_bits: int | None = None,
) -> EnergyReport:
    """Build an :class:`EnergyReport` from a power trace.

    Accepts either a :class:`~repro.power.model.PowerTrace` (window length
    taken from it) or a raw per-window watts array plus ``window_s``.
    """
    if isinstance(power, PowerTrace):
        watts = power.total_w
        window_s = power.window_s
    else:
        watts = np.asarray(power, dtype=np.float64)
        if window_s is None:
            raise ValueError("window_s is required for raw power arrays")
    energy = integrate_energy(watts, window_s)
    duration = watts.size * window_s
    mean_power = energy / duration
    joules_per_bit = None
    if decoded_bits is not None:
        if decoded_bits <= 0:
            raise ValueError("decoded_bits must be positive")
        joules_per_bit = energy / decoded_bits
    return EnergyReport(
        duration_s=duration,
        energy_j=energy,
        mean_power_w=mean_power,
        daily_kwh=mean_power * SECONDS_PER_DAY / 3.6e6,
        joules_per_bit=joules_per_bit,
    )
