"""Static power reduction through (analytical) power gating (Section VI-C).

The paper's platform cannot power-gate cores, so it — and therefore we —
model gating analytically on top of the NAP+IDLE run:

* cores are managed in groups of eight (eight power domains on a 64-core
  chip), Eq. 6: ``active = ceil(active_cores / 8) × 8``;
* the schedule is known two subframes ahead and up to three subframes are
  in flight, so the powered count is the maximum of Eq. 6 over a window of
  five consecutive subframes, Eq. 7;
* 25 % of the 14 W base power (3.5 W) is attributed to the 64 idle cores
  → 55 mW static power per core; toggling a core on or off costs 15 mW
  for one subframe, Eq. 8;
* the saving per subframe is Eq. 9:
  ``(64 − powered) × 0.055 − OH``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerGatingParams", "PowerGatingModel", "GatingTrace"]


@dataclass(frozen=True)
class PowerGatingParams:
    """Constants of Section VI-C."""

    total_cores: int = 64
    group_size: int = 8
    static_power_per_core_w: float = 0.055
    toggle_overhead_per_core_w: float = 0.015
    lookahead_subframes: int = 2
    lookbehind_subframes: int = 2

    def __post_init__(self) -> None:
        if self.total_cores < 1 or self.group_size < 1:
            raise ValueError("total_cores and group_size must be >= 1")
        if self.total_cores % self.group_size:
            raise ValueError("total_cores must be a multiple of group_size")
        if self.static_power_per_core_w < 0 or self.toggle_overhead_per_core_w < 0:
            raise ValueError("power constants must be >= 0")
        if self.lookahead_subframes < 0 or self.lookbehind_subframes < 0:
            raise ValueError("window extents must be >= 0")


@dataclass
class GatingTrace:
    """Per-subframe gating decisions and savings."""

    active: np.ndarray  # Eq. 6, group-quantized active cores
    powered: np.ndarray  # Eq. 7, max over the 5-subframe window
    overhead_w: np.ndarray  # Eq. 8
    saving_w: np.ndarray  # Eq. 9

    def mean_saving(self) -> float:
        return float(self.saving_w.mean())


class PowerGatingModel:
    """Applies Eqs. 6-9 to a trace of estimated active core counts."""

    def __init__(self, params: PowerGatingParams | None = None) -> None:
        self.params = params or PowerGatingParams()

    def quantize(self, active_cores: np.ndarray) -> np.ndarray:
        """Eq. 6: round up to whole power-gating groups."""
        p = self.params
        active = np.ceil(np.asarray(active_cores, dtype=np.float64) / p.group_size)
        return np.clip(active * p.group_size, 0, p.total_cores).astype(np.int64)

    def powered_window(self, active: np.ndarray) -> np.ndarray:
        """Eq. 7: max over [i-2, i+2] (two ahead known, three in flight)."""
        p = self.params
        active = np.asarray(active, dtype=np.int64)
        n = active.size
        powered = np.empty(n, dtype=np.int64)
        for i in range(n):
            lo = max(0, i - p.lookbehind_subframes)
            hi = min(n, i + p.lookahead_subframes + 1)
            powered[i] = active[lo:hi].max()
        return powered

    def evaluate(self, active_cores: np.ndarray) -> GatingTrace:
        """Full Eqs. 6-9 pipeline over a per-subframe active-cores trace."""
        p = self.params
        active = self.quantize(active_cores)
        powered = self.powered_window(active)
        toggles = np.abs(np.diff(powered, prepend=powered[:1]))
        overhead = toggles * p.toggle_overhead_per_core_w
        saving = (p.total_cores - powered) * p.static_power_per_core_w - overhead
        return GatingTrace(
            active=active,
            powered=powered,
            overhead_w=overhead,
            saving_w=saving,
        )

    def apply_to_power(
        self,
        power_w: np.ndarray,
        window_s: float,
        active_cores: np.ndarray,
        subframe_period_s: float,
    ) -> np.ndarray:
        """Subtract per-subframe savings from a per-window power trace.

        Savings are averaged over the subframes falling inside each power
        window (the paper's Fig. 16 subtracts Eq. 9 from the NAP+IDLE
        measurement)."""
        if window_s <= 0 or subframe_period_s <= 0:
            raise ValueError("window_s and subframe_period_s must be positive")
        trace = self.evaluate(active_cores)
        power_w = np.asarray(power_w, dtype=np.float64)
        per_window = int(round(window_s / subframe_period_s))
        if per_window < 1:
            raise ValueError("window must cover at least one subframe")
        gated = power_w.copy()
        for w in range(power_w.size):
            lo = w * per_window
            hi = min(trace.saving_w.size, lo + per_window)
            if lo >= trace.saving_w.size:
                break
            gated[w] -= trace.saving_w[lo:hi].mean()
        return gated
