"""Spawn/pickle-boundary rules (REP521/REP522).

The multiprocess runtime uses the ``spawn`` start method: everything
that reaches a worker — ``Process(target=..., args=...)`` at pool
start, every object written to a worker pipe with ``send()`` — is
pickled in the parent and rebuilt in a fresh interpreter. Some values
survive that trip syntactically but are semantically wrong (or fail
outright) on the other side:

* locks (a pickled lock either raises or rebuilds unlocked, silently
  dropping mutual exclusion);
* open file objects (the descriptor does not travel);
* RNG state (each side advances its own copy — determinism splits);
* module-level mutable singletons (the child gets a snapshot; parent
  mutations after spawn are invisible, a classic source of "works
  threaded, breaks multiprocess" drift);
* lambdas and nested functions (not picklable at all under spawn).

* ``REP521`` — a value with one of those shapes crosses a spawn/pipe
  boundary (``Process`` args/kwargs or a ``send()`` argument). Locks,
  files, RNG and lambdas are errors; module-level mutable singletons are
  warnings (sending a snapshot is occasionally intended — suppress with
  a justification).
* ``REP522`` — the ``Process(target=...)`` callable itself is
  unpicklable or drags hidden state: a lambda, a function defined inside
  another function, or a bound method of a class that owns locks (the
  whole instance, lock included, is pickled).

Detection is shallow by design: it indexes names assigned from lock
constructors / ``open()`` / RNG factories and module-level mutable
literals, then flags those names inside boundary expressions. State
hidden behind object graphs is the runtime witness's problem, not this
rule's. Scope: any file that imports :mod:`multiprocessing`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .concurrency import _is_lock_ctor
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import Rule, register

__all__ = ["SpawnArgumentRule", "SpawnTargetRule"]

_RNG_FACTORIES = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)


def _uses_multiprocessing(ctx: ModuleContext) -> bool:
    return any(
        target == "multiprocessing" or target.startswith("multiprocessing.")
        for target in ctx.import_aliases.values()
    )


def _is_open_call(ctx: ModuleContext, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    qname = ctx.qualified_name(node.func)
    return qname is not None and (
        qname == "open" or qname.endswith(".open") or qname == "io.open"
    )


def _is_rng_call(ctx: ModuleContext, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    qname = ctx.qualified_name(node.func)
    return qname is not None and (
        qname in _RNG_FACTORIES or qname.endswith(".default_rng")
    )


@dataclass
class _UnsafeIndex:
    """Names in one module whose values must not cross a spawn boundary."""

    #: name -> human label ("a lock", "an open file", ...).
    names: dict[str, str] = field(default_factory=dict)
    #: module-level mutable literals (dict/list/set) by name.
    singletons: set[str] = field(default_factory=set)
    #: class name -> it declares lock attributes.
    lock_classes: set[str] = field(default_factory=set)
    #: nested (not module-level) function names.
    nested_defs: set[str] = field(default_factory=set)


def _build_index(ctx: ModuleContext) -> _UnsafeIndex:
    index = _UnsafeIndex()

    def classify(value: ast.expr | None) -> str | None:
        if value is None:
            return None
        if _is_lock_ctor(ctx, value):
            return "a lock"
        if _is_open_call(ctx, value):
            return "an open file"
        if _is_rng_call(ctx, value):
            return "RNG state"
        return None

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            label = classify(node.value)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if label is not None:
                    index.names[target.id] = label
        elif isinstance(node, ast.AnnAssign):
            label = classify(node.value)
            if label is not None and isinstance(node.target, ast.Name):
                index.names[node.target.id] = label

    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, (ast.Dict, ast.List, ast.Set)
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    index.singletons.add(target.id)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and _is_lock_ctor(
                    ctx, sub.value
                ):
                    index.lock_classes.add(node.name)
                    break
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if (
                    sub is not node
                    and isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                ):
                    index.nested_defs.add(sub.name)
    return index


def _is_process_call(ctx: ModuleContext, node: ast.Call) -> bool:
    qname = ctx.qualified_name(node.func)
    if qname is None:
        return False
    return qname == "Process" or qname.endswith(".Process")


def _target_expr(node: ast.Call) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == "target":
            return kw.value
    # multiprocessing.Process(group, target, ...)
    if len(node.args) >= 2:
        return node.args[1]
    return None


def _payload_exprs(node: ast.Call) -> Iterator[ast.expr]:
    """The expressions whose values actually travel: args= and kwargs=."""
    for kw in node.keywords:
        if kw.arg in ("args", "kwargs"):
            yield kw.value


class _SpawnRule(Rule):
    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _uses_multiprocessing(ctx):
            return
        index = _build_index(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self.check_call(ctx, index, node)

    def check_call(
        self, ctx: ModuleContext, index: _UnsafeIndex, node: ast.Call
    ) -> Iterator[Finding]:
        raise NotImplementedError


@register
class SpawnArgumentRule(_SpawnRule):
    """REP521: no locks/files/RNG/lambdas through spawn args or pipes."""

    rule_id = "REP521"
    severity = Severity.ERROR
    description = (
        "lock, open file, RNG state, lambda, or module-level mutable "
        "singleton crosses a spawn/pipe boundary (Process args or send())"
    )

    def check_call(
        self, ctx: ModuleContext, index: _UnsafeIndex, node: ast.Call
    ) -> Iterator[Finding]:
        if _is_process_call(ctx, node):
            payloads = list(_payload_exprs(node))
            boundary = "Process(...) argument"
        elif (
            isinstance(node.func, ast.Attribute) and node.func.attr == "send"
        ):
            payloads = list(node.args)
            boundary = "pipe send()"
        else:
            return
        for payload in payloads:
            for sub in ast.walk(payload):
                if isinstance(sub, ast.Lambda):
                    yield self.finding(
                        ctx,
                        sub.lineno,
                        sub.col_offset,
                        f"lambda in a {boundary} cannot be pickled under "
                        "the spawn start method",
                    )
                elif isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load
                ):
                    label = index.names.get(sub.id)
                    if label is not None:
                        yield self.finding(
                            ctx,
                            sub.lineno,
                            sub.col_offset,
                            f"'{sub.id}' ({label}) crosses a {boundary}; "
                            "it does not survive pickling to a spawned "
                            "worker",
                        )
                    elif sub.id in index.singletons:
                        yield Finding(
                            path=ctx.relpath,
                            line=sub.lineno,
                            col=sub.col_offset,
                            rule_id=self.rule_id,
                            message=(
                                f"module-level mutable singleton "
                                f"'{sub.id}' crosses a {boundary}; the "
                                "worker gets a divergent snapshot"
                            ),
                            severity=Severity.WARNING,
                        )


@register
class SpawnTargetRule(_SpawnRule):
    """REP522: Process targets must be picklable, state-free callables."""

    rule_id = "REP522"
    severity = Severity.ERROR
    description = (
        "Process(target=...) is a lambda, nested function, or bound "
        "method of a lock-owning class; it cannot (or should not) be "
        "pickled to a spawned worker"
    )

    def check_call(
        self, ctx: ModuleContext, index: _UnsafeIndex, node: ast.Call
    ) -> Iterator[Finding]:
        if not _is_process_call(ctx, node):
            return
        target = _target_expr(node)
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            yield self.finding(
                ctx,
                target.lineno,
                target.col_offset,
                "Process target is a lambda; lambdas cannot be pickled "
                "under the spawn start method",
            )
        elif isinstance(target, ast.Name) and target.id in index.nested_defs:
            yield self.finding(
                ctx,
                target.lineno,
                target.col_offset,
                f"Process target '{target.id}' is defined inside another "
                "function; nested functions cannot be pickled under "
                "spawn — move it to module level",
            )
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            enclosing = _enclosing_lock_class(ctx, target, index)
            if enclosing is not None:
                yield self.finding(
                    ctx,
                    target.lineno,
                    target.col_offset,
                    f"Process target 'self.{target.attr}' is a bound "
                    f"method of {enclosing}, which owns locks; spawning "
                    "pickles the whole instance, lock state included",
                )


def _enclosing_lock_class(
    ctx: ModuleContext, target: ast.expr, index: _UnsafeIndex
) -> str | None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name in index.lock_classes:
            for sub in ast.walk(node):
                if sub is target:
                    return node.name
    return None
