"""Baseline files: adopt the linter on a tree with pre-existing findings.

A baseline is a JSON list of finding fingerprints (rule, path, message —
deliberately no line number, so unrelated edits that shift lines do not
resurrect baselined findings). ``repro lint --baseline FILE`` filters
matching findings; ``--update-baseline`` rewrites the file from the
current findings so the debt can only shrink deliberately.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from .findings import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """A set of accepted finding fingerprints."""

    def __init__(self, entries: Iterable[tuple[str, str, str]] = ()) -> None:
        self.entries: set[tuple[str, str, str]] = set(entries)

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        return cls(
            (e["rule"], e["path"], e["message"]) for e in data.get("entries", [])
        )

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> Baseline:
        return cls(f.fingerprint() for f in findings)

    def save(self, path: str | Path) -> None:
        records = [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in sorted(self.entries)
        ]
        Path(path).write_text(
            json.dumps({"version": _VERSION, "entries": records}, indent=2)
            + "\n",
            encoding="utf-8",
        )

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def __len__(self) -> int:
        return len(self.entries)
