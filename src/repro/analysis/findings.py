"""Finding records produced by the static-analysis rules.

A :class:`Finding` is one rule violation at one source location. Findings
are value objects: hashable, totally ordered by location, and round-trip
through plain dicts for the ``--format json`` output and the baseline
file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Finding"]


class Severity(str, enum.Enum):
    """How bad a finding is. Values double as the JSON ``severity`` field."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    path:
        Source file, relative to the lint root when possible.
    line, col:
        1-based line and 0-based column (the :mod:`ast` convention).
    rule_id:
        Stable rule identifier (``REP101``, ``REP203``, ...).
    message:
        Human-readable description of the violation.
    severity:
        :class:`Severity` of the rule that produced the finding.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def to_dict(self) -> dict:
        """Flat dict for JSON output (and :meth:`from_dict` round-trips)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, record: dict) -> Finding:
        return cls(
            path=record["path"],
            line=int(record["line"]),
            col=int(record.get("col", 0)),
            rule_id=record["rule"],
            message=record["message"],
            severity=Severity(record.get("severity", "error")),
        )

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-independent identity used by the baseline (survives drift)."""
        return (self.rule_id, self.path, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
