"""The lint driver: file collection, rule execution, filtering.

:func:`lint_paths` is the programmatic entry point (the CLI is a thin
wrapper): expand paths to ``*.py`` files, parse each into a
:class:`~repro.analysis.context.ModuleContext`, run every per-file rule
on every context and every project rule once over the whole set, then
filter inline/file suppressions and the optional baseline.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import ProjectRule, Rule, default_rules

__all__ = ["LintUsageError", "LintResult", "collect_files", "lint_paths"]

#: Rule id attached to files that fail to parse.
SYNTAX_RULE_ID = "REP001"


class LintUsageError(Exception):
    """Bad invocation (nonexistent path, unknown rule): CLI exit code 2."""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise LintUsageError(f"not a Python file: {path}")
            candidates = [path]
        else:
            raise LintUsageError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _relpath(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint ``paths`` with ``rules`` (default: every registered rule)."""
    files = collect_files(paths)
    active_rules = list(rules) if rules is not None else default_rules()
    result = LintResult(files_checked=len(files))
    contexts: list[ModuleContext] = []
    raw_findings: list[Finding] = []

    for path in files:
        relpath = _relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(ModuleContext.parse(path, relpath, source))
        except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", None) or 1
            raw_findings.append(
                Finding(
                    path=relpath,
                    line=int(line),
                    col=0,
                    rule_id=SYNTAX_RULE_ID,
                    message=f"file could not be parsed: {exc}",
                    severity=Severity.ERROR,
                )
            )

    for rule in active_rules:
        if isinstance(rule, ProjectRule):
            raw_findings.extend(rule.check_project(contexts))
        else:
            for ctx in contexts:
                raw_findings.extend(rule.check_module(ctx))

    by_path = {ctx.relpath: ctx for ctx in contexts}
    for finding in sorted(raw_findings):
        ctx = by_path.get(finding.path)
        if ctx is not None:
            if finding.rule_id in ctx.file_suppressed_rules():
                result.suppressed += 1
                continue
            if finding.rule_id in ctx.suppressed_rules(finding.line):
                result.suppressed += 1
                continue
        if baseline is not None and baseline.contains(finding):
            result.baselined += 1
            continue
        result.findings.append(finding)
    return result
