"""The lint driver: file collection, rule execution, filtering.

:func:`lint_paths` is the programmatic entry point (the CLI is a thin
wrapper): expand paths to ``*.py`` files, parse each into a
:class:`~repro.analysis.context.ModuleContext`, run every per-file rule
on every context and every project rule once over the whole set, then
filter inline/file suppressions and the optional baseline.
"""

from __future__ import annotations

import subprocess
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .cache import AnalysisCache
from .context import ModuleContext
from .findings import Finding, Severity
from .registry import ProjectRule, Rule, default_rules

__all__ = [
    "LintUsageError",
    "LintResult",
    "changed_files",
    "collect_files",
    "lint_paths",
]

#: Rule id attached to files that fail to parse.
SYNTAX_RULE_ID = "REP001"


class LintUsageError(Exception):
    """Bad invocation (nonexistent path, unknown rule): CLI exit code 2."""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise LintUsageError(f"not a Python file: {path}")
            candidates = [path]
        else:
            raise LintUsageError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _relpath(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def changed_files(root: str | Path = ".") -> set[Path]:
    """Resolved paths of files git considers changed or untracked.

    "Changed" is relative to HEAD (staged and unstaged edits both count),
    plus untracked files that are not ignored — exactly the set a
    pre-push lint should look at.
    """
    root = Path(root)
    commands = [
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    out: set[Path] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=root,
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = ""
            stderr = getattr(exc, "stderr", "") or ""
            if stderr.strip():
                detail = f": {stderr.strip().splitlines()[0]}"
            raise LintUsageError(
                f"--changed requires a git checkout ({' '.join(command)} "
                f"failed{detail})"
            ) from exc
        for line in proc.stdout.splitlines():
            if line.strip():
                out.add((root / line.strip()).resolve())
    return out


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
    cache: AnalysisCache | None = None,
    only: set[Path] | None = None,
) -> LintResult:
    """Lint ``paths`` with ``rules`` (default: every registered rule).

    ``only`` restricts the collected files to those whose resolved path is
    in the set (the ``--changed`` selection). Project rules always see
    every collected file regardless of the cache — their findings depend
    on cross-file state — but ``only`` narrows what is collected in the
    first place, trading whole-tree visibility for speed.

    ``cache`` short-circuits per-file rules for files whose content and
    rule set match a previous run; suppressions and the baseline are
    applied after the cache, so they stay live even on a full cache hit.
    """
    files = collect_files(paths)
    if only is not None:
        files = [f for f in files if f.resolve() in only]
    active_rules = list(rules) if rules is not None else default_rules()
    file_rules = [r for r in active_rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active_rules if isinstance(r, ProjectRule)]
    rules_token = ",".join(sorted(r.rule_id for r in file_rules))
    result = LintResult(files_checked=len(files))
    contexts: list[ModuleContext] = []
    raw_findings: list[Finding] = []

    for path in files:
        relpath = _relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raw_findings.append(
                Finding(
                    path=relpath,
                    line=1,
                    col=0,
                    rule_id=SYNTAX_RULE_ID,
                    message=f"file could not be parsed: {exc}",
                    severity=Severity.ERROR,
                )
            )
            continue
        if cache is not None:
            cached = cache.lookup(relpath, source, rules_token)
            if cached is not None:
                result.cache_hits += 1
                raw_findings.extend(cached)
                # Project rules and suppression filtering still need the
                # AST; a parse failure would already be in the cache.
                try:
                    contexts.append(ModuleContext.parse(path, relpath, source))
                except (SyntaxError, ValueError):
                    pass
                continue
        try:
            ctx = ModuleContext.parse(path, relpath, source)
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            finding = Finding(
                path=relpath,
                line=int(line),
                col=0,
                rule_id=SYNTAX_RULE_ID,
                message=f"file could not be parsed: {exc}",
                severity=Severity.ERROR,
            )
            raw_findings.append(finding)
            if cache is not None:
                cache.store(relpath, source, rules_token, [finding])
            continue
        contexts.append(ctx)
        file_findings: list[Finding] = []
        for rule in file_rules:
            file_findings.extend(rule.check_module(ctx))
        raw_findings.extend(file_findings)
        if cache is not None:
            cache.store(relpath, source, rules_token, file_findings)

    for rule in project_rules:
        raw_findings.extend(rule.check_project(contexts))

    by_path = {ctx.relpath: ctx for ctx in contexts}
    for finding in sorted(raw_findings):
        ctx = by_path.get(finding.path)
        if ctx is not None:
            if finding.rule_id in ctx.file_suppressed_rules():
                result.suppressed += 1
                continue
            if finding.rule_id in ctx.suppressed_rules(finding.line):
                result.suppressed += 1
                continue
        if baseline is not None and baseline.contains(finding):
            result.baselined += 1
            continue
        result.findings.append(finding)
    if cache is not None:
        cache.save()
    return result
