"""Robustness rules: no silently swallowed failures in the runtimes.

The fault-injection campaign (:mod:`repro.faults.chaos`) only proves the
recovery paths that *run*; these rules statically forbid the handler
shapes that created the original silent-worker-death bug — a failure
caught and discarded so the scheduler wedges with no diagnostic:

* ``REP401`` — bare ``except:`` clauses. They catch ``SystemExit``,
  ``KeyboardInterrupt`` and the injector's
  :exc:`~repro.faults.injector.InjectedWorkerDeath` alike, so a planned
  worker death (or a Ctrl-C) can vanish into them. Name the exception
  type — ``except Exception`` at the widest.
* ``REP402`` — swallowed exceptions: a handler whose body is only
  ``pass``/``...``/``continue`` discards the failure without recording,
  re-raising, or recovering. Handlers must do *something* observable
  with the error (log it, append it to a failure list, emit an event,
  re-raise, return a fallback).

Scope: the scheduler runtimes and the fault layer itself
(:data:`ROBUST_PACKAGES`) — the modules whose swallowed errors turn into
hangs instead of tracebacks. Intentional discards (e.g. best-effort
cleanup on shutdown) take a ``# repro-lint: disable=REP402`` pragma with
a justification comment.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .context import ModuleContext
from .findings import Finding, Severity
from .registry import Rule, register

__all__ = ["ROBUST_PACKAGES", "BareExceptRule", "SwallowedExceptionRule"]

#: Packages where a swallowed exception becomes a hang or a silent wedge.
#: ``repro.obs`` is included: a swallowed error in an observer or in the
#: lockdep witness silently blinds the very diagnostics that would have
#: reported it.
ROBUST_PACKAGES: tuple[str, ...] = (
    "repro.sched",
    "repro.sim",
    "repro.faults",
    "repro.obs",
    "repro.serve",
)


def in_robust_scope(ctx: ModuleContext) -> bool:
    return any(
        ctx.module == pkg or ctx.module.startswith(pkg + ".")
        for pkg in ROBUST_PACKAGES
    )


class _ScopedRule(Rule):
    packages = ROBUST_PACKAGES

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_robust_scope(ctx):
            return
        yield from self.check_scoped(ctx)

    def check_scoped(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


@register
class BareExceptRule(_ScopedRule):
    """REP401: no bare ``except:`` in scheduler/simulator/fault code."""

    rule_id = "REP401"
    severity = Severity.ERROR
    description = (
        "bare 'except:' in runtime scope (catches KeyboardInterrupt and "
        "injected worker death; name the exception type)"
    )

    def check_scoped(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt and "
                    "injected faults alike; catch a named exception type "
                    "('except Exception' at the widest)",
                )


def _is_discard_stmt(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    # A lone `...` expression statement.
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register
class SwallowedExceptionRule(_ScopedRule):
    """REP402: exception handlers must record, recover, or re-raise."""

    rule_id = "REP402"
    severity = Severity.ERROR
    description = (
        "exception handler discards the failure (body is only pass/.../"
        "continue); record it, recover, or re-raise"
    )

    def check_scoped(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(_is_discard_stmt(stmt) for stmt in node.body):
                caught = ast.unparse(node.type) if node.type else "everything"
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"handler for {caught} swallows the exception silently; "
                    "a failure here becomes a hang, not a traceback — "
                    "record it (failure list, event, log) or re-raise",
                )
