"""Implementation of the ``repro lint`` subcommand.

Exit codes (stable, CI depends on them):

* ``0`` — no findings (after suppressions and baseline), or
  ``--update-baseline`` / ``--list-rules`` ran;
* ``1`` — at least one finding;
* ``2`` — usage error (nonexistent path, unknown rule id, bad baseline).
"""

from __future__ import annotations

import json
import sys
from typing import Any

from .baseline import Baseline
from .cache import AnalysisCache
from .driver import LintResult, LintUsageError, changed_files, lint_paths
from .findings import Severity
from .registry import default_rules, rule_catalogue

__all__ = ["run_lint", "result_to_json"]


def result_to_json(result: LintResult) -> dict[str, Any]:
    """The ``--format json`` document (and its schema, in one place)."""
    return {
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "cache_hits": result.cache_hits,
        "findings": [f.to_dict() for f in result.findings],
    }


def _escape_annotation(value: str, *, property: bool = False) -> str:
    """Escape per GitHub's workflow-command rules (order matters: % first)."""
    value = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property:
        value = value.replace(":", "%3A").replace(",", "%2C")
    return value


def _print_github(result: LintResult) -> None:
    """``::error``/``::warning`` workflow commands, one per finding.

    GitHub Actions turns these into inline PR annotations; everything else
    (the summary line) goes to stderr so it never parses as a command.
    """
    for finding in result.findings:
        command = (
            "warning" if finding.severity is Severity.WARNING else "error"
        )
        print(
            f"::{command} "
            f"file={_escape_annotation(finding.path, property=True)},"
            f"line={finding.line},"
            f"col={finding.col},"
            f"title={_escape_annotation(finding.rule_id, property=True)}"
            f"::{_escape_annotation(finding.message)}"
        )
    print(
        f"{result.files_checked} file(s) checked, "
        f"{len(result.findings)} finding(s)",
        file=sys.stderr,
    )


def _print_text(result: LintResult) -> None:
    for finding in result.findings:
        print(finding.render())
    tail = (
        f"{result.files_checked} file(s) checked, "
        f"{len(result.findings)} finding(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        tail += f" ({', '.join(extras)})"
    print(tail)


def run_lint(args) -> int:
    """Drive one lint run from parsed CLI arguments."""
    if getattr(args, "list_rules", False):
        for rule_id, severity, description in rule_catalogue():
            print(f"{rule_id} [{severity}] {description}")
        return 0

    select = None
    if getattr(args, "select", None):
        select = [r.strip() for r in args.select.split(",") if r.strip()]

    baseline = None
    baseline_path = getattr(args, "baseline", None)
    update_baseline = getattr(args, "update_baseline", False)
    if baseline_path and not update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro lint: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    cache = None
    cache_path = getattr(args, "cache", None)
    if cache_path:
        cache = AnalysisCache(cache_path)

    try:
        only = changed_files() if getattr(args, "changed", False) else None
        rules = default_rules(select)
        result = lint_paths(
            args.paths, rules=rules, baseline=baseline, cache=cache, only=only
        )
    except (LintUsageError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro lint: {message}", file=sys.stderr)
        return 2

    if update_baseline:
        if not baseline_path:
            print(
                "repro lint: --update-baseline requires --baseline PATH",
                file=sys.stderr,
            )
            return 2
        Baseline.from_findings(result.findings).save(baseline_path)
        count = len(result.findings)
        noun = "entry" if count == 1 else "entries"
        print(f"baseline written to {baseline_path} ({count} {noun})")
        return 0

    if args.format == "json":
        print(json.dumps(result_to_json(result), indent=2))
    elif args.format == "github":
        _print_github(result)
    else:
        _print_text(result)
    return 0 if result.ok else 1
