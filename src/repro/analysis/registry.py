"""Rule base classes and the process-wide rule registry.

Two rule shapes exist:

* :class:`Rule` — per-file: sees one :class:`~repro.analysis.context.ModuleContext`
  at a time (lock discipline, determinism);
* :class:`ProjectRule` — whole-tree: sees every context at once (the obs
  event-schema cross-check, which must correlate emit sites in one module
  with handler sites in another).

Rules self-register at import time via :func:`register`; the driver asks
:func:`default_rules` for the active set. Adding a rule is: subclass,
decorate, import the module from ``repro.analysis`` (see
``docs/static_analysis.md``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .context import ModuleContext
from .findings import Finding, Severity

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "default_rules",
    "rule_catalogue",
    "rules_covering",
]


class Rule:
    """A per-file analysis rule. Subclasses set the class attributes."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Package scope this rule is restricted to; empty means every file.
    #: This is *metadata* — scoped rules still enforce their own scope in
    #: check_module — but it is what :func:`rules_covering` audits, so a
    #: rule that filters by package without declaring it here fails the
    #: scope-coverage test, not silently narrows.
    packages: tuple[str, ...] = ()

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=ctx.relpath,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that needs the whole linted file set at once."""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, contexts: Iterable[ModuleContext]) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_cls.rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def default_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules (optionally only ``select`` ids)."""
    wanted = set(select) if select is not None else None
    if wanted is not None:
        unknown = wanted - _REGISTRY.keys()
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        cls()
        for rule_id, cls in sorted(_REGISTRY.items())
        if wanted is None or rule_id in wanted
    ]


def rules_covering(module: str) -> list[str]:
    """Rule ids whose declared scope includes ``module``.

    Unscoped rules (``packages == ()``) cover everything. This powers the
    scope-coverage regression test: every runtime module must stay under
    at least one concurrency/robustness rule even as packages move.
    """
    covered = []
    for rule_id, cls in sorted(_REGISTRY.items()):
        if not cls.packages or any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in cls.packages
        ):
            covered.append(rule_id)
    return covered


def rule_catalogue() -> list[tuple[str, str, str]]:
    """(id, severity, description) for every registered rule, sorted."""
    return [
        (rule_id, cls.severity.value, cls.description)
        for rule_id, cls in sorted(_REGISTRY.items())
    ]
