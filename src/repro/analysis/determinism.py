"""Determinism rules for the simulation / PHY / uplink model code.

``repro.sim`` replays must be bit-identical for a given seed (the
Section IV-D verification depends on it), so inside the deterministic
scope these rules forbid the three classic leak paths:

* ``REP201`` — wall-clock reads (``time.time``/``monotonic``/
  ``perf_counter``/..., ``datetime.now``): simulated time must come from
  the event engine, never the host clock;
* ``REP202`` — nondeterministically seeded randomness: unseeded
  ``np.random.default_rng()`` / ``np.random.RandomState()`` /
  ``random.Random()``, the legacy ``np.random.*`` global-state functions
  and bare ``random.*`` module functions, and ``random.SystemRandom``;
* ``REP203`` — ``for``-iteration (or ``list``/``tuple``/``iter``/
  ``enumerate`` materialisation) of a ``set`` where the consumption order
  can feed scheduling decisions; use ``sorted(...)``. Order-insensitive
  reductions (``len``/``min``/``max``/``sum``/``any``/``all``/
  ``sorted``/``frozenset``) are allowed.

Scope: modules under the packages in :data:`DETERMINISTIC_PACKAGES`
except :data:`EXCLUDED_MODULES` (``repro.uplink.benchmark`` paces real
submissions with ``time.monotonic`` by design), plus any file carrying a
``# repro-lint: deterministic-scope`` pragma.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .context import ModuleContext
from .findings import Finding, Severity
from .registry import Rule, register

__all__ = [
    "DETERMINISTIC_PACKAGES",
    "EXCLUDED_MODULES",
    "WallClockRule",
    "UnseededRngRule",
    "SetOrderRule",
]

#: Packages whose modules promise seed-reproducible behaviour.
DETERMINISTIC_PACKAGES: tuple[str, ...] = (
    "repro.sim",
    "repro.phy",
    "repro.uplink",
)

#: Modules inside the deterministic packages that are deliberately
#: real-time (the benchmark driver paces submissions on the host clock).
EXCLUDED_MODULES: tuple[str, ...] = ("repro.uplink.benchmark",)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: numpy legacy global-state RNG entry points (not an exhaustive numpy
#: API list — the ones that draw from the shared global BitGenerator).
_NUMPY_GLOBAL_RNG = frozenset(
    {
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.normal",
        "numpy.random.uniform",
        "numpy.random.standard_normal",
        "numpy.random.seed",
    }
)

#: Constructors that are deterministic *only* when given a seed argument.
_SEED_REQUIRED = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState", "random.Random"}
)

_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"len", "min", "max", "sum", "any", "all", "sorted", "frozenset", "set"}
)
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate"})


def in_deterministic_scope(ctx: ModuleContext) -> bool:
    if ctx.has_deterministic_pragma():
        return True
    if any(
        ctx.module == excluded or ctx.module.startswith(excluded + ".")
        for excluded in EXCLUDED_MODULES
    ):
        return False
    return any(
        ctx.module == pkg or ctx.module.startswith(pkg + ".")
        for pkg in DETERMINISTIC_PACKAGES
    )


class _ScopedRule(Rule):
    packages = DETERMINISTIC_PACKAGES

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_deterministic_scope(ctx):
            return
        yield from self.check_scoped(ctx)

    def check_scoped(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


@register
class WallClockRule(_ScopedRule):
    """REP201: no host-clock reads inside the deterministic scope."""

    rule_id = "REP201"
    severity = Severity.ERROR
    description = (
        "wall-clock call in deterministic simulation scope (use the event "
        "engine's simulated time)"
    )

    def check_scoped(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualified_name(node.func)
            if qualified in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"call to '{qualified}' reads the host clock; "
                    "deterministic modules must take time from the "
                    "simulation engine",
                )


@register
class UnseededRngRule(_ScopedRule):
    """REP202: all randomness must flow from an explicit seed."""

    rule_id = "REP202"
    severity = Severity.ERROR
    description = (
        "unseeded or global-state RNG in deterministic simulation scope "
        "(pass an explicit seed / Generator)"
    )

    def check_scoped(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualified_name(node.func)
            if qualified is None:
                continue
            if qualified in _SEED_REQUIRED and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"'{qualified}()' without a seed draws OS entropy; pass "
                    "an explicit seed",
                )
            elif qualified in _NUMPY_GLOBAL_RNG:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"'{qualified}' uses numpy's shared global RNG state; "
                    "use a seeded np.random.Generator instead",
                )
            elif qualified == "random.SystemRandom":
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "'random.SystemRandom' is OS entropy by definition and "
                    "can never replay",
                )
            elif qualified.startswith("random.") and qualified.count(".") == 1:
                if qualified == "random.Random":
                    continue  # handled by the seed check above
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"'{qualified}' uses the random module's hidden global "
                    "state; use a seeded random.Random or np.random.Generator",
                )


class _SetTypeIndex:
    """Names/attribute paths assigned or annotated as sets in this file."""

    _SET_ANNOTATIONS = ("set", "Set", "frozenset", "FrozenSet", "MutableSet")

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.set_paths: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                for target in node.targets:
                    self._note(target)
            elif isinstance(node, ast.AnnAssign):
                if self._is_set_annotation(node.annotation) or (
                    node.value is not None and self._is_set_expr(node.value)
                ):
                    self._note(node.target)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for arg in [
                    *arguments.posonlyargs,
                    *arguments.args,
                    *arguments.kwonlyargs,
                ]:
                    if arg.annotation is not None and self._is_set_annotation(
                        arg.annotation
                    ):
                        self.set_paths.add(arg.arg)

    def _note(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Name, ast.Attribute)):
            self.set_paths.add(ast.unparse(target))

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self.ctx.qualified_name(node.func) in ("set", "frozenset")
        return False

    def _is_set_annotation(self, node: ast.expr) -> bool:
        text = ast.unparse(node)
        head = text.split("[", 1)[0].split(".")[-1].strip()
        return head in self._SET_ANNOTATIONS

    def is_set(self, node: ast.expr) -> bool:
        if self._is_set_expr(node):
            return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            return ast.unparse(node) in self.set_paths
        return False


@register
class SetOrderRule(_ScopedRule):
    """REP203: scheduling-visible iteration order must not come from sets."""

    rule_id = "REP203"
    severity = Severity.ERROR
    description = (
        "iteration over a set in deterministic simulation scope (set order "
        "is implementation-defined; iterate sorted(...) instead)"
    )

    def check_scoped(self, ctx: ModuleContext) -> Iterator[Finding]:
        index = _SetTypeIndex(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if index.is_set(node.iter):
                    yield self._iteration_finding(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if index.is_set(generator.iter):
                        yield self._iteration_finding(ctx, generator.iter)
            elif isinstance(node, ast.DictComp):
                for generator in node.generators:
                    if index.is_set(generator.iter):
                        yield self._iteration_finding(ctx, generator.iter)
            elif isinstance(node, ast.Call):
                qualified = ctx.qualified_name(node.func)
                if (
                    qualified in _ORDER_SENSITIVE_CONSUMERS
                    and node.args
                    and index.is_set(node.args[0])
                ):
                    yield self._iteration_finding(ctx, node.args[0])

    def _iteration_finding(self, ctx: ModuleContext, node: ast.expr) -> Finding:
        return self.finding(
            ctx,
            node.lineno,
            node.col_offset,
            f"iteration order of set '{ast.unparse(node)}' is "
            "implementation-defined and can leak into scheduling; use "
            "sorted(...) (or an order-insensitive reduction)",
        )
