"""Cross-file consistency of the observability event schema.

``repro.obs.events.EventKind`` is the contract between the emitters
(simulator, threaded runtime) and the consumers (invariant checker,
metrics, recorders). Schema drift is silent at runtime — an event kind
nobody emits just never shows up, and a kind the invariant checker does
not know about is silently skipped — so this rule cross-checks the three
parties statically over the whole linted tree:

* ``REP301`` — every ``EventKind`` member must have at least one emit
  site: an ``Event(EventKind.X, ...)`` construction outside the defining
  module and the checker module. (Skipped when the linted file set
  contains no emit sites at all — e.g. linting ``src/repro/obs`` alone.)
* ``REP302`` — every ``EventKind`` member must be either *handled* by the
  invariant checker module (any ``EventKind.X`` reference in it) or
  *explicitly ignored* via membership in its module-level
  ``IGNORED_EVENT_KINDS`` set, with a comment saying why. (Skipped when
  the linted file set contains no checker module.)

The checker module is recognised by defining a class named
``SchedulerInvariantChecker`` or by a module name ending in
``.invariants``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from .context import ModuleContext
from .findings import Finding, Severity
from .registry import ProjectRule, register

__all__ = ["EventSchemaRule", "IGNORED_EVENT_KINDS_NAME"]

IGNORED_EVENT_KINDS_NAME = "IGNORED_EVENT_KINDS"
_ENUM_CLASS = "EventKind"
_CHECKER_CLASS = "SchedulerInvariantChecker"


@dataclass
class _SchemaView:
    defining_ctx: ModuleContext | None = None
    #: member name -> line in the defining module
    members: dict[str, int] = field(default_factory=dict)
    emitted: set[str] = field(default_factory=set)
    handled: set[str] = field(default_factory=set)
    ignored: set[str] = field(default_factory=set)
    has_checker: bool = False
    emit_sites_seen: int = 0


def _is_checker_module(ctx: ModuleContext) -> bool:
    if ctx.module.endswith(".invariants"):
        return True
    return any(
        isinstance(node, ast.ClassDef) and node.name == _CHECKER_CLASS
        for node in ctx.tree.body
    )


def _enum_members(cls: ast.ClassDef) -> dict[str, int]:
    members: dict[str, int] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    members[target.id] = stmt.lineno
    return members


def _kind_refs(tree: ast.AST) -> Iterator[tuple[str, ast.Attribute]]:
    """Every ``EventKind.X`` attribute reference in ``tree``."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == _ENUM_CLASS
        ):
            yield node.attr, node


def _is_event_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Event"
    if isinstance(func, ast.Attribute):
        return func.attr == "Event"
    return False


@register
class EventSchemaRule(ProjectRule):
    """REP301/REP302: emit-site and handler coverage for every EventKind."""

    rule_id = "REP301"
    severity = Severity.ERROR
    description = (
        "every EventKind member needs an emit site (REP301) and invariant-"
        "checker handling or an explicit ignore (REP302)"
    )

    def check_project(self, contexts: Iterable[ModuleContext]) -> Iterator[Finding]:
        view = self._build_view(list(contexts))
        if view.defining_ctx is None or not view.members:
            return
        yield from self._check_emitted(view)
        yield from self._check_handled(view)

    # -------------------------------------------------------------- passes
    def _build_view(self, contexts: list[ModuleContext]) -> _SchemaView:
        view = _SchemaView()
        for ctx in contexts:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == _ENUM_CLASS:
                    view.defining_ctx = ctx
                    view.members = _enum_members(node)
        for ctx in contexts:
            if ctx is view.defining_ctx:
                continue
            if _is_checker_module(ctx):
                view.has_checker = True
                self._scan_checker(ctx, view)
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Call) and _is_event_call(node):
                    view.emit_sites_seen += 1
                    for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                        for member, _ in _kind_refs(arg):
                            view.emitted.add(member)
        return view

    def _scan_checker(self, ctx: ModuleContext, view: _SchemaView) -> None:
        ignored_spans: list[tuple[int, int]] = []
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            if value is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == IGNORED_EVENT_KINDS_NAME
                ):
                    ignored_spans.append(
                        (value.lineno, value.end_lineno or value.lineno)
                    )
                    for member, _ in _kind_refs(value):
                        view.ignored.add(member)
        for member, ref in _kind_refs(ctx.tree):
            if any(lo <= ref.lineno <= hi for lo, hi in ignored_spans):
                continue
            view.handled.add(member)

    def _check_emitted(self, view: _SchemaView) -> Iterator[Finding]:
        if view.emit_sites_seen == 0:
            return  # emitters are outside the linted file set
        assert view.defining_ctx is not None
        for member, line in sorted(view.members.items()):
            if member not in view.emitted:
                yield Finding(
                    path=view.defining_ctx.relpath,
                    line=line,
                    col=0,
                    rule_id="REP301",
                    message=(
                        f"EventKind.{member} has no emit site (no "
                        f"Event(EventKind.{member}, ...) construction in "
                        "the linted tree); emit it or delete the member"
                    ),
                    severity=self.severity,
                )

    def _check_handled(self, view: _SchemaView) -> Iterator[Finding]:
        if not view.has_checker:
            return  # checker module is outside the linted file set
        assert view.defining_ctx is not None
        for member, line in sorted(view.members.items()):
            if member not in view.handled and member not in view.ignored:
                yield Finding(
                    path=view.defining_ctx.relpath,
                    line=line,
                    col=0,
                    rule_id="REP302",
                    message=(
                        f"EventKind.{member} is neither handled by the "
                        "invariant checker nor listed in "
                        f"{IGNORED_EVENT_KINDS_NAME}; handle it or add it "
                        "to the ignore set with a justification"
                    ),
                    severity=self.severity,
                )
