"""Cross-file lock-order analysis (REP501/REP502).

Builds a whole-program lock-acquisition graph for the concurrent
packages (:data:`CONCURRENCY_PACKAGES`): nodes are lock *classes* named
``ClassName.attr`` (or a bare name for module-level locks), edges are
"``b`` was acquired while ``a`` was held". Edges come from two sources:

* **lexical nesting** — a ``with b:`` (or ``b.acquire()``) inside a
  ``with a:`` block;
* **call chains** — a call made while holding ``a`` to a function whose
  transitive acquisition set (computed by fixpoint over the resolvable
  call graph) contains ``b``.

Lock identity is resolved through the same declarations the REP1xx
rules use: attributes assigned from ``threading.Lock()``-family
constructors or :func:`repro.obs.lockdep.tracked_lock`, attributes named
as the *value* of a ``_GUARDED_BY`` map or ``# guarded-by:`` comment,
and annotations mentioning ``Lock``. ``self.attr`` resolves to the
enclosing class; other receivers resolve when exactly one class declares
the attribute (ambiguous receivers become a ``?.attr`` node — coarse,
but any ordering violation on them is still real).

Orderings are *declared* with a committed comment syntax::

    # lock-order: SubframeLedger.lock -> ThreadedRuntime._pending_lock

meaning the left lock may be held while acquiring the right one (chains
``A -> B -> C`` declare each adjacent pair; the relation is transitive).
Declarations may appear in any in-scope module and are project-global.

* ``REP501`` — the combined graph (observed edges plus declarations)
  contains a cycle: the ABBA shape that deadlocks under the right
  interleaving, even if no run has hung yet. Self-cycles (re-acquiring a
  held, non-reentrant lock class) are reported too.
* ``REP502`` — an observed edge has no covering ``# lock-order:``
  declaration: nesting someone added without stating the intended order.

Scope: modules under :data:`CONCURRENCY_PACKAGES`, plus any file opting
in with a ``# repro-lint: concurrency-scope`` pragma (test fixtures).
Known limitations: calls are resolved by name (``self.m`` to the
enclosing class, otherwise unique project-wide method/function names);
``.acquire()`` records an acquisition event but not a held region, so
hand-over-hand locking needs explicit declarations.

The runtime witness (:mod:`repro.obs.lockdep`) cross-checks its observed
edges against :func:`build_lock_graph` — see
``tests/obs/test_lockdep.py``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .context import ModuleContext
from .findings import Finding, Severity
from .locks import _GUARDED_BY_RE, _literal_guard_map
from .registry import ProjectRule, register

__all__ = [
    "CONCURRENCY_PACKAGES",
    "LockGraph",
    "LockOrderCycleRule",
    "UndeclaredLockOrderRule",
    "build_lock_graph",
    "in_concurrency_scope",
    "lock_graph_for_paths",
]

#: Packages whose locks participate in the whole-program order graph.
CONCURRENCY_PACKAGES: tuple[str, ...] = (
    "repro.sched",
    "repro.faults",
    "repro.obs",
    "repro.serve",
)

_CONCURRENCY_PRAGMA = "repro-lint: concurrency-scope"

#: Constructors whose result is a lock (qualified through import aliases).
_LOCK_CTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)


def in_concurrency_scope(ctx: ModuleContext) -> bool:
    if any(
        ctx.module == pkg or ctx.module.startswith(pkg + ".")
        for pkg in CONCURRENCY_PACKAGES
    ):
        return True
    return any(
        _CONCURRENCY_PRAGMA in comment for comment in ctx.comments.values()
    )


@dataclass(frozen=True)
class Site:
    """Where an edge (or declaration) was observed."""

    path: str
    line: int
    col: int
    note: str = ""


@dataclass
class LockGraph:
    """The whole-program lock-order graph."""

    #: observed edge (held, acquired) -> first site that created it.
    edges: dict[tuple[str, str], Site] = field(default_factory=dict)
    #: declared orderings, as adjacent pairs from ``# lock-order:`` lines.
    declared: set[tuple[str, str]] = field(default_factory=set)
    declared_sites: dict[tuple[str, str], Site] = field(default_factory=dict)

    def add_edge(self, held: str, acquired: str, site: Site) -> None:
        self.edges.setdefault((held, acquired), site)

    def declared_closure(self) -> set[tuple[str, str]]:
        """Transitive closure of the declared pairs (A->B->C covers A->C)."""
        closure = set(self.declared)
        changed = True
        while changed:
            changed = False
            for a, b in list(closure):
                for c, d in list(closure):
                    if b == c and (a, d) not in closure and a != d:
                        closure.add((a, d))
                        changed = True
        return closure

    def nodes(self) -> set[str]:
        found: set[str] = set()
        for a, b in list(self.edges) + list(self.declared):
            found.add(a)
            found.add(b)
        return found

    def cycles(self) -> list[list[str]]:
        """Elementary cycles in observed ∪ declared, one per SCC.

        Each cycle is returned as ``[n1, n2, ..., n1]``. A self-edge
        yields ``[n, n]``.
        """
        adjacency: dict[str, set[str]] = {n: set() for n in self.nodes()}
        for a, b in set(self.edges) | self.declared:
            adjacency[a].add(b)
        sccs = _tarjan_sccs(adjacency)
        cycles: list[list[str]] = []
        for scc in sccs:
            members = set(scc)
            if len(scc) == 1:
                node = scc[0]
                if node in adjacency[node]:
                    cycles.append([node, node])
                continue
            cycles.append(_cycle_path(adjacency, members))
        return cycles

    def edge_site(self, a: str, b: str) -> Site | None:
        return self.edges.get((a, b)) or self.declared_sites.get((a, b))


def _tarjan_sccs(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan: strongly connected components, deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adjacency[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))

    for start in sorted(adjacency):
        if start not in index:
            strongconnect(start)
    return sccs


def _cycle_path(adjacency: dict[str, set[str]], members: set[str]) -> list[str]:
    """A concrete cycle through an SCC with >1 member, for the message."""
    start = min(members)
    path = [start]
    seen = {start}
    node = start
    while True:
        nxt = min(
            (s for s in adjacency[node] if s in members),
            default=None,
        )
        if nxt is None:  # pragma: no cover - SCC guarantees a successor
            break
        if nxt == start:
            path.append(start)
            return path
        if nxt in seen:
            # Trim the tail to the repeated node and close there.
            at = path.index(nxt)
            return path[at:] + [nxt]
        path.append(nxt)
        seen.add(nxt)
        node = nxt
    return path + [start]  # pragma: no cover


# --------------------------------------------------------------------------
# Declaration collection: which attributes/names are locks?
# --------------------------------------------------------------------------

_LOCK_ORDER_PREFIX = "lock-order:"


def _is_lock_ctor(ctx: ModuleContext, node: ast.expr | None) -> bool:
    if not isinstance(node, ast.Call):
        return False
    qname = ctx.qualified_name(node.func)
    if qname is None:
        return False
    if qname in _LOCK_CTORS:
        return True
    if qname == "tracked_lock" or qname.endswith(".tracked_lock"):
        return True
    if qname == "field" or qname.endswith(".field"):
        # dataclass field(default_factory=<lock factory>)
        for kw in node.keywords:
            if kw.arg != "default_factory":
                continue
            if isinstance(kw.value, ast.Lambda):
                return _is_lock_ctor(ctx, kw.value.body)
            factory = ctx.qualified_name(kw.value)
            if factory in _LOCK_CTORS:
                return True
    return False


def _annotation_is_lock(node: ast.expr | None) -> bool:
    return node is not None and "Lock" in ast.unparse(node)


@dataclass
class _Declarations:
    """Project-wide lock identity and (shallow) type tables."""

    #: class name -> its lock attribute names.
    class_locks: dict[str, set[str]] = field(default_factory=dict)
    #: lock attribute name -> classes declaring it.
    attr_owners: dict[str, set[str]] = field(default_factory=dict)
    #: per-module set of module-level lock variable names.
    module_locks: dict[str, set[str]] = field(default_factory=dict)
    #: class name -> defining module (for typed call resolution).
    classes: dict[str, str] = field(default_factory=dict)
    #: (class, attr) -> class of the attribute's value, when inferable
    #: from ``self.attr = SomeClass(...)`` or an annotation.
    attr_types: dict[tuple[str, str], str] = field(default_factory=dict)

    def note_class_lock(self, class_name: str, attr: str) -> None:
        self.class_locks.setdefault(class_name, set()).add(attr)
        self.attr_owners.setdefault(attr, set()).add(class_name)

    def resolve_attr(self, attr: str, class_name: str | None) -> str | None:
        """Canonical node name for a lock attribute access, or ``None``."""
        if class_name and attr in self.class_locks.get(class_name, ()):
            return f"{class_name}.{attr}"
        owners = self.attr_owners.get(attr, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}.{attr}"
        if owners:
            return f"?.{attr}"
        return None

    def annotation_class(self, node: ast.expr | None) -> str | None:
        """A known class named by an annotation (``Foo`` or ``"Foo"``)."""
        if isinstance(node, ast.Name) and node.id in self.classes:
            return node.id
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value in self.classes
        ):
            return node.value
        return None

    def constructed_class(self, node: ast.expr | None) -> str | None:
        """``SomeClass(...)`` for a known class, else ``None``."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self.classes
        ):
            return node.func.id
        return None


def _collect_declarations(contexts: Sequence[ModuleContext]) -> _Declarations:
    decls = _Declarations()
    for ctx in contexts:
        module_names: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and _is_lock_ctor(ctx, stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if _is_lock_ctor(ctx, stmt.value):
                    module_names.add(stmt.target.id)
        decls.module_locks[ctx.module] = module_names

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                decls.classes.setdefault(node.name, ctx.module)

    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                _collect_class_locks(ctx, node, decls)
                _collect_attr_types(node, decls)
    return decls


def _collect_attr_types(cls: ast.ClassDef, decls: _Declarations) -> None:
    """Shallow attribute typing: annotations and ``self.x = Class(...)``."""
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            typed = decls.annotation_class(
                stmt.annotation
            ) or decls.constructed_class(stmt.value)
            if typed is not None:
                decls.attr_types[(cls.name, stmt.target.id)] = typed
        elif (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ):
            for node in ast.walk(stmt):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                typed = decls.constructed_class(node.value)
                if isinstance(node, ast.AnnAssign) and typed is None:
                    typed = decls.annotation_class(node.annotation)
                if typed is None:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        decls.attr_types[(cls.name, target.attr)] = typed


def _collect_class_locks(
    ctx: ModuleContext, cls: ast.ClassDef, decls: _Declarations
) -> None:
    def note_if_lock(target: ast.expr, value: ast.expr | None, line: int,
                     annotation: ast.expr | None = None) -> None:
        name: str | None = None
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id
        if name is None:
            return
        if _is_lock_ctor(ctx, value) or _annotation_is_lock(annotation):
            decls.note_class_lock(cls.name, name)
            return
        comment = ctx.comments.get(line)
        if comment:
            match = _GUARDED_BY_RE.search(comment)
            if match:
                decls.note_class_lock(cls.name, match.group(1))

    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "_GUARDED_BY":
                    for lock in _literal_guard_map(stmt.value).values():
                        decls.note_class_lock(cls.name, lock)
                else:
                    note_if_lock(target, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "_GUARDED_BY"
                and stmt.value is not None
            ):
                for lock in _literal_guard_map(stmt.value).values():
                    decls.note_class_lock(cls.name, lock)
            else:
                note_if_lock(
                    stmt.target, stmt.value, stmt.lineno, stmt.annotation
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name != "__init__":
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        note_if_lock(target, node.value, node.lineno)
                elif isinstance(node, ast.AnnAssign):
                    note_if_lock(
                        node.target, node.value, node.lineno, node.annotation
                    )


# --------------------------------------------------------------------------
# Function summaries and edge extraction
# --------------------------------------------------------------------------

#: (module, class name or "", function path like "f" or "outer.inner").
_FnKey = tuple[str, str, str]


@dataclass
class _FnSummary:
    key: _FnKey
    ctx: ModuleContext
    #: lock nodes this function acquires lexically.
    acquires: set[str] = field(default_factory=set)
    #: calls made: (held nodes at the call, callee expr, line, col).
    calls: list[tuple[tuple[str, ...], ast.expr, int, int]] = field(
        default_factory=list
    )
    #: local variable -> known class (for typed call resolution).
    local_types: dict[str, str] = field(default_factory=dict)


def _iter_functions(
    ctx: ModuleContext,
) -> Iterator[tuple[_FnKey, str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every def in the module, each yielded once with its enclosing class."""

    def walk(
        body: Iterable[ast.stmt], class_name: str | None, prefix: str
    ) -> Iterator[
        tuple[_FnKey, str | None, ast.FunctionDef | ast.AsyncFunctionDef]
    ]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                path = f"{prefix}{stmt.name}"
                yield (ctx.module, class_name or "", path), class_name, stmt
                yield from walk(stmt.body, class_name, f"{path}.")
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body, stmt.name, "")
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                yield from walk(ast.iter_child_nodes(stmt), class_name, prefix)

    yield from walk(ctx.tree.body, None, "")


class _FnVisitor(ast.NodeVisitor):
    """Extracts acquisitions, lexical edges, and call sites from one def.

    Does not descend into nested defs/lambdas — each nested def gets its
    own summary (a closure body runs after the enclosing lock region, so
    inheriting the held stack would be wrong).
    """

    def __init__(
        self,
        ctx: ModuleContext,
        class_name: str | None,
        decls: _Declarations,
        summary: _FnSummary,
        graph: LockGraph,
    ) -> None:
        self.ctx = ctx
        self.class_name = class_name
        self.decls = decls
        self.summary = summary
        self.graph = graph
        self.held: list[str] = []
        self.local_locks: set[str] = set()

    # ------------------------------------------------------------ resolution
    def receiver_class(self, node: ast.expr) -> str | None:
        """The known class of a receiver expression, if inferable."""
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.class_name
            return self.summary.local_types.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_name
        ):
            return self.decls.attr_types.get((self.class_name, node.attr))
        return None

    def resolve_lock(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            receiver = self.receiver_class(node.value)
            if receiver is not None and node.attr in self.decls.class_locks.get(
                receiver, ()
            ):
                return f"{receiver}.{node.attr}"
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return self.decls.resolve_attr(node.attr, self.class_name)
            return self.decls.resolve_attr(node.attr, None)
        if isinstance(node, ast.Name):
            if node.id in self.local_locks:
                return node.id
            if node.id in self.decls.module_locks.get(self.ctx.module, ()):
                return node.id
        return None

    # ------------------------------------------------------------- recording
    def _record_acquisition(self, lock: str, line: int, col: int) -> None:
        self.summary.acquires.add(lock)
        for held in self.held:
            self.graph.add_edge(
                held, lock, Site(self.ctx.relpath, line, col)
            )

    # ----------------------------------------------------------------- scope
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # separate summary

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # separate summary

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # runs later; held stack does not apply

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            lock = self.resolve_lock(item.context_expr)
            if lock is not None:
                self._record_acquisition(
                    lock, item.context_expr.lineno, item.context_expr.col_offset
                )
                acquired.append(lock)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            del self.held[-len(acquired):]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # ----------------------------------------------------------------- calls
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            lock = self.resolve_lock(func.value)
            if lock is not None:
                self._record_acquisition(lock, node.lineno, node.col_offset)
                self.generic_visit(node)
                return
        self.summary.calls.append(
            (tuple(self.held), func, node.lineno, node.col_offset)
        )
        self.generic_visit(node)

    # ---------------------------------------------------------------- locals
    def visit_Assign(self, node: ast.Assign) -> None:
        is_lock = _is_lock_ctor(self.ctx, node.value)
        constructed = self.decls.constructed_class(node.value)
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if is_lock:
                self.local_locks.add(target.id)
            if constructed is not None:
                self.summary.local_types[target.id] = constructed
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if _is_lock_ctor(self.ctx, node.value):
                self.local_locks.add(node.target.id)
            typed = self.decls.constructed_class(
                node.value
            ) or self.decls.annotation_class(node.annotation)
            if typed is not None:
                self.summary.local_types[node.target.id] = typed
        self.generic_visit(node)


@dataclass
class _CallIndex:
    """Name-based call resolution tables (best effort, precision over recall)."""

    #: (module, class, fn path) -> summary
    summaries: dict[_FnKey, _FnSummary] = field(default_factory=dict)
    #: method name -> set of (module, class) defining it.
    methods: dict[str, set[tuple[str, str]]] = field(default_factory=dict)
    #: (module, function name) for module-level defs.
    functions: set[tuple[str, str]] = field(default_factory=set)

    def add(self, summary: _FnSummary) -> None:
        module, class_name, path = summary.key
        self.summaries[summary.key] = summary
        if "." in path:
            return  # nested defs are not callable by name from outside
        if class_name:
            self.methods.setdefault(path, set()).add((module, class_name))
        else:
            self.functions.add((module, path))

    def resolve_call(
        self, summary: _FnSummary, decls: _Declarations, func: ast.expr
    ) -> _FnKey | None:
        """Typed, name-based callee resolution.

        ``self.m()`` resolves to the enclosing class; ``obj.m()`` only
        when ``obj``'s class is known (constructor assignment or
        annotation) — never by method name alone, which would conflate
        e.g. ``dict.get`` with a real ``Queue.get``. Missed edges are
        the runtime witness's job to catch.
        """
        ctx = summary.ctx
        class_name = summary.key[1] or None
        if isinstance(func, ast.Name):
            if (ctx.module, func.id) in self.functions:
                return (ctx.module, "", func.id)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        name = func.attr
        base = func.value
        receiver: str | None = None
        if isinstance(base, ast.Name):
            if base.id == "self":
                receiver = class_name
            else:
                receiver = summary.local_types.get(base.id)
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and class_name
        ):
            receiver = decls.attr_types.get((class_name, base.attr))
        if receiver is None:
            return None
        module = decls.classes.get(receiver)
        if module is not None and (module, receiver) in self.methods.get(
            name, set()
        ):
            return (module, receiver, name)
        return None


def build_lock_graph(contexts: Iterable[ModuleContext]) -> LockGraph:
    """Analyze every in-scope context into one :class:`LockGraph`."""
    scoped = [ctx for ctx in contexts if in_concurrency_scope(ctx)]
    graph = LockGraph()
    decls = _collect_declarations(scoped)

    # Declared orderings: "# lock-order: A -> B -> C" anywhere in scope.
    for ctx in scoped:
        for line, comment in sorted(ctx.comments.items()):
            if _LOCK_ORDER_PREFIX not in comment:
                continue
            spec = comment.split(_LOCK_ORDER_PREFIX, 1)[1]
            names = [part.strip() for part in spec.split("->")]
            names = [n for n in names if n]
            for a, b in zip(names, names[1:]):
                graph.declared.add((a, b))
                graph.declared_sites.setdefault(
                    (a, b), Site(ctx.relpath, line, 0, note="declaration")
                )

    # Pass 1: per-function summaries and lexical edges.
    index = _CallIndex()
    for ctx in scoped:
        for key, class_name, fndef in _iter_functions(ctx):
            summary = _FnSummary(key=key, ctx=ctx)
            args = fndef.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]:
                typed = decls.annotation_class(arg.annotation)
                if typed is not None:
                    summary.local_types[arg.arg] = typed
            visitor = _FnVisitor(ctx, class_name, decls, summary, graph)
            for stmt in fndef.body:
                visitor.visit(stmt)
            index.add(summary)

    # Pass 2: transitive acquisition sets (fixpoint over resolvable calls).
    resolved_calls: dict[_FnKey, set[_FnKey]] = {}
    for summary in index.summaries.values():
        callees: set[_FnKey] = set()
        for _held, func, _line, _col in summary.calls:
            callee = index.resolve_call(summary, decls, func)
            if callee is not None and callee != summary.key:
                callees.add(callee)
        resolved_calls[summary.key] = callees

    total: dict[_FnKey, set[str]] = {
        key: set(s.acquires) for key, s in index.summaries.items()
    }
    changed = True
    while changed:
        changed = False
        for key, callees in resolved_calls.items():
            mine = total[key]
            before = len(mine)
            for callee in callees:
                mine |= total.get(callee, set())
            if len(mine) != before:
                changed = True

    # Pass 3: edges through calls made while holding a lock.
    for summary in index.summaries.values():
        for held, func, line, col in summary.calls:
            if not held:
                continue
            callee = index.resolve_call(summary, decls, func)
            if callee is None or callee == summary.key:
                continue
            callee_disp = f"{callee[1]}.{callee[2]}" if callee[1] else callee[2]
            for lock in sorted(total.get(callee, set())):
                for holder in held:
                    graph.add_edge(
                        holder,
                        lock,
                        Site(
                            summary.ctx.relpath,
                            line,
                            col,
                            note=f"via call to {callee_disp}",
                        ),
                    )
    return graph


def lock_graph_for_paths(paths: Sequence[str | Path]) -> LockGraph:
    """Convenience for the runtime cross-check: parse and analyze ``paths``."""
    from .driver import collect_files

    contexts = []
    for path in collect_files(paths):
        source = path.read_text(encoding="utf-8")
        contexts.append(ModuleContext.parse(path, str(path), source))
    return build_lock_graph(contexts)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------


@register
class LockOrderCycleRule(ProjectRule):
    """REP501: the lock-order graph must be acyclic."""

    rule_id = "REP501"
    severity = Severity.ERROR
    description = (
        "lock-acquisition graph (observed nesting plus declared orders) "
        "contains a cycle: ABBA deadlock risk"
    )
    packages = CONCURRENCY_PACKAGES

    def check_project(
        self, contexts: Iterable[ModuleContext]
    ) -> Iterator[Finding]:
        graph = build_lock_graph(contexts)
        for cycle in graph.cycles():
            if len(cycle) == 2 and cycle[0] == cycle[1]:
                message = (
                    f"lock '{cycle[0]}' can be re-acquired while already "
                    "held (non-reentrant self-deadlock)"
                )
            else:
                chain = " -> ".join(cycle)
                message = (
                    f"lock-order cycle {chain}: these locks are acquired "
                    "in conflicting orders (deadlock under the right "
                    "interleaving)"
                )
            site = None
            for a, b in zip(cycle, cycle[1:]):
                site = graph.edge_site(a, b)
                if site is not None:
                    break
            yield Finding(
                path=site.path if site else "<project>",
                line=site.line if site else 1,
                col=site.col if site else 0,
                rule_id=self.rule_id,
                message=message,
                severity=self.severity,
            )


@register
class UndeclaredLockOrderRule(ProjectRule):
    """REP502: observed lock nesting must have a declared order."""

    rule_id = "REP502"
    severity = Severity.ERROR
    description = (
        "lock acquired while holding another lock without a covering "
        "'# lock-order:' declaration"
    )
    packages = CONCURRENCY_PACKAGES

    def check_project(
        self, contexts: Iterable[ModuleContext]
    ) -> Iterator[Finding]:
        graph = build_lock_graph(contexts)
        covered = graph.declared_closure()
        for (held, acquired), site in sorted(
            graph.edges.items(), key=lambda kv: (kv[1].path, kv[1].line)
        ):
            if held == acquired:
                continue  # REP501 reports self-cycles
            if (held, acquired) in covered:
                continue
            detail = f" ({site.note})" if site.note else ""
            yield Finding(
                path=site.path,
                line=site.line,
                col=site.col,
                rule_id=self.rule_id,
                message=(
                    f"'{acquired}' is acquired while holding '{held}'"
                    f"{detail} but no '# lock-order: {held} -> {acquired}' "
                    "declaration covers it"
                ),
                severity=self.severity,
            )
