"""Per-file analysis context: parsed AST, comments, imports, scope.

Rules never touch the filesystem — the driver builds one
:class:`ModuleContext` per linted file and hands it to every per-file
rule. The context also resolves the two comment-driven conventions:

* ``# repro-lint: disable=REP101,REP203`` — suppress those rules on the
  commented line (or, when the comment is a standalone line, on the next
  code line);
* ``# repro-lint: disable-file=REP201`` — suppress a rule for the whole
  file;
* ``# repro-lint: deterministic-scope`` — opt a file that is not under a
  deterministic package into the REP2xx determinism rules (used by test
  fixtures and by modules outside ``repro.sim``/``phy``/``uplink`` that
  still promise replayability).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ModuleContext", "module_name_for"]

# Rule codes only (REP101-style tokens); anything after the code list —
# "# repro-lint: disable=REP402 best-effort shutdown cleanup" — is the
# human justification, not part of the directive.
_CODES = r"[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*"
_DISABLE_RE = re.compile(rf"repro-lint:\s*disable=({_CODES})")
_DISABLE_FILE_RE = re.compile(rf"repro-lint:\s*disable-file=({_CODES})")
_DETERMINISTIC_PRAGMA = "repro-lint: deterministic-scope"


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` marks a package.

    ``src/repro/sim/machine.py`` -> ``repro.sim.machine``; a loose file in
    a scratch directory is just its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class ModuleContext:
    """Everything the rules need to know about one source file."""

    path: Path
    relpath: str
    module: str
    source: str
    tree: ast.Module
    #: line number -> comment text (leading ``#`` stripped).
    comments: dict[int, str] = field(default_factory=dict)
    #: local alias -> fully qualified dotted name, from import statements.
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: ``def``/``class`` line -> line of its first decorator.
    decorator_starts: dict[int, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, relpath: str, source: str) -> ModuleContext:
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            relpath=relpath,
            module=module_name_for(path),
            source=source,
            tree=tree,
            comments=_collect_comments(source),
        )
        ctx.import_aliases = _collect_import_aliases(tree)
        ctx.decorator_starts = _collect_decorator_starts(tree)
        return ctx

    # ------------------------------------------------------------ pragmas
    def suppressed_rules(self, line: int) -> frozenset[str]:
        """Rule IDs inline-suppressed for findings on ``line``.

        A suppression applies from the finding's own line (trailing
        comment), the standalone comment line directly above it, or — when
        the finding anchors to a decorated ``def``/``class`` — the
        standalone comment directly above the decorator stack, which is
        where a reader naturally writes it.
        """
        candidates = [line, line - 1]
        first_decorator = self.decorator_starts.get(line)
        if first_decorator is not None:
            candidates.append(first_decorator - 1)
        rules: set[str] = set()
        for source_line in candidates:
            comment = self.comments.get(source_line)
            if comment is None:
                continue
            if source_line != line and self._line_has_code(source_line):
                continue  # trailing comment on an unrelated statement
            match = _DISABLE_RE.search(comment)
            if match:
                rules.update(
                    r.strip() for r in match.group(1).split(",") if r.strip()
                )
        return frozenset(rules)

    def file_suppressed_rules(self) -> frozenset[str]:
        """Rule IDs suppressed for the whole file."""
        rules: set[str] = set()
        for comment in self.comments.values():
            match = _DISABLE_FILE_RE.search(comment)
            if match:
                rules.update(
                    r.strip() for r in match.group(1).split(",") if r.strip()
                )
        return frozenset(rules)

    def has_deterministic_pragma(self) -> bool:
        return any(
            _DETERMINISTIC_PRAGMA in comment for comment in self.comments.values()
        )

    def _line_has_code(self, line: int) -> bool:
        text = self.source.splitlines()[line - 1] if line >= 1 else ""
        stripped = text.strip()
        return bool(stripped) and not stripped.startswith("#")

    # ------------------------------------------------------------ imports
    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve ``np.random.default_rng`` -> ``numpy.random.default_rng``.

        Follows the file's import aliases for the base name; returns
        ``None`` for expressions that are not plain dotted names.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.import_aliases.get(node.id, node.id)
        return ".".join([base, *parts]) if parts else base


def _collect_comments(source: str) -> dict[int, str]:
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
        pass
    return comments


def _collect_decorator_starts(tree: ast.Module) -> dict[int, int]:
    """Map each decorated def/class line to its first decorator's line."""
    starts: dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if node.decorator_list:
                starts[node.lineno] = min(
                    d.lineno for d in node.decorator_list
                )
    return starts


def _collect_import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            prefix = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return aliases
