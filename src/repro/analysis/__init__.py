"""AST-based static analysis for the repro codebase (``repro lint``).

The runtime invariant checker (:mod:`repro.obs.invariants`) catches
scheduler-state corruption only on paths a run happens to exercise; this
package catches the same bug *classes* — unguarded shared state,
nondeterminism leaking into the simulation, observability schema drift —
statically, on every file, on every push.

Rule families (full catalogue: ``repro lint --list-rules`` and
``docs/static_analysis.md``):

* ``REP1xx`` lock discipline (:mod:`repro.analysis.locks`);
* ``REP2xx`` simulation determinism (:mod:`repro.analysis.determinism`);
* ``REP3xx`` obs event-schema consistency (:mod:`repro.analysis.schema`);
* ``REP4xx`` robustness — no swallowed failures in the runtimes
  (:mod:`repro.analysis.robustness`);
* ``REP5xx`` concurrency safety — whole-program lock-order analysis
  (:mod:`repro.analysis.concurrency`), shared-memory segment lifecycle
  (:mod:`repro.analysis.shm`), and spawn/pickle boundaries
  (:mod:`repro.analysis.spawn`); cross-checked at runtime by
  :mod:`repro.obs.lockdep`.

Importing this package registers all built-in rules.
"""

from . import (  # noqa: F401  (rule registration)
    concurrency,
    determinism,
    locks,
    robustness,
    schema,
    shm,
    spawn,
)
from .baseline import Baseline
from .context import ModuleContext
from .driver import LintResult, LintUsageError, collect_files, lint_paths
from .findings import Finding, Severity
from .registry import ProjectRule, Rule, default_rules, register, rule_catalogue

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "LintUsageError",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "collect_files",
    "default_rules",
    "lint_paths",
    "register",
    "rule_catalogue",
]
