"""Lock discipline: guarded attributes may only be touched under their lock.

Two equivalent declaration conventions (see ``docs/static_analysis.md``):

* a trailing ``# guarded-by: <lock_attr>`` comment on the attribute's
  assignment — either ``self.x = ...`` inside ``__init__`` or a
  class-level / dataclass field annotation;
* a class-level ``_GUARDED_BY = {"attr": "lock_attr"}`` literal map
  (annotate it ``ClassVar`` in dataclasses so it does not become a field).

The check is per-file and textual on the receiver: an access spelled
``<recv>.attr`` (any load, store, delete, or augmented assignment) where
``attr`` is declared guarded by ``lock`` must appear lexically inside a
``with <recv>.lock:`` block — so ``self._completed`` needs
``with self._completed_lock:`` and a cross-object ``pending.result``
needs ``with pending.lock:``. Construction is exempt (``self.<attr>``
inside the declaring scope's ``__init__`` happens before the object is
shared). Lock context never propagates into nested ``def``/``lambda``
bodies: a closure created under a lock typically *runs* after the lock
is released, so guarded accesses inside it are flagged.

Known limitation (suppress with a justification when deliberate): a
helper method called only while the caller holds the lock is flagged,
because the analysis is lexical, not interprocedural.

* ``REP101`` — guarded attribute accessed without holding its lock;
* ``REP102`` — declaration names a lock attribute the class never defines.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass

from .context import ModuleContext
from .findings import Finding, Severity
from .registry import Rule, register

__all__ = ["LockDisciplineRule", "GuardDeclarationRule"]

_GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


@dataclass
class _ClassGuards:
    name: str
    line: int
    #: guarded attribute -> lock attribute name
    guarded: dict[str, str]
    #: every attribute the class defines (for REP102 lock existence)
    declared: set[str]


def _attr_target_name(node: ast.expr) -> str | None:
    """``self.x`` -> ``x``; plain ``x`` (class-level field) -> ``x``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr
        return None
    if isinstance(node, ast.Name):
        return node.id
    return None


def _collect_class_guards(
    ctx: ModuleContext, cls: ast.ClassDef
) -> _ClassGuards:
    guarded: dict[str, str] = {}
    declared: set[str] = set()

    def note_assignment(target: ast.expr, line: int) -> None:
        name = _attr_target_name(target)
        if name is None:
            return
        declared.add(name)
        comment = ctx.comments.get(line)
        if comment:
            match = _GUARDED_BY_RE.search(comment)
            if match:
                guarded[name] = match.group(1)

    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "_GUARDED_BY":
                    guarded.update(_literal_guard_map(stmt.value))
                else:
                    note_assignment(target, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "_GUARDED_BY"
                and stmt.value is not None
            ):
                guarded.update(_literal_guard_map(stmt.value))
            else:
                note_assignment(stmt.target, stmt.lineno)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if stmt.name == "__init__":
                            note_assignment(target, node.lineno)
                        else:
                            name = _attr_target_name(target)
                            if name is not None:
                                declared.add(name)
    return _ClassGuards(
        name=cls.name, line=cls.lineno, guarded=guarded, declared=declared
    )


def _literal_guard_map(node: ast.expr) -> dict[str, str]:
    if not isinstance(node, ast.Dict):
        return {}
    result: dict[str, str] = {}
    for key, value in zip(node.keys, node.values, strict=True):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            result[key.value] = value.value
    return result


class _AccessChecker(ast.NodeVisitor):
    """Walks one module tracking held ``with`` contexts lexically."""

    def __init__(
        self,
        rule: LockDisciplineRule,
        ctx: ModuleContext,
        guards: dict[str, tuple[str, str]],
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.guards = guards
        self.held: list[str] = []
        self.function_stack: list[str] = []
        self.findings: list[Finding] = []

    # ------------------------------------------------------- scope handling
    def _visit_function(self, node: ast.AST, name: str) -> None:
        saved = self.held
        self.held = []  # closures may outlive the enclosing lock region
        self.function_stack.append(name)
        self.generic_visit(node)
        self.function_stack.pop()
        self.held = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node, "<lambda>")

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)
            acquired.append(ast.unparse(item.context_expr))
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired) :]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # ------------------------------------------------------------- accesses
    def visit_Attribute(self, node: ast.Attribute) -> None:
        guard = self.guards.get(node.attr)
        if guard is not None:
            lock, class_name = guard
            receiver = ast.unparse(node.value)
            stack = self.function_stack
            in_init = bool(stack) and stack[-1] == "__init__"
            if receiver == "self" and in_init:
                pass  # construction happens-before sharing
            else:
                required = f"{receiver}.{lock}"
                if required not in self.held:
                    self.findings.append(
                        self.rule.finding(
                            self.ctx,
                            node.lineno,
                            node.col_offset,
                            f"'{receiver}.{node.attr}' is declared guarded-by "
                            f"'{lock}' (class {class_name}) but is accessed "
                            f"without holding 'with {required}:'",
                        )
                    )
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    """REP101: guarded attributes only under their declared lock."""

    rule_id = "REP101"
    severity = Severity.ERROR
    description = (
        "attribute declared guarded-by a lock is accessed outside a "
        "'with <lock>:' block"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        guards: dict[str, tuple[str, str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                class_guards = _collect_class_guards(ctx, node)
                for attr, lock in class_guards.guarded.items():
                    guards.setdefault(attr, (lock, class_guards.name))
        if not guards:
            return
        checker = _AccessChecker(self, ctx, guards)
        checker.visit(ctx.tree)
        yield from checker.findings


@register
class GuardDeclarationRule(Rule):
    """REP102: guarded-by declarations must name a real lock attribute."""

    rule_id = "REP102"
    severity = Severity.ERROR
    description = (
        "guarded-by declaration references a lock attribute the class "
        "never defines"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_guards = _collect_class_guards(ctx, node)
            for attr, lock in sorted(class_guards.guarded.items()):
                if lock not in class_guards.declared:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"class {node.name} declares '{attr}' guarded-by "
                        f"'{lock}', but never defines an attribute named "
                        f"'{lock}'",
                    )
