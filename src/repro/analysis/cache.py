"""Content-hash result cache for per-file lint rules.

The full-tree CI lint re-parses and re-checks every file on every push;
as the rule count grows that cost scales with tree size, not change
size. This cache keys each file's *per-file* rule findings by a SHA-256
of (source bytes, active per-file rule ids) and invalidates wholesale
when the analyzer itself changes (the signature hashes every module in
``repro.analysis``), so a stale cache can never hide a new rule or a
rule fix.

Only per-file rules are cached. Project rules (REP3xx schema, REP5xx
lock order) see the whole tree at once, so their cost is already
one-pass and their findings can be invalidated by *any* file changing;
the driver always re-runs them. Suppression and baseline filtering also
always re-run — they are cheap and depend on the baseline file, which is
outside the cache key.

Cache entries store raw findings (pre-suppression), so a cached file's
suppressions still apply when only the baseline changed. The file format
is one JSON document; a corrupt or version-skewed cache is silently
discarded (it is a pure accelerator, never a source of truth).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .findings import Finding

__all__ = ["AnalysisCache", "rules_signature"]

_VERSION = 1


def rules_signature() -> str:
    """Hash of every analyzer module's source: changes invalidate the cache."""
    digest = hashlib.sha256()
    package_dir = Path(__file__).parent
    for module in sorted(package_dir.glob("*.py")):
        digest.update(module.name.encode())
        digest.update(module.read_bytes())
    return digest.hexdigest()


class AnalysisCache:
    """Per-file finding cache, persisted as one JSON file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.signature = rules_signature()
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._files: dict[str, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            data.get("version") != _VERSION
            or data.get("signature") != self.signature
        ):
            return  # analyzer changed: start fresh
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files

    @staticmethod
    def _key(source: str, rules_token: str) -> str:
        digest = hashlib.sha256(source.encode("utf-8"))
        digest.update(b"\0")
        digest.update(rules_token.encode("utf-8"))
        return digest.hexdigest()

    def lookup(
        self, relpath: str, source: str, rules_token: str
    ) -> list[Finding] | None:
        """Cached raw findings for this exact content, or ``None``."""
        entry = self._files.get(relpath)
        if entry is None or entry.get("key") != self._key(source, rules_token):
            self.misses += 1
            return None
        try:
            findings = [Finding.from_dict(f) for f in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store(
        self,
        relpath: str,
        source: str,
        rules_token: str,
        findings: list[Finding],
    ) -> None:
        self._files[relpath] = {
            "key": self._key(source, rules_token),
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": _VERSION,
            "signature": self.signature,
            "files": self._files,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        self._dirty = False
