"""Shared-memory segment lifecycle rules (REP511/REP512).

``multiprocessing.shared_memory`` has a two-level lifecycle that Python
will not manage for you: every process that creates *or attaches* a
:class:`~multiprocessing.shared_memory.SharedMemory` holds an mmap and
file descriptor until ``close()``, and the backing ``/dev/shm`` segment
itself survives until exactly one process — the creating owner —
``unlink()``\\ s it. PR 6's runtime hand-rolled that discipline
(refcounted grid segments, worker-side ``close()`` in ``finally``,
parent-side ``close()+unlink()``); these rules make the discipline
checkable:

* ``REP511`` — a segment handle that is created/attached in a function
  must either reach a ``close()`` on that handle or escape the function
  (returned, stored in a container/object, passed to a callee that takes
  over the lifecycle). A handle that does neither is a guaranteed
  fd/mapping leak.
* ``REP512`` — ``unlink()`` discipline: only the creating owner may
  unlink (attach-then-unlink destroys a segment someone else owns), and
  an ``unlink()`` with no ``close()`` on the same handle in the same
  function leaks the local mapping even though the segment dies.

The analysis recognizes direct ``SharedMemory(...)`` construction
(``create=True`` ⇒ owner, ``name=...`` attach ⇒ borrower) and
module-local helper functions that return a segment (e.g. the runtime's
``_attach_shm``), classified by the construction they wrap. Escape is
syntactic: any use of the bound name other than attribute access
(``shm.buf``, ``shm.name``, ``shm.close()``...) hands the handle to code
this per-function analysis cannot see, and is trusted.

Scope: any file that imports ``multiprocessing.shared_memory`` (directly
or via the parent package).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .context import ModuleContext
from .findings import Finding, Severity
from .registry import Rule, register

__all__ = ["ShmCloseRule", "ShmUnlinkRule"]


def _uses_shared_memory(ctx: ModuleContext) -> bool:
    return any(
        "shared_memory" in target or target.endswith("SharedMemory")
        for target in ctx.import_aliases.values()
    )


def _is_shm_ctor(ctx: ModuleContext, node: ast.Call) -> str | None:
    """``"create"`` / ``"attach"`` for a direct SharedMemory construction."""
    qname = ctx.qualified_name(node.func)
    if qname is None:
        return None
    if qname != "SharedMemory" and not qname.endswith(".SharedMemory"):
        return None
    for kw in node.keywords:
        if (
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value
        ):
            return "create"
    return "attach"


def _helper_kinds(ctx: ModuleContext) -> dict[str, str]:
    """Module-level functions that hand out a segment, by wrapped ctor."""
    helpers: dict[str, str] = {}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                kind = _is_shm_ctor(ctx, node)
                if kind is not None:
                    helpers[stmt.name] = kind
                    break
    return helpers


def _producer_kind(
    ctx: ModuleContext, node: ast.expr, helpers: dict[str, str]
) -> str | None:
    """Classify an expression that yields a fresh segment handle."""
    if not isinstance(node, ast.Call):
        return None
    direct = _is_shm_ctor(ctx, node)
    if direct is not None:
        return direct
    func = node.func
    if isinstance(func, ast.Name):
        return helpers.get(func.id)
    return None


@dataclass
class _Handle:
    name: str
    kind: str  # "create" | "attach"
    line: int
    col: int
    closed: bool = False
    escaped: bool = False
    unlinks: list[tuple[int, int]] = field(default_factory=list)


def _iter_defs(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _parents(fn: ast.AST) -> dict[ast.AST, ast.AST]:
    parent: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            parent[child] = node
    return parent


@dataclass
class _FunctionShm:
    """Per-function segment-handle facts for both rules."""

    handles: dict[str, _Handle] = field(default_factory=dict)
    #: receiver text -> it has a ``.close()`` call in this function.
    closed_receivers: set[str] = field(default_factory=set)
    #: (receiver text, line, col) of every ``.unlink()`` call.
    unlink_sites: list[tuple[str, int, int]] = field(default_factory=list)
    #: producer calls whose handle is dropped on the floor.
    discarded: list[tuple[str, int, int]] = field(default_factory=list)


def _analyze_function(
    ctx: ModuleContext,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    helpers: dict[str, str],
) -> _FunctionShm:
    facts = _FunctionShm()
    parent = _parents(fn)

    for node in ast.walk(fn):
        # Bindings: shm = SharedMemory(...) / shm = _attach_shm(...)
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            kind = _producer_kind(ctx, node.value, helpers)
            if kind is not None and isinstance(target, ast.Name):
                facts.handles.setdefault(
                    target.id,
                    _Handle(target.id, kind, node.lineno, node.col_offset),
                )
        # Method calls: <recv>.close() / <recv>.unlink()
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = ast.unparse(node.func.value)
            if node.func.attr == "close":
                facts.closed_receivers.add(receiver)
            elif node.func.attr == "unlink":
                facts.unlink_sites.append(
                    (receiver, node.lineno, node.col_offset)
                )
        # Discarded handles: a producer call that is not bound, returned,
        # or passed along — e.g. bare `SharedMemory(name=n)` or
        # `SharedMemory(name=n).buf`.
        if isinstance(node, ast.Call):
            kind = _producer_kind(ctx, node, helpers)
            if kind is not None:
                up = parent.get(node)
                if isinstance(up, ast.Expr) or (
                    isinstance(up, ast.Attribute) and up.attr != "close"
                ):
                    facts.discarded.append(
                        (kind, node.lineno, node.col_offset)
                    )

    # Escapes: the bound name used as anything but an attribute receiver.
    for node in ast.walk(fn):
        if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
            continue
        handle = facts.handles.get(node.id)
        if handle is None:
            continue
        if isinstance(parent.get(node), ast.Attribute):
            continue  # shm.buf / shm.close() / shm.name
        handle.escaped = True

    for handle in facts.handles.values():
        if handle.name in facts.closed_receivers:
            handle.closed = True
        handle.unlinks = [
            (line, col)
            for receiver, line, col in facts.unlink_sites
            if receiver == handle.name
        ]
    return facts


class _ShmRule(Rule):
    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _uses_shared_memory(ctx):
            return
        helpers = _helper_kinds(ctx)
        for fn in _iter_defs(ctx.tree):
            yield from self.check_function(
                ctx, fn, _analyze_function(ctx, fn, helpers)
            )

    def check_function(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        facts: _FunctionShm,
    ) -> Iterator[Finding]:
        raise NotImplementedError


_VERB = {"create": "created", "attach": "attached"}


@register
class ShmCloseRule(_ShmRule):
    """REP511: every segment handle reaches close() or escapes."""

    rule_id = "REP511"
    severity = Severity.ERROR
    description = (
        "SharedMemory handle is created/attached but neither closed nor "
        "handed off: the mapping and fd leak"
    )

    def check_function(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        facts: _FunctionShm,
    ) -> Iterator[Finding]:
        for handle in facts.handles.values():
            if handle.closed or handle.escaped:
                continue
            yield self.finding(
                ctx,
                handle.line,
                handle.col,
                f"segment handle '{handle.name}' is "
                f"{_VERB[handle.kind]} in '{fn.name}' but never reaches "
                f"'{handle.name}.close()' and never escapes the function; "
                "the mapping leaks",
            )
        for kind, line, col in facts.discarded:
            yield self.finding(
                ctx,
                line,
                col,
                f"SharedMemory handle is {_VERB[kind]} and immediately "
                "discarded; nothing can ever close() this mapping",
            )


@register
class ShmUnlinkRule(_ShmRule):
    """REP512: unlink() only by the creating owner, and never without close()."""

    rule_id = "REP512"
    severity = Severity.ERROR
    description = (
        "SharedMemory unlink() by a non-owner (attacher) or without a "
        "close() on the same handle"
    )

    def check_function(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        facts: _FunctionShm,
    ) -> Iterator[Finding]:
        for handle in facts.handles.values():
            if handle.kind == "attach":
                for line, col in handle.unlinks:
                    yield self.finding(
                        ctx,
                        line,
                        col,
                        f"'{handle.name}' was attached (not created) in "
                        f"'{fn.name}'; only the creating owner may "
                        "unlink() a segment",
                    )
        for receiver, line, col in facts.unlink_sites:
            if receiver not in facts.closed_receivers:
                yield self.finding(
                    ctx,
                    line,
                    col,
                    f"'{receiver}.unlink()' without a matching "
                    f"'{receiver}.close()' in '{fn.name}': the segment "
                    "dies but this process's mapping leaks",
                )
