"""Scheduler metrics: counters, gauges, histograms, and a collector.

The :class:`MetricsCollector` observer folds the event stream into a
:class:`MetricsRegistry` — steal latency, queue depth, per-core
utilization, subframe latency percentiles — surfaced by the ``repro
metrics`` CLI subcommand and renderable with
:func:`repro.experiments.report.format_metrics`.
"""

from __future__ import annotations

import numpy as np

from .events import Event, EventKind
from .telemetry import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value, remembering its extremes."""

    __slots__ = ("name", "value", "max", "min")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = float("-inf")
        self.min = float("inf")

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max = max(self.max, self.value)
        self.min = min(self.min, self.value)


class Histogram:
    """Streaming observations summarized as count/mean/percentiles.

    Backed by a bounded :class:`~repro.obs.telemetry.QuantileSketch`, so
    memory stays O(1) in the observation count (the original list-backed
    version grew without bound over long runs). Count, mean, min, max,
    and the 0th/100th percentiles are exact; interior percentiles carry
    the sketch's ±1% relative-accuracy guarantee. The ``summary()``
    schema is unchanged.
    """

    __slots__ = ("name", "_sketch")

    def __init__(self, name: str) -> None:
        self.name = name
        self._sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self._sketch.observe(float(value))

    @property
    def count(self) -> int:
        return self._sketch.count

    @property
    def sketch(self) -> QuantileSketch:
        return self._sketch

    def mean(self) -> float:
        return self._sketch.mean()

    def percentile(self, p: float) -> float:
        return self._sketch.percentile(p)

    def summary(self) -> dict[str, float]:
        return self._sketch.summary()


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def summary(self) -> dict:
        """Nested plain-data summary (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "max": g.max, "min": g.min}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }


class MetricsCollector:
    """Observer that folds scheduler events into a registry.

    After a :meth:`~repro.sim.machine.MachineSimulator.run` it exposes:

    * counters: subframes/users dispatched, users finished, tasks
      started/finished, steals, wake checks (and hits), state transitions;
    * histograms: queue depth at dispatch, task cycles, steal wait cycles
      (stage opening to steal), per-core utilization, subframe latency;
    * ``per_core_utilization``: COMPUTE fraction of the horizon per core.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry or MetricsRegistry()
        self.per_core_utilization: list[float] = []
        self._busy_cycles: np.ndarray | None = None

    # ------------------------------------------------------------ observer
    def on_run_start(self, sim) -> None:
        self._busy_cycles = np.zeros(sim.machine.num_workers, dtype=np.int64)
        self.per_core_utilization = []

    def __call__(self, event: Event) -> None:
        reg = self.registry
        kind = event.kind
        data = event.data or {}
        if kind is EventKind.TASK_START:
            reg.counter("tasks_started").inc()
        elif kind is EventKind.TASK_FINISH:
            reg.counter("tasks_finished").inc()
            cycles = data.get("cycles", 0)
            reg.histogram("task_cycles").observe(cycles)
            if self._busy_cycles is not None and event.core >= 0:
                self._busy_cycles[event.core] += cycles
        elif kind is EventKind.STEAL:
            reg.counter("steals").inc()
            if "wait" in data:
                reg.histogram("steal_wait_cycles").observe(data["wait"])
        elif kind is EventKind.DISPATCH:
            reg.counter("subframes_dispatched").inc()
            reg.counter("users_dispatched").inc(data.get("users", 0))
            depth = data.get("queue_depth")
            if depth is not None:
                reg.gauge("queue_depth").set(depth)
                reg.histogram("queue_depth").observe(depth)
        elif kind is EventKind.USER_START:
            reg.counter("users_adopted").inc()
        elif kind is EventKind.USER_FINISH:
            reg.counter("users_finished").inc()
        elif kind is EventKind.WAKE_CHECK:
            reg.counter("wake_checks").inc()
            if data.get("took_work"):
                reg.counter("wake_hits").inc()
        elif kind is EventKind.STATE_TRANSITION:
            reg.counter(f"transitions_to_{data.get('to', '?')}").inc()
        elif kind is EventKind.GOVERNOR:
            reg.histogram("governor_target_workers").observe(
                data.get("target", 0)
            )

    def on_run_end(self, sim, result) -> None:
        horizon = getattr(sim, "_horizon", 0)
        if self._busy_cycles is not None and horizon > 0:
            self.per_core_utilization = (self._busy_cycles / horizon).tolist()
            hist = self.registry.histogram("core_utilization")
            for value in self.per_core_utilization:
                hist.observe(value)
        latency_ms = np.asarray(result.subframe_latency_s) * 1e3
        hist = self.registry.histogram("subframe_latency_ms")
        for value in latency_ms:
            hist.observe(float(value))
