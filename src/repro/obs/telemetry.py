"""Bounded, mergeable streaming telemetry over the event stream.

The paper tells its whole power-management story through *windowed* time
series — 100 ms RMS power windows, per-subframe deadline slack, activity
per DELTA (Figs. 13-16) — while the original metrics layer buffered every
observation and summarized once at exit. This module provides the
streaming substrate:

* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile sketch
  with a documented *relative* accuracy guarantee, bounded memory, and an
  **exact merge**: merging two sketches built from disjoint observation
  sets yields bucket-for-bucket the sketch of the union (so multiprocess
  workers can sketch locally and the parent merge losslessly);
* :class:`EwmaRate` — exponentially-weighted event rates;
* :class:`WindowRing` — fixed-width time windows (the paper's 100 ms RMS
  cadence) holding count/sum/min/max per window in a bounded ring;
* :class:`TelemetryCollector` — an observer for any event-emitting
  backend that folds the stream into sketches and rings live: subframe
  latency, deadline slack, per-kernel durations, shed/retry/fault/abort
  counts, and a per-window busy-time series that
  :meth:`TelemetryCollector.power_windows` converts into the paper's
  windowed power estimate via
  :func:`repro.power.model.power_from_busy_fraction`.

Timestamps stay in the emitting backend's native clock (simulator cycles
or ``monotonic_ns``); ``window`` and ``deadline`` are bound automatically
from the simulator in ``on_run_start`` and default to the paper's 100 ms
window / 5 ms DELTA in nanoseconds otherwise. Like the other bundled
observers, concurrent calls from worker threads are safe under the GIL
(plain list/dict updates).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any

from .events import EventKind

__all__ = [
    "DEFAULT_RELATIVE_ACCURACY",
    "DEFAULT_WINDOW_NS",
    "DEFAULT_DEADLINE_NS",
    "EwmaRate",
    "QuantileSketch",
    "TelemetryCollector",
    "WindowRing",
]

#: Default sketch accuracy: quantile estimates are within ±1% of the true
#: value (relative error), guaranteed by the log-bucket construction.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: The paper's measurement window (100 ms) in nanoseconds — the default
#: for wall-clock backends; the simulator binds 0.1 s in cycles instead.
DEFAULT_WINDOW_NS = 100_000_000

#: One subframe period (DELTA = 5 ms) in nanoseconds — the default
#: deadline for wall-clock backends.
DEFAULT_DEADLINE_NS = 5_000_000


class QuantileSketch:
    """DDSketch-style quantile sketch with relative-accuracy guarantee.

    Values are mapped to logarithmic buckets of ratio
    ``gamma = (1 + a) / (1 - a)`` where ``a`` is ``relative_accuracy``;
    any quantile estimate is within ``a`` (relative) of a true value of
    the observed multiset. Negative values use a mirrored bucket store
    (deadline slack goes negative on misses) and near-zero values a
    dedicated counter; ``count``/``sum``/``min``/``max`` are exact.

    **Merge is exact**: two sketches with the same ``gamma`` merge by
    adding bucket counts, so ``merge`` over per-worker sketches equals
    the sketch of the union of their observations bucket for bucket
    (provided no bucket collapse occurred — see ``max_bins``).

    Memory is bounded by ``max_bins`` buckets per store; on overflow the
    two lowest-magnitude buckets are collapsed (biasing only the extreme
    low tail), keeping memory O(1) in the observation count.
    """

    __slots__ = (
        "relative_accuracy",
        "max_bins",
        "gamma",
        "_inv_log_gamma",
        "_min_trackable",
        "_pos",
        "_neg",
        "_zeros",
        "_count",
        "_sum",
        "_min",
        "_max",
        "collapsed",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_bins: int = 2048,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        if max_bins < 8:
            raise ValueError("max_bins must be >= 8")
        self.relative_accuracy = relative_accuracy
        self.max_bins = max_bins
        self.gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._inv_log_gamma = 1.0 / math.log(self.gamma)
        self._min_trackable = 1e-9
        self._pos: dict[int, int] = {}
        self._neg: dict[int, int] = {}
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        #: True once any bucket collapse happened (merge is no longer
        #: guaranteed bucket-exact, quantiles still accuracy-bounded
        #: away from the collapsed low tail).
        self.collapsed = False

    # ------------------------------------------------------------- observe
    def observe(self, value: float) -> None:
        v = float(value)
        self._count += 1
        self._sum += v
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if v > self._min_trackable:
            store = self._pos
            key = math.ceil(math.log(v) * self._inv_log_gamma)
        elif v < -self._min_trackable:
            store = self._neg
            key = math.ceil(math.log(-v) * self._inv_log_gamma)
        else:
            self._zeros += 1
            return
        store[key] = store.get(key, 0) + 1
        if len(store) > self.max_bins:
            self._collapse(store)

    def _collapse(self, store: dict[int, int]) -> None:
        keys = sorted(store)
        store[keys[1]] += store.pop(keys[0])
        self.collapsed = True

    # -------------------------------------------------------------- stats
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def num_bins(self) -> int:
        """Current bucket count (memory is proportional to this)."""
        return len(self._pos) + len(self._neg)

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _bucket_value(self, key: int) -> float:
        # Midpoint estimate of bucket (gamma^(key-1), gamma^key].
        return 2.0 * self.gamma**key / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within ``relative_accuracy``.

        ``q=0``/``q=1`` return the exact min/max; estimates are clamped
        into the exact observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            return 0.0
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * (self._count - 1)
        seen = 0.0
        for key in sorted(self._neg, reverse=True):
            seen += self._neg[key]
            if seen > rank:
                return min(max(-self._bucket_value(key), self._min), self._max)
        if self._zeros:
            seen += self._zeros
            if seen > rank:
                return 0.0
        for key in sorted(self._pos):
            seen += self._pos[key]
            if seen > rank:
                return min(max(self._bucket_value(key), self._min), self._max)
        return self._max

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100] (see :meth:`quantile`)."""
        return self.quantile(p / 100.0)

    # -------------------------------------------------------------- merge
    def merge(self, other: QuantileSketch) -> None:
        """Fold ``other`` into this sketch (exact: bucket counts add)."""
        if abs(other.gamma - self.gamma) > 1e-12:
            raise ValueError(
                "cannot merge sketches with different relative accuracy"
            )
        for key, count in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + count
        for key, count in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + count
        self._zeros += other._zeros
        self._count += other._count
        self._sum += other._sum
        if other._count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self.collapsed = self.collapsed or other.collapsed
        while len(self._pos) > self.max_bins:
            self._collapse(self._pos)
        while len(self._neg) > self.max_bins:
            self._collapse(self._neg)

    # ---------------------------------------------------------- transport
    def to_dict(self) -> dict:
        """JSON/pipe-safe representation (exact round trip)."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "max_bins": self.max_bins,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "zeros": self._zeros,
            "collapsed": self.collapsed,
            "pos": {str(k): v for k, v in self._pos.items()},
            "neg": {str(k): v for k, v in self._neg.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> QuantileSketch:
        sketch = cls(
            relative_accuracy=payload["relative_accuracy"],
            max_bins=payload.get("max_bins", 2048),
        )
        sketch._pos = {int(k): int(v) for k, v in payload["pos"].items()}
        sketch._neg = {int(k): int(v) for k, v in payload["neg"].items()}
        sketch._zeros = int(payload["zeros"])
        sketch._count = int(payload["count"])
        sketch._sum = float(payload["sum"])
        if sketch._count:
            sketch._min = float(payload["min"])
            sketch._max = float(payload["max"])
        sketch.collapsed = bool(payload.get("collapsed", False))
        return sketch

    def summary(self) -> dict:
        """Quantile summary (same keys as the metrics histograms)."""
        if not self._count:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


class EwmaRate:
    """Exponentially-weighted event rate in the native clock.

    ``observe(t, n)`` decays the running level with half-life
    ``halflife`` (native clock units) and adds ``n``;
    :meth:`rate` converts the level to events per native unit
    (``level * ln 2 / halflife``), optionally decayed to ``now``.
    """

    __slots__ = ("halflife", "_level", "_t")

    def __init__(self, halflife: float) -> None:
        if halflife <= 0:
            raise ValueError("halflife must be positive")
        self.halflife = float(halflife)
        self._level = 0.0
        self._t: float | None = None

    def observe(self, t: float, count: float = 1.0) -> None:
        if self._t is None:
            self._level = count
        else:
            dt = max(0.0, t - self._t)
            self._level = self._level * 0.5 ** (dt / self.halflife) + count
        self._t = t

    def rate(self, now: float | None = None) -> float:
        """Events per native clock unit (0.0 before any observation)."""
        if self._t is None:
            return 0.0
        level = self._level
        if now is not None and now > self._t:
            level *= 0.5 ** ((now - self._t) / self.halflife)
        return level * math.log(2.0) / self.halflife


class WindowRing:
    """Fixed-width time windows with bounded history.

    Window ``i`` covers ``[i * window, (i + 1) * window)`` in the native
    clock. Each window keeps count/sum/min/max; at most ``capacity``
    windows are retained (older ones fall off the ring). Out-of-order
    timestamps (worker-thread skew) fold into the newest open window so
    per-observation cost stays O(1).
    """

    __slots__ = ("window", "capacity", "_entries")

    def __init__(self, window: float, capacity: int = 64) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.window = float(window)
        self.capacity = capacity
        # Each entry: [window_index, count, sum, min, max].
        self._entries: deque[list] = deque(maxlen=capacity)

    def add(self, t: float, value: float = 1.0) -> None:
        index = int(t // self.window)
        entries = self._entries
        if entries and index <= entries[-1][0]:
            entry = entries[-1]
            entry[1] += 1
            entry[2] += value
            if value < entry[3]:
                entry[3] = value
            if value > entry[4]:
                entry[4] = value
        else:
            entries.append([index, 1, value, value, value])

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_index(self) -> int | None:
        return self._entries[-1][0] if self._entries else None

    def series(self) -> list[dict]:
        """Per-window aggregates, oldest first (open window included)."""
        return [
            {
                "window": entry[0],
                "t": entry[0] * self.window,
                "count": entry[1],
                "sum": entry[2],
                "min": entry[3],
                "max": entry[4],
                "mean": entry[2] / entry[1],
            }
            for entry in self._entries
        ]

    def totals(
        self, last: int | None = None, ref: int | None = None
    ) -> tuple[int, float]:
        """(count, sum) over the last ``last`` windows (all if None).

        Windows with no events are not stored, so "last ``last``
        windows" is judged by window *index*, not entry position:
        only entries with ``index > ref - last`` count, where ``ref``
        defaults to this ring's newest index. Pass the clock's current
        window as ``ref`` so sparse rings (e.g. deadline misses) age
        out even when no new events land in them.
        """
        entries = list(self._entries)
        if last is not None:
            threshold = ref if ref is not None else self.last_index
            if threshold is not None:
                entries = [e for e in entries if e[0] > threshold - last]
        return (
            sum(e[1] for e in entries),
            float(sum(e[2] for e in entries)),
        )


class TelemetryCollector:
    """Observer folding the event stream into streaming aggregates.

    Works on every event-emitting backend: bound to a
    :class:`~repro.sim.machine.MachineSimulator` run it adopts the
    simulated clock (cycles; window = 0.1 s, deadline = DELTA); on the
    threaded/multiprocess runtimes timestamps are ``monotonic_ns`` and
    the defaults are the paper's 100 ms window and 5 ms deadline.

    Maintains:

    * sketches — ``subframe_latency``, ``deadline_slack`` (negative on
      misses), and ``kernel_<name>`` durations;
    * rings — per-window subframe latency, deadline misses, dispatched
      users, shed/retry/fault/abort counts, and busy time (the basis of
      :meth:`power_windows`);
    * counters and EWMA rates for subframe completions and misses.

    ``merge_shard`` folds a multiprocess worker's locally-built sketch
    shard in (exact merge); the multiprocess runtime calls it
    automatically for any attached observer exposing the method.

    Serial/vectorized backends emit no events; drive
    :meth:`record_subframe` directly instead (``repro run --json`` does).
    """

    def __init__(
        self,
        window: float | None = None,
        deadline: float | None = None,
        workers: int | None = None,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        ring_windows: int = 64,
        power_params: Any = None,
    ) -> None:
        self.window = window
        self.deadline = deadline
        self.workers = workers
        self.relative_accuracy = relative_accuracy
        self.ring_windows = ring_windows
        self.power_params = power_params
        self.clock: str = "ns"
        self.clock_hz: float | None = None
        self.sketches: dict[str, QuantileSketch] = {}
        self.counters: dict[str, int] = {}
        self.rates: dict[str, EwmaRate] = {}
        self.rings: dict[str, WindowRing] = {}
        self.terminal_counts: dict[str, int] = {}
        self.process_ids: dict[int, int] = {}
        self.core_busy: dict[int, float] = {}
        self._sf_begin: dict[int, float] = {}
        self._open_tasks: dict[int, float] = {}
        self._last_t: float = 0.0
        #: Serve-wide admission load factor from the last DEGRADE/RECOVER
        #: event (1.0 = full admission; see ``repro.serve.overload``).
        self.load_factor: float = 1.0

    # ----------------------------------------------------------- plumbing
    def sketch(self, name: str) -> QuantileSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch(
                self.relative_accuracy
            )
        return sketch

    def ring(self, name: str) -> WindowRing:
        ring = self.rings.get(name)
        if ring is None:
            ring = self.rings[name] = WindowRing(
                self._window(), self.ring_windows
            )
        return ring

    def rate(self, name: str) -> EwmaRate:
        rate = self.rates.get(name)
        if rate is None:
            # Half-life of one window: "recent" means the current window.
            rate = self.rates[name] = EwmaRate(self._window())
        return rate

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _window(self) -> float:
        if self.window is None:
            self.window = float(DEFAULT_WINDOW_NS)
        return self.window

    def _deadline(self) -> float:
        if self.deadline is None:
            self.deadline = float(DEFAULT_DEADLINE_NS)
        return self.deadline

    # ----------------------------------------------------------- observer
    def on_run_start(self, sim: Any) -> None:
        machine = sim.machine
        self.clock = "cycles"
        self.clock_hz = machine.clock_hz
        if self.window is None:
            self.window = 0.1 * machine.clock_hz
        if self.deadline is None:
            self.deadline = float(machine.subframe_period_cycles)
        if self.workers is None:
            self.workers = machine.num_workers

    def __call__(self, event: Any) -> None:
        kind = event.kind
        t = event.t
        self._last_t = t
        data = event.data or {}
        if event.core >= 0 and "process_id" in data:
            self.process_ids[event.core] = int(data["process_id"])
        if kind is EventKind.TASK_START:
            self._open_tasks[event.core] = t
        elif kind is EventKind.TASK_FINISH:
            self._task_finish(event, data)
        elif kind is EventKind.DISPATCH:
            self._sf_begin[data.get("subframe", -1)] = t
            self.ring("users").add(t, data.get("users", 0))
        elif kind is EventKind.SUBFRAME_TERMINAL:
            self._terminal(event, data)
        elif kind is EventKind.SHED:
            shed = data.get("users", 0)
            self._count("shed_users", shed)
            self.ring("shed_users").add(t, shed)
        elif kind is EventKind.FAULT:
            self._count("faults")
            self.ring("faults").add(t)
        elif kind is EventKind.USER_RETRY:
            self._count("retries")
            self.ring("retries").add(t)
        elif kind is EventKind.USER_ABORTED:
            self._count("aborted_users")
            self.ring("aborted_users").add(t)
        elif kind is EventKind.ARRIVAL:
            self._count("arrivals")
            self.sketch("arrival_lag").observe(float(data.get("lag_ns", 0)))
            self.ring("queue_depth").add(t, float(data.get("queue_depth", 0)))
        elif kind is EventKind.BACKPRESSURE:
            # A backpressure drop is shedding too: fold its users into the
            # shed accounting so the shed-rate SLO reflects *all* load the
            # serve layer refused, not just admission-control decisions.
            users = data.get("users", 0)
            self._count("backpressure")
            self.ring("backpressure").add(t)
            if users:
                self._count("shed_users", users)
                self.ring("shed_users").add(t, users)
        elif kind is EventKind.DEGRADE:
            self._count("degrades")
            self.load_factor = float(data.get("load_factor", 0.0))
        elif kind is EventKind.RECOVER:
            self._count("recovers")
            self.load_factor = float(data.get("load_factor", 1.0))
        elif kind is EventKind.WORKER_RESPAWN:
            self._count("respawns")
            self.ring("respawns").add(t)

    def _task_finish(self, event: Any, data: dict) -> None:
        # Hottest handler (one call per task per kernel stage): dict
        # operations are inlined rather than routed through the lazy
        # sketch()/ring()/_count() factories.
        cycles = data.get("cycles")
        if cycles is not None:
            duration = float(cycles)
        else:
            begin = self._open_tasks.pop(event.core, None)
            if begin is None:
                return
            duration = float(event.t - begin)
        counters = self.counters
        counters["tasks"] = counters.get("tasks", 0) + 1
        kernel = data.get("kernel")
        if kernel:
            name = "kernel_" + kernel
            sketch = self.sketches.get(name)
            if sketch is None:
                sketch = self.sketch(name)
            sketch.observe(duration)
        ring = self.rings.get("busy")
        if ring is None:
            ring = self.ring("busy")
        ring.add(event.t, duration)
        core = event.core
        if core >= 0:
            busy = self.core_busy
            busy[core] = busy.get(core, 0.0) + duration

    def _terminal(self, event: Any, data: dict) -> None:
        t = event.t
        state = data.get("state", "ok")
        self.terminal_counts[state] = self.terminal_counts.get(state, 0) + 1
        self._count("subframes")
        self.rate("subframes").observe(t)
        self.ring("subframes").add(t)
        begin = self._sf_begin.pop(data.get("subframe", -1), None)
        if begin is None:
            return
        self.record_subframe(t, t - begin)

    # --------------------------------------------------------- direct feed
    def record_subframe(self, t: float, latency: float) -> None:
        """Record one completed subframe's latency at time ``t``.

        The event path calls this from ``SUBFRAME_TERMINAL``; backends
        that emit no events (serial/vectorized) call it directly with
        wall-clock nanoseconds.
        """
        latency = float(latency)
        self.sketch("subframe_latency").observe(latency)
        self.ring("latency").add(t, latency)
        slack = self._deadline() - latency
        self.sketch("deadline_slack").observe(slack)
        if slack < 0:
            self._count("deadline_misses")
            self.ring("deadline_misses").add(t)
            self.rate("deadline_misses").observe(t)

    def record_busy(self, t: float, duration: float) -> None:
        """Account ``duration`` of busy time ending at ``t`` (direct feed)."""
        self.ring("busy").add(t, float(duration))

    # -------------------------------------------------------------- merge
    def merge_shard(self, shard: dict) -> None:
        """Fold one worker's telemetry shard in (exact sketch merge).

        The first shard for a name is adopted as-is (keeping the shard's
        own accuracy); later shards for the same name merge into it, so
        all workers of one pool must share one accuracy — the runtime's
        init handshake guarantees that.
        """
        for name, payload in shard.get("sketches", {}).items():
            incoming = QuantileSketch.from_dict(payload)
            existing = self.sketches.get(name)
            if existing is None:
                self.sketches[name] = incoming
            else:
                existing.merge(incoming)
        for name, amount in shard.get("counters", {}).items():
            self._count(name, int(amount))

    # ------------------------------------------------------------- derived
    def _current_window(self) -> int:
        """Window index of the latest observed timestamp."""
        return int(self._last_t // self._window())

    def deadline_miss_rate(self, last: int | None = None) -> float:
        """Missed fraction of completed subframes (optionally windowed).

        Both rings are aligned on the clock's current window so a miss
        recorded ``last`` windows ago ages out even though the sparse
        miss ring gained no newer entries since.
        """
        ref = self._current_window() if last is not None else None
        subframes, _ = self.ring("subframes").totals(last, ref)
        if not subframes:
            return 0.0
        misses, _ = self.ring("deadline_misses").totals(last, ref)
        return misses / subframes

    def shed_rate(self, last: int | None = None) -> float:
        """Shed users as a fraction of all dispatched + shed users."""
        ref = self._current_window() if last is not None else None
        shed = self.ring("shed_users").totals(last, ref)[1]
        users = self.ring("users").totals(last, ref)[1]
        total = users + shed
        if total <= 0:
            return 0.0
        return shed / total

    def power_windows(self, last: int | None = None) -> list[dict]:
        """Per-window power estimate (W), the Figs. 13-16 / 100 ms analog.

        Busy fraction per window is summed task time divided by the
        window's total core capacity (``window * workers``); power is
        :func:`repro.power.model.power_from_busy_fraction` — base power
        plus per-core compute draw for the busy fraction and reactive-nap
        draw for the remainder.
        """
        from ..power.model import power_from_busy_fraction

        workers = self.workers or 1
        window = self._window()
        series = self.ring("busy").series()
        if last is not None:
            series = series[-last:]
        capacity = window * workers
        out = []
        for entry in series:
            busy_frac = min(1.0, entry["sum"] / capacity)
            out.append(
                {
                    "window": entry["window"],
                    "t": entry["t"],
                    "busy_fraction": busy_frac,
                    "power_w": float(
                        power_from_busy_fraction(
                            busy_frac, workers, self.power_params
                        )
                    ),
                }
            )
        return out

    def mean_power_w(self, last: int | None = None) -> float:
        windows = self.power_windows(last)
        if not windows:
            from ..power.model import power_from_busy_fraction

            return float(
                power_from_busy_fraction(0.0, self.workers or 1,
                                         self.power_params)
            )
        return sum(w["power_w"] for w in windows) / len(windows)

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> dict:
        """JSON-serializable live view of every aggregate."""
        seconds = None
        if self.clock == "cycles" and self.clock_hz:
            seconds = self._window() / self.clock_hz
        elif self.clock == "ns":
            seconds = self._window() / 1e9
        return {
            "clock": self.clock,
            "clock_hz": self.clock_hz,
            "window": self._window(),
            "window_s": seconds,
            "deadline": self._deadline(),
            "workers": self.workers,
            "counters": dict(sorted(self.counters.items())),
            "load_factor": self.load_factor,
            "terminal_counts": dict(sorted(self.terminal_counts.items())),
            "deadline_miss_rate": self.deadline_miss_rate(),
            "shed_rate": self.shed_rate(),
            "sketches": {
                name: sketch.summary()
                for name, sketch in sorted(self.sketches.items())
            },
            "series": {
                name: ring.series()
                for name, ring in sorted(self.rings.items())
            },
            "power_windows": self.power_windows(),
            "core_busy": dict(sorted(self.core_busy.items())),
            "process_ids": dict(sorted(self.process_ids.items())),
            "last_t": self._last_t,
        }
