"""Live terminal dashboard over the streaming telemetry (``repro top``).

Pure rendering: :func:`render_dashboard` turns a
:class:`~repro.obs.telemetry.TelemetryCollector` snapshot plus an
optional :class:`~repro.obs.slo.SLOEngine` report into a fixed-width
ANSI-free text frame — sparkline time series for the windowed subframe
latency / miss / power draw (the paper's Figs. 13-16 signals, live),
current sketch percentiles, per-core busy time and process mapping, and
any firing SLO alerts. The CLI layer decides how to present frames:
once (``repro top --once``, CI-safe), redrawn in place during an
in-process run, or replay/tail of a JSONL trace (``repro top --from``).

:class:`TraceTailer` feeds a collector (or an SLO engine wrapping one)
from a JSONL trace file, tolerating unknown event kinds and partial
final lines so it can tail a trace that is still being written.
"""

from __future__ import annotations

import json
from typing import IO, Any

from .events import Event, EventKind
from .slo import SLOEngine
from .telemetry import TelemetryCollector

__all__ = [
    "SPARK_CHARS",
    "TraceTailer",
    "render_dashboard",
    "sparkline",
]

#: Eight-level bar characters, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: list[float],
    width: int = 32,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Render ``values`` as a sparkline of at most ``width`` chars.

    The most recent values win when the series is longer than ``width``.
    """
    if not values:
        return ""
    values = [float(v) for v in values[-width:]]
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi <= lo:
        return SPARK_CHARS[0] * len(values)
    span = hi - lo
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, max(0, int((v - lo) / span * top)))]
        for v in values
    )


def _fmt_duration(value: float, clock: str, clock_hz: float | None) -> str:
    """Format a native-clock duration as milliseconds."""
    if clock == "cycles" and clock_hz:
        ms = value / clock_hz * 1e3
    else:
        ms = value / 1e6
    return f"{ms:8.3f} ms"


def _series_values(series: list[dict], key: str = "sum") -> list[float]:
    return [float(entry[key]) for entry in series]


def render_dashboard(
    snapshot: dict,
    slo_report: dict | None = None,
    width: int = 78,
    title: str = "repro top",
) -> str:
    """Render one dashboard frame from a telemetry snapshot.

    ``snapshot`` is :meth:`TelemetryCollector.snapshot` output (plain
    data, so frames can also be rendered from JSON); ``slo_report`` is
    :meth:`SLOEngine.slo_report` output or ``None``.
    """
    clock = snapshot.get("clock", "ns")
    clock_hz = snapshot.get("clock_hz")
    window_s = snapshot.get("window_s")
    counters = snapshot.get("counters", {})
    sketches = snapshot.get("sketches", {})
    series = snapshot.get("series", {})
    spark_w = max(16, width - 46)

    lines: list[str] = []
    rule = "─" * width
    window_text = f"{window_s * 1e3:.0f} ms" if window_s else "?"
    lines.append(
        f"{title} · clock={clock} · window={window_text} · "
        f"workers={snapshot.get('workers') or '?'}"
    )
    lines.append(rule)

    subframes = counters.get("subframes", 0)
    misses = counters.get("deadline_misses", 0)
    lines.append(
        f"subframes {subframes:>8d}   misses {misses:>6d} "
        f"({snapshot.get('deadline_miss_rate', 0.0) * 100:5.2f}%)   "
        f"shed {counters.get('shed_users', 0):>5d} "
        f"({snapshot.get('shed_rate', 0.0) * 100:5.2f}%)   "
        f"faults {counters.get('faults', 0):>4d}   "
        f"retries {counters.get('retries', 0):>4d}"
    )
    terminal = snapshot.get("terminal_counts", {})
    if terminal:
        states = "  ".join(f"{k}={v}" for k, v in sorted(terminal.items()))
        lines.append(f"terminal   {states}")
    arrivals = counters.get("arrivals", 0)
    if arrivals:
        # Serve-mode ingest signals (ARRIVAL/BACKPRESSURE events).
        line = (
            f"arrivals {arrivals:>8d}   "
            f"backpressure {counters.get('backpressure', 0):>5d}"
        )
        lag = sketches.get("arrival_lag", {})
        if lag.get("count"):
            line += (
                "   lag p99"
                + _fmt_duration(lag["p99"], clock, clock_hz)
            )
        lines.append(line)
    degrades = counters.get("degrades", 0)
    respawns = counters.get("respawns", 0)
    if degrades or respawns or counters.get("recovers", 0):
        # Self-healing signals (DEGRADE/RECOVER/WORKER_RESPAWN events):
        # current admission load factor and supervisor respawn count.
        lines.append(
            f"adaptive   load_factor {snapshot.get('load_factor', 1.0):5.2f}"
            f"   degrades {degrades:>4d}   "
            f"recovers {counters.get('recovers', 0):>4d}   "
            f"respawns {respawns:>4d}"
        )
    lines.append(rule)

    latency = sketches.get("subframe_latency", {})
    if latency.get("count"):
        lines.append(
            "latency    p50 "
            + _fmt_duration(latency["p50"], clock, clock_hz)
            + "  p90 "
            + _fmt_duration(latency["p90"], clock, clock_hz)
            + "  p99 "
            + _fmt_duration(latency["p99"], clock, clock_hz)
            + "  max "
            + _fmt_duration(latency["max"], clock, clock_hz)
        )

    lat_series = series.get("latency", [])
    if lat_series:
        values = _series_values(lat_series, "max")
        lines.append(
            f"lat max/w  {sparkline(values, spark_w):<{spark_w}}  "
            f"last {_fmt_duration(values[-1], clock, clock_hz)}"
        )
    miss_series = series.get("deadline_misses", [])
    if miss_series:
        values = _series_values(miss_series, "count")
        lines.append(
            f"misses/w   {sparkline(values, spark_w):<{spark_w}}  "
            f"last {values[-1]:8.0f}"
        )
    depth_series = series.get("queue_depth", [])
    if depth_series:
        values = _series_values(depth_series, "mean")
        lines.append(
            f"queue/w    {sparkline(values, spark_w):<{spark_w}}  "
            f"last {values[-1]:8.2f}"
        )
    power = snapshot.get("power_windows", [])
    if power:
        values = [entry["power_w"] for entry in power]
        lines.append(
            f"power/w    {sparkline(values, spark_w):<{spark_w}}  "
            f"last {values[-1]:8.2f} W"
        )
        busy = [entry["busy_fraction"] for entry in power]
        lines.append(
            f"busy/w     {sparkline(busy, spark_w, 0.0, 1.0):<{spark_w}}  "
            f"last {busy[-1] * 100:7.1f} %"
        )

    core_busy = snapshot.get("core_busy", {})
    if core_busy:
        lines.append(rule)
        process_ids = snapshot.get("process_ids", {})
        total = sum(core_busy.values()) or 1.0
        shown = sorted(core_busy.items(), key=lambda kv: int(kv[0]))[:16]
        for core, busy in shown:
            share = busy / total
            bar_w = max(8, width - 40)
            bar = "█" * int(share * bar_w)
            pid = process_ids.get(core, process_ids.get(str(core)))
            pid_text = f" pid={pid}" if pid is not None else ""
            lines.append(
                f"core {int(core):>3d}  {bar:<{bar_w}} "
                f"{share * 100:5.1f}%{pid_text}"
            )
        if len(core_busy) > 16:
            lines.append(f"… {len(core_busy) - 16} more cores")

    if slo_report is not None:
        lines.append(rule)
        for target in slo_report.get("targets", []):
            flag = "FIRING" if target.get("firing") else (
                "breach" if target.get("breaches") else "ok"
            )
            lines.append(
                f"slo {target['name']:<14} {flag:<7} "
                f"burn_fast {target.get('burn_fast', 0.0):6.2f}  "
                f"burn_slow {target.get('burn_slow', 0.0):6.2f}  "
                f"breaches {target.get('breaches', 0):>4d}  "
                f"alerts {target.get('alerts', 0):>3d}"
            )

    lines.append(rule)
    return "\n".join(lines)


class TraceTailer:
    """Feed a telemetry observer from a JSONL trace file.

    Replays every decodable record through ``observer`` (a
    :class:`TelemetryCollector` or an :class:`SLOEngine`), skipping
    records whose ``kind`` is unknown (traces from newer versions) or
    that are not JSON objects, and holding back a partial final line so
    a trace that is still being appended to can be tailed incrementally
    with repeated :meth:`advance` calls.

    The stream may be text or binary. Prefer binary (``open(path,
    "rb")``) when tailing a live writer: a text-mode ``read()`` raises
    ``UnicodeDecodeError`` if it lands mid-way through a multi-byte
    UTF-8 sequence, while the binary path simply buffers the partial
    bytes until the writer completes the line.
    """

    def __init__(self, stream: IO[Any], observer: Any) -> None:
        self.stream = stream
        self.observer = observer
        self.records = 0
        self.skipped = 0
        #: Held-back partial trailing line; bytes or str to match the
        #: stream, bound on the first non-empty read.
        self._buffer: Any = None

    def advance(self) -> int:
        """Consume everything new in the stream; return records fed."""
        chunk = self.stream.read()
        if not chunk:
            return 0
        fed = 0
        if self._buffer is None:
            self._buffer = chunk[:0]
        self._buffer += chunk
        newline = b"\n" if isinstance(self._buffer, bytes) else "\n"
        lines = self._buffer.split(newline)
        self._buffer = lines.pop()
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.skipped += 1
                continue
            if self._feed(record):
                fed += 1
            else:
                self.skipped += 1
        self.records += fed
        return fed

    def _feed(self, record: Any) -> bool:
        if not isinstance(record, dict):
            return False
        try:
            kind = EventKind(record["kind"])
        except (KeyError, ValueError):
            return False
        data = {
            k: v for k, v in record.items() if k not in ("kind", "t", "core")
        }
        event = Event(kind, record.get("t", 0), record.get("core", -1), data)
        self.observer(event)
        return True

    def snapshot(self) -> dict:
        telemetry = (
            self.observer.telemetry
            if isinstance(self.observer, SLOEngine)
            else self.observer
        )
        return telemetry.snapshot()

    def slo_report(self) -> dict | None:
        if isinstance(self.observer, SLOEngine):
            return self.observer.slo_report()
        return None
