"""Scheduler invariant checking over the structured event stream.

Every power/activity figure flows through the simulator's core-state
accounting, so silent state corruption (a core in two idle sets, a napping
core executing work, a lost user) skews downstream statistics without
failing any functional assertion. The checker subscribes to the
:class:`~repro.obs.events.Event` stream of one
:class:`~repro.sim.machine.MachineSimulator` run and validates, at every
event:

* the three idle structures (``_idle_spin``, ``_idle_nap``, ``_disabled``)
  are pairwise disjoint;
* set membership matches per-core state: a registered spinner is in SPIN
  and not busy, a registered napper is in NAP and not busy, a disabled
  core is in DISABLED, not busy, and holds no job;
* a busy (executing) core is in COMPUTE and in no idle set — a NAP or
  DISABLED core never executes;
* a task starts only on a core in COMPUTE that is in no idle set.

At each dispatch (a quiescent point between engine callbacks) and at run
end it additionally checks conservation:

* tasks: started - finished == number of currently busy cores;
* users: dispatched == finished + queued + in-flight jobs + aborted;

and at run end:

* terminal accounting: every dispatched subframe reached exactly one
  terminal state and ``dispatched == ok + crc_failed + shed + aborted``
  (the resilience layer's core promise, see ``docs/robustness.md``);

* :meth:`repro.sim.trace.OccupancyTrace.check_conservation` holds (every
  window's occupancies sum to the worker cycle budget);
* no subframe completes before its own dispatch, and completion cycles
  of completed, non-empty subframes are monotone in dispatch order up to
  a slack of max(``completion_slack_cycles``, worst observed latency
  minus DELTA) — under backlog a later, lighter subframe legitimately
  finishes earlier by up to the straddling subframe's excess latency.

Set ``REPRO_INVARIANTS=1`` to auto-attach a strict checker to every
simulator run (used by the CI invariants job).
"""

from __future__ import annotations

from typing import Any

from ..sim.trace import CoreState
from .events import EventKind

__all__ = [
    "IGNORED_EVENT_KINDS",
    "TERMINAL_STATES",
    "InvariantViolation",
    "SchedulerInvariantChecker",
]

#: Event kinds the checker deliberately takes no kind-specific action on
#: (``repro lint``'s REP302 cross-check enforces that every
#: :class:`EventKind` is either handled below or listed here):
#:
#: * ``GOVERNOR`` — records the policy decision; it is cross-checked
#:   against ``SimResult.active_workers`` by the experiment tests, not by
#:   per-event state validation;
#: * ``STATE_TRANSITION`` — state changes are validated *implicitly*: the
#:   full per-core state check in ``_check_state`` runs on every event,
#:   so an illegal transition is caught at the very next emission;
#: * ``WAKE_CHECK`` — a napping core's periodic poll carries no state of
#:   its own beyond the SPIN transition it triggers (validated as above);
#: * ``SPAN_BEGIN`` / ``SPAN_END`` — pure profiling markers consumed by
#:   :class:`repro.obs.profiling.Profiler`; they annotate work the
#:   task/user events already validate and carry no scheduler state;
#: * ``GATING`` — synthesized post-hoc by the timeline exporter from the
#:   analytic power-gating model (Eqs. 6-9); it never reflects live
#:   simulator state, so there is nothing to cross-check per event;
#: * ``FAULT`` — an injected fault firing is an *input* to the run, not
#:   scheduler state; its downstream effects are what the retry/abort
#:   counters and the terminal-accounting rule validate;
#: * ``SHED`` — admission control drops users *before* dispatch, so shed
#:   work never enters the conservation ledger (``DISPATCH`` carries the
#:   admitted count); the shed outcome itself is validated by the
#:   terminal-state rule and the :class:`~repro.faults.accounting.SubframeLedger`;
#: * ``SLO_BREACH`` / ``SLO_ALERT`` / ``SLO_RESOLVED`` — pure telemetry
#:   *outputs* emitted by :class:`repro.obs.slo.SLOEngine` from derived
#:   windowed aggregates; they describe measurements of scheduler
#:   behaviour, carry no scheduler state of their own, and never feed
#:   back into scheduling decisions.
#: * ``ARRIVAL`` / ``BACKPRESSURE`` — serve-mode ingest events emitted by
#:   :mod:`repro.serve.loop` *before* a subframe enters any scheduler
#:   (arrival lag, queue depth, and drop-at-the-door decisions); they
#:   describe the stream feeding the runtimes, not simulator core state,
#:   and their accounting is validated by the serve run's shared
#:   :class:`~repro.faults.accounting.SubframeLedger` instead.
#: * ``DEGRADE`` / ``RECOVER`` — adaptive-admission state transitions
#:   emitted by :class:`repro.serve.overload.OverloadController`; like
#:   the SLO events they are derived control-plane outputs over windowed
#:   telemetry, not scheduler state, and their effect (stricter
#:   admission) is accounted by the SHED/terminal-state rules;
#: * ``WORKER_RESPAWN`` — the supervisor replacing a dead pool worker is
#:   a process-lifecycle action outside any simulator run; its
#:   correctness is validated by the multiprocess runtime's ledger
#:   accounting (orphan requeue, exactly-once terminals), not per-event
#:   core state.
IGNORED_EVENT_KINDS = frozenset(
    {
        EventKind.GOVERNOR,
        EventKind.STATE_TRANSITION,
        EventKind.WAKE_CHECK,
        EventKind.SPAN_BEGIN,
        EventKind.SPAN_END,
        EventKind.GATING,
        EventKind.FAULT,
        EventKind.SHED,
        EventKind.SLO_BREACH,
        EventKind.SLO_ALERT,
        EventKind.SLO_RESOLVED,
        EventKind.ARRIVAL,
        EventKind.BACKPRESSURE,
        EventKind.DEGRADE,
        EventKind.RECOVER,
        EventKind.WORKER_RESPAWN,
    }
)

#: The four legal ``state`` payloads of a ``SUBFRAME_TERMINAL`` event.
TERMINAL_STATES = frozenset({"ok", "crc_failed", "shed", "aborted"})


class InvariantViolation(AssertionError):
    """A scheduler state invariant did not hold."""


class SchedulerInvariantChecker:
    """Validates simulator scheduling state on every emitted event.

    Parameters
    ----------
    strict:
        Raise :class:`InvariantViolation` on the first violation (default).
        With ``strict=False`` violations are collected in ``violations``
        for inspection and the run continues.
    completion_slack_cycles:
        Allowed completion-order inversion between overlapping subframes;
        defaults to one dispatch interval (DELTA) at bind time.
    max_violations:
        Stop recording after this many (non-strict mode) to bound memory.
    """

    def __init__(
        self,
        strict: bool = True,
        completion_slack_cycles: int | None = None,
        max_violations: int = 1000,
    ) -> None:
        self.strict = strict
        self.completion_slack_cycles = completion_slack_cycles
        self.max_violations = max_violations
        self.violations: list[str] = []
        self.events_checked = 0
        self._sim: Any = None
        self._reset_counters()

    def _reset_counters(self) -> None:
        self._tasks_started = 0
        self._tasks_finished = 0
        self._users_dispatched = 0
        self._users_adopted = 0
        self._users_finished = 0
        self._users_aborted = 0
        self._steals = 0
        self._sf_users: dict[int, int] = {}
        self._sf_terminal: dict[int, str] = {}

    # ------------------------------------------------------------ observer
    def on_run_start(self, sim) -> None:
        self._sim = sim
        self._reset_counters()
        self.violations.clear()
        self.events_checked = 0
        if self.completion_slack_cycles is None:
            self.completion_slack_cycles = sim.machine.subframe_period_cycles

    def __call__(self, event) -> None:
        self.events_checked += 1
        if self._sim is None:
            # Not bound to a MachineSimulator run (e.g. attached to the
            # threaded runtime, which has no introspectable idle sets):
            # tally events, skip state checks.
            return
        kind = event.kind
        if kind is EventKind.TASK_START:
            self._tasks_started += 1
            self._check_task_start(event)
        elif kind is EventKind.TASK_FINISH:
            self._tasks_finished += 1
        elif kind is EventKind.STEAL:
            self._steals += 1
        elif kind is EventKind.USER_START:
            self._users_adopted += 1
        elif kind is EventKind.USER_FINISH:
            self._users_finished += 1
        elif kind is EventKind.USER_RETRY:
            # A retried user's earlier adoption is void: the user went
            # back to the queue, so it must not count as in-flight.
            self._users_adopted -= 1
        elif kind is EventKind.USER_ABORTED:
            self._users_aborted += 1
            if event.data and event.data.get("was_adopted"):
                self._users_adopted -= 1
        elif kind is EventKind.SUBFRAME_TERMINAL:
            self._check_terminal(event)
        elif kind is EventKind.DISPATCH:
            users = event.data.get("users", 0) if event.data else 0
            self._users_dispatched += users
            self._sf_users[event.data["subframe"]] = users
            self._check_conservation(event.t)
        self._check_state(event.t)

    def on_run_end(self, sim, result) -> None:
        self._check_state(self._engine_now())
        self._check_conservation(self._engine_now())
        self._check_terminal_accounting()
        if not result.trace.check_conservation(atol_cycles=2.0):
            self._record(
                "occupancy-trace conservation failed: some window's state "
                "occupancies do not sum to the worker cycle budget"
            )
        self._check_completion_order(sim)

    # ------------------------------------------------------------- checks
    def check_now(self) -> None:
        """Run the full state check on demand (outside the event stream)."""
        if self._sim is None:
            raise RuntimeError("checker is not bound to a simulator run")
        self._check_state(self._engine_now())
        self._check_conservation(self._engine_now())

    def _engine_now(self) -> int:
        return self._sim._engine.now if self._sim._engine else 0

    def _record(self, message: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(message)
        if self.strict:
            raise InvariantViolation(message)

    def _check_state(self, t: int) -> None:
        sim = self._sim
        spin = sim._idle_spin
        nap = sim._idle_nap
        disabled = sim._disabled
        if not spin.isdisjoint(nap):
            self._record(
                f"t={t}: idle sets overlap: cores {sorted(spin & nap.keys())} "
                "are in both _idle_spin and _idle_nap"
            )
        if not spin.isdisjoint(disabled):
            self._record(
                f"t={t}: idle sets overlap: cores {sorted(spin & disabled)} "
                "are in both _idle_spin and _disabled"
            )
        if not disabled.isdisjoint(nap):
            self._record(
                f"t={t}: idle sets overlap: cores {sorted(disabled & nap.keys())} "
                "are in both _disabled and _idle_nap"
            )
        for index in spin:
            core = sim._cores[index]
            if core.state is not CoreState.SPIN or core.busy:
                self._record(
                    f"t={t}: core {index} registered in _idle_spin but is "
                    f"{core.state.value}{' and busy' if core.busy else ''}"
                )
        for index in nap:
            core = sim._cores[index]
            if core.state is not CoreState.NAP or core.busy:
                self._record(
                    f"t={t}: core {index} registered in _idle_nap but is "
                    f"{core.state.value}{' and busy' if core.busy else ''}"
                )
        for index in disabled:
            core = sim._cores[index]
            if core.state is not CoreState.DISABLED or core.busy:
                self._record(
                    f"t={t}: core {index} registered in _disabled but is "
                    f"{core.state.value}{' and busy' if core.busy else ''}"
                )
            elif core.job is not None:
                self._record(f"t={t}: disabled core {index} still owns a job")
        for core in sim._cores:
            if core.busy and core.state is not CoreState.COMPUTE:
                self._record(
                    f"t={t}: core {core.index} is executing while in state "
                    f"{core.state.value} (NAP/DISABLED cores must never execute)"
                )

    def _check_terminal(self, event) -> None:
        data = event.data or {}
        subframe = data.get("subframe")
        state = data.get("state")
        if state not in TERMINAL_STATES:
            self._record(
                f"t={event.t}: subframe {subframe} reported unknown terminal "
                f"state {state!r} (must be one of {sorted(TERMINAL_STATES)})"
            )
            return
        if subframe not in self._sf_users:
            self._record(
                f"t={event.t}: subframe {subframe} reached terminal state "
                f"{state} without ever being dispatched"
            )
            return
        previous = self._sf_terminal.get(subframe)
        if previous is not None:
            self._record(
                f"t={event.t}: subframe {subframe} reached a second terminal "
                f"state {state} (already {previous}); terminal states are "
                "exactly-once"
            )
            return
        self._sf_terminal[subframe] = state

    def _check_terminal_accounting(self) -> None:
        """End of run: ``dispatched == ok + crc_failed + shed + aborted``.

        Every dispatched subframe must have reached exactly one terminal
        state (exactly-once is enforced per event in ``_check_terminal``;
        this closes the loop on subframes that never got one at all).
        """
        missing = sorted(set(self._sf_users) - set(self._sf_terminal))
        if missing:
            self._record(
                f"{len(missing)} dispatched subframe(s) never reached a "
                f"terminal state: {missing[:10]}"
            )
        counts = {state: 0 for state in sorted(TERMINAL_STATES)}
        for state in self._sf_terminal.values():
            counts[state] += 1
        total = sum(counts.values())
        if total != len(self._sf_users):
            self._record(
                f"terminal accounting broken: {len(self._sf_users)} "
                "dispatched != "
                + " + ".join(f"{k}={v}" for k, v in counts.items())
            )

    def _check_task_start(self, event) -> None:
        sim = self._sim
        core = sim._cores[event.core]
        if core.state is not CoreState.COMPUTE:
            self._record(
                f"t={event.t}: task started on core {event.core} in state "
                f"{core.state.value}"
            )
        if (
            event.core in sim._idle_spin
            or event.core in sim._idle_nap
            or event.core in sim._disabled
        ):
            self._record(
                f"t={event.t}: task started on core {event.core} while it is "
                "still registered in an idle set"
            )

    def _check_conservation(self, t: int) -> None:
        sim = self._sim
        busy = sum(1 for core in sim._cores if core.busy)
        in_flight = self._tasks_started - self._tasks_finished
        if in_flight != busy:
            self._record(
                f"t={t}: task conservation violated: started "
                f"{self._tasks_started} - finished {self._tasks_finished} = "
                f"{in_flight} in flight, but {busy} cores are busy"
            )
        jobs_held = sum(1 for core in sim._cores if core.job is not None)
        queued = len(sim._user_queue)
        accounted = (
            self._users_finished + queued + jobs_held + self._users_aborted
        )
        if self._users_dispatched != accounted:
            self._record(
                f"t={t}: user conservation violated: dispatched "
                f"{self._users_dispatched} != finished {self._users_finished} "
                f"+ queued {queued} + in-flight {jobs_held} "
                f"+ aborted {self._users_aborted}"
            )
        if self._users_adopted != self._users_finished + jobs_held:
            self._record(
                f"t={t}: adopted users {self._users_adopted} != finished "
                f"{self._users_finished} + in-flight {jobs_held} "
                "(retries void adoption; aborts of adopted users must say so)"
            )

    def _check_completion_order(self, sim) -> None:
        # An inversion between subframes j < i is provably bounded by
        # lat[j] - (i - j) * DELTA: subframe i cannot complete before its
        # own dispatch, and j completed lat[j] after its dispatch. Under
        # overload (latency > DELTA) legitimate inversions therefore grow
        # with the backlog, so widen the slack to the observed worst-case
        # latency minus one DELTA; anything beyond that is corrupted
        # completion bookkeeping, not queueing.
        delta = sim.machine.subframe_period_cycles
        completed = [
            index
            for index in range(sim._num_subframes)
            # Skip empty subframes (completion pinned to dispatch) and
            # subframes truncated by the horizon (never completed).
            if self._sf_users.get(index, 0) != 0
            and sim._pending_users[index] == 0
        ]
        slack = self.completion_slack_cycles or 0
        max_latency = max(
            (
                int(sim._complete_cycle[i]) - int(sim._dispatch_cycle[i])
                for i in completed
            ),
            default=0,
        )
        slack = max(slack, max_latency - delta)
        running_max = None
        running_index = -1
        for index in completed:
            complete = int(sim._complete_cycle[index])
            if complete < int(sim._dispatch_cycle[index]):
                self._record(
                    f"subframe {index} completed at {complete}, before its "
                    f"own dispatch at {int(sim._dispatch_cycle[index])}"
                )
            if running_max is not None and complete + slack < running_max:
                self._record(
                    f"subframe {index} completed at {complete}, more than "
                    f"{slack} cycles before earlier subframe {running_index} "
                    f"(completed {running_max}): completion order violated"
                )
            if running_max is None or complete > running_max:
                running_max = complete
                running_index = index

    # -------------------------------------------------------------- report
    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = (
            f"invariant checker: {self.events_checked} events checked, "
            f"{len(self.violations)} violation(s)"
        )
        if not self.violations:
            return head
        return "\n".join([head, *("  " + v for v in self.violations[:20])])
