"""Runtime lock-order witness (a miniature lockdep).

The static lock-order analysis (``repro lint`` REP501/REP502, see
:mod:`repro.analysis.concurrency`) proves ordering claims about the
acquisition *sites* it can see lexically; this module closes the loop at
runtime: every lock created through :func:`tracked_lock` reports its
actual acquisitions to a process-global :class:`LockOrderWitness`, which
maintains the observed order graph and records an **inversion** the
moment two lock classes are ever taken in both orders (the ABBA shape
that becomes a deadlock under the right interleaving) — even when the
run itself got lucky and never deadlocked.

Naming convention: a tracked lock's name is the static analyzer's
canonical node name, ``ClassName.attr`` (e.g.
``ThreadedRuntime._pending_lock``), so the runtime graph and the static
graph speak the same language and
:func:`LockOrderWitness.assert_subset_of` can cross-check one against
the other. Locks of the same class share a name deliberately — like the
kernel's lockdep, ordering is checked between lock *classes*, not
instances, which is what lets one observed run generalize.

Overhead discipline: :func:`tracked_lock` returns a plain
``threading.Lock`` whenever the witness is disabled (the default), so
instrumented hot paths pay nothing outside witnessed runs. Enable with
``REPRO_LOCKDEP=1`` in the environment, or programmatically via
:func:`enable` — the tier-1 scheduler/fault test suites do the latter
from an autouse fixture and fail the test on any recorded inversion.
"""

from __future__ import annotations

import os
import threading
from typing import ClassVar, cast

__all__ = [
    "LockdepError",
    "LockOrderWitness",
    "TrackedLock",
    "current_witness",
    "disable",
    "enable",
    "enabled_by_env",
    "tracked_lock",
]

_ENV_VAR = "REPRO_LOCKDEP"


class LockdepError(AssertionError):
    """A lock-order inversion (or witness misuse) was detected."""


class _HeldStacks(threading.local):
    """Per-thread stack of tracked-lock names currently held."""

    def __init__(self) -> None:
        self.names: list[str] = []


class LockOrderWitness:
    """Observes acquisition order between named lock classes.

    Edges are directed: ``(a, b)`` means "``b`` was acquired while ``a``
    was held". An inversion is recorded when both ``(a, b)`` and
    ``(b, a)`` have been observed (in any threads, at any time), when a
    lock class is re-acquired while already held, or when an observed
    edge contradicts a declared static ordering passed via ``declared``.

    ``strict=True`` raises :class:`LockdepError` at the offending
    acquisition; the default records the inversion for a later
    :meth:`check` (test teardown), which keeps the failing run intact
    for debugging.
    """

    _GUARDED_BY: ClassVar[dict[str, str]] = {
        "_edges": "_mutex",
        "_inversions": "_mutex",
    }

    def __init__(
        self,
        declared: set[tuple[str, str]] | None = None,
        strict: bool = False,
    ) -> None:
        self.strict = strict
        self.declared = set(declared or ())
        self._mutex = threading.Lock()  # meta-lock; deliberately untracked
        self._edges: dict[tuple[str, str], str] = {}
        self._inversions: list[str] = []
        self._held = _HeldStacks()

    # --------------------------------------------------------- acquisition
    def before_acquire(self, name: str) -> None:
        """Record edges from every held lock to ``name``; detect inversions.

        Called *before* the real acquire so an actual ABBA deadlock is
        reported as an inversion instead of hanging the test forever.
        """
        held = self._held.names
        if not held:
            return
        where = threading.current_thread().name
        problems: list[str] = []
        with self._mutex:
            for prior in held:
                edge = (prior, name)
                if prior == name:
                    problems.append(
                        f"lock class '{name}' re-acquired while already "
                        f"held (thread {where})"
                    )
                    continue
                first = self._edges.setdefault(edge, where)
                inverse = self._edges.get((name, prior))
                if inverse is not None:
                    problems.append(
                        f"lock-order inversion: '{prior}' -> '{name}' "
                        f"(thread {where}) but also '{name}' -> "
                        f"'{prior}' (thread {inverse})"
                    )
                elif (name, prior) in self.declared:
                    problems.append(
                        f"observed '{prior}' -> '{name}' (thread {where}) "
                        f"contradicts the declared lock-order "
                        f"'{name}' -> '{prior}'"
                    )
                del first
            self._inversions.extend(problems)
        if problems and self.strict:
            raise LockdepError(problems[0])

    def after_acquire(self, name: str) -> None:
        self._held.names.append(name)

    def after_release(self, name: str) -> None:
        held = self._held.names
        # Out-of-order release is legal (hand-over-hand); drop the most
        # recent matching entry.
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    # -------------------------------------------------------------- queries
    @property
    def edges(self) -> dict[tuple[str, str], str]:
        """Observed order edges: ``(held, acquired) -> thread name``."""
        with self._mutex:
            return dict(self._edges)

    @property
    def inversions(self) -> list[str]:
        with self._mutex:
            return list(self._inversions)

    def check(self) -> None:
        """Raise :class:`LockdepError` if any inversion was recorded."""
        with self._mutex:
            problems = list(self._inversions)
        if problems:
            raise LockdepError(
                f"{len(problems)} lock-order inversion(s): "
                + "; ".join(problems)
            )

    def assert_subset_of(self, allowed: set[tuple[str, str]]) -> None:
        """Fail unless every observed edge is statically known.

        ``allowed`` is the union of the static analyzer's observed edges
        and the committed ``# lock-order:`` declarations — a runtime edge
        outside it means the static pass has a blind spot (typically an
        acquisition behind a call chain it could not resolve).
        """
        with self._mutex:
            unknown = sorted(set(self._edges) - allowed)
        if unknown:
            listing = ", ".join(f"{a} -> {b}" for a, b in unknown)
            raise LockdepError(
                f"runtime acquisition order(s) unknown to the static "
                f"lock graph: {listing}; add a '# lock-order:' "
                "declaration or fix the analyzer's blind spot"
            )

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._inversions.clear()


class TrackedLock:
    """A ``threading.Lock`` that reports acquisitions to the witness.

    Consults :func:`current_witness` at acquisition time, so a lock
    created while the witness was enabled degrades to plain behaviour
    (one ``None`` check) after :func:`disable`.
    """

    __slots__ = ("name", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        witness = _WITNESS
        if witness is not None:
            witness.before_acquire(self.name)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired and witness is not None:
            witness.after_acquire(self.name)
        return acquired

    def release(self) -> None:
        witness = _WITNESS
        if witness is not None:
            witness.after_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r}, locked={self.locked()})"


#: The process-global witness; ``None`` while lockdep is disabled.
_WITNESS: LockOrderWitness | None = None


def enabled_by_env() -> bool:
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def current_witness() -> LockOrderWitness | None:
    return _WITNESS


def enable(
    declared: set[tuple[str, str]] | None = None, strict: bool = False
) -> LockOrderWitness:
    """Install (and return) a fresh process-global witness."""
    global _WITNESS
    _WITNESS = LockOrderWitness(declared=declared, strict=strict)
    return _WITNESS


def disable() -> None:
    global _WITNESS
    _WITNESS = None


def tracked_lock(name: str) -> threading.Lock:
    """A lock participating in lockdep when the witness is active.

    Returns a plain ``threading.Lock`` when lockdep is off (the common
    case — zero steady-state overhead), a :class:`TrackedLock` when a
    witness is installed or ``REPRO_LOCKDEP=1`` is set. ``name`` must be
    the static analyzer's canonical node name (``ClassName.attr``) so
    runtime and static graphs line up.
    """
    global _WITNESS
    if _WITNESS is None and enabled_by_env():
        _WITNESS = LockOrderWitness()
    if _WITNESS is None:
        return threading.Lock()
    return cast(threading.Lock, TrackedLock(name))
