"""Hierarchical profiling spans: subframe → user → kernel.

The paper's argument rests on knowing where cycles go: per-kernel costs
feed the k_LM estimator (Eqs. 1-4) and per-subframe occupancy feeds the
NAP/PowerGating policies (Eqs. 5-9). The :class:`Profiler` observer folds
the structured event stream of either backend into that hierarchy:

* **kernel spans** — one per executed task, attributed to the Fig. 5
  kernel carried in the ``kernel`` payload field (``chest``, ``combiner``,
  ``symbol``, ``finalize``); durations are simulated cycles on
  :class:`~repro.sim.machine.MachineSimulator` and wall nanoseconds on
  :class:`~repro.sched.threaded.ThreadedRuntime`. The threaded runtime
  additionally emits join-level ``span-begin``/``span-end`` events around
  each stage (fork to join on the user thread), aggregated separately so
  task time and stage wait time are not conflated;
* **user spans** — ``user-start`` to ``user-finish``;
* **subframe spans** — dispatch to last user completion, with a
  deadline-slack histogram against DELTA (one subframe period).

Durations stay in the backend's native clock; callers convert via
``clock_hz`` (bound automatically from the simulator in ``on_run_start``).
Like the other bundled observers, concurrent calls from worker threads
are safe under the GIL (plain list/dict updates).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..uplink.tasks import KERNEL_KINDS
from .events import EventKind
from .metrics import MetricsRegistry

__all__ = ["KernelStats", "Profiler", "Span"]


class Span:
    """One closed profiling span in the subframe → user → kernel hierarchy.

    ``begin``/``end`` are in the emitting backend's native clock (cycles
    or nanoseconds); ``cat`` is ``"subframe"``, ``"user"``, ``"kernel"``,
    or ``"task"``.
    """

    __slots__ = ("name", "cat", "core", "begin", "end", "data")

    def __init__(
        self,
        name: str,
        cat: str,
        core: int,
        begin: int,
        end: int,
        data: dict | None = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.core = core
        self.begin = begin
        self.end = end
        self.data = data

    @property
    def duration(self) -> int:
        return self.end - self.begin

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "cat": self.cat,
            "core": self.core,
            "begin": int(self.begin),
            "end": int(self.end),
        }
        if self.data:
            record.update(self.data)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.cat}/{self.name}, core={self.core}, "
            f"[{self.begin}, {self.end}))"
        )


class KernelStats:
    """Accumulated time of one kernel (native clock units)."""

    __slots__ = ("name", "count", "total", "stolen")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.stolen = 0

    def add(self, duration: int, stolen: bool = False) -> None:
        self.count += 1
        self.total += int(duration)
        if stolen:
            self.stolen += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": int(self.total),
            "mean": self.mean,
            "stolen": self.stolen,
        }


def _ordered_kernels(stats: dict[str, KernelStats]) -> list[KernelStats]:
    """Fig. 5 stage order first, then any extra attribution keys."""
    ordered = [stats[k] for k in KERNEL_KINDS if k in stats]
    ordered.extend(
        stats[name] for name in sorted(stats) if name not in KERNEL_KINDS
    )
    return ordered


class Profiler:
    """Observer that builds the span hierarchy and per-kernel breakdowns.

    Parameters
    ----------
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`; the
        profiler feeds per-kernel histograms (``kernel_<name>``), the
        ``user_span`` / ``subframe_span`` / ``deadline_slack`` histograms,
        and the ``deadline_misses`` / ``subframes_completed`` counters.
    keep_spans:
        Retain every closed :class:`Span` in ``spans`` (default). Disable
        for long runs where only the aggregates matter.
    deadline:
        Per-subframe deadline in native clock units. Bound automatically
        to DELTA (one subframe period in cycles) when attached to a
        :class:`~repro.sim.machine.MachineSimulator`; pass
        ``5e-3 * 1e9`` ns explicitly for the threaded runtime.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        keep_spans: bool = True,
        deadline: float | None = None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.keep_spans = keep_spans
        self.deadline = deadline
        self.clock_hz: float | None = None
        self.spans: list[Span] = []
        #: Task-level kernel attribution (both backends).
        self.kernels: dict[str, KernelStats] = {}
        #: Join-level (fork-to-join) kernel attribution from span events.
        self.span_kernels: dict[str, KernelStats] = {}
        #: Core -> OS pid, populated when events carry a ``process_id``
        #: payload (multiprocess runtime); empty for sim/threaded runs.
        self.process_ids: dict[int, int] = {}
        self.per_core_utilization: list[float] = []
        self._open_tasks: dict[int, tuple[int, str | None, bool]] = {}
        self._span_stack: dict[int, list[tuple[str, int, dict]]] = {}
        self._open_users: dict[tuple[int, int], tuple[int, int]] = {}
        self._sf_begin: dict[int, int] = {}
        self._busy: np.ndarray | None = None
        # Hot-path handle cache: kernel name -> histogram (skips the
        # f-string + registry lookup on every task/span close).
        self._kernel_hists: dict[str, Any] = {}
        self._span_hists: dict[str, Any] = {}

    # ------------------------------------------------------------ observer
    def on_run_start(self, sim: Any) -> None:
        self.clock_hz = sim.machine.clock_hz
        if self.deadline is None:
            self.deadline = float(sim.machine.subframe_period_cycles)
        self._busy = np.zeros(sim.machine.num_workers, dtype=np.int64)
        self.per_core_utilization = []

    def __call__(self, event: Any) -> None:
        kind = event.kind
        data = event.data or {}
        if event.core >= 0 and "process_id" in data:
            self.process_ids[event.core] = int(data["process_id"])
        if kind is EventKind.TASK_START:
            self._open_tasks[event.core] = (
                event.t,
                data.get("kernel"),
                bool(data.get("stolen")),
            )
        elif kind is EventKind.TASK_FINISH:
            self._close_task(event, data)
        elif kind is EventKind.SPAN_BEGIN:
            stack = self._span_stack.setdefault(event.core, [])
            stack.append((data.get("name", "?"), event.t, data))
        elif kind is EventKind.SPAN_END:
            self._close_span(event, data)
        elif kind is EventKind.USER_START:
            key = (data.get("subframe", -1), data.get("user", -1))
            self._open_users[key] = (event.t, event.core)
        elif kind is EventKind.USER_FINISH:
            self._close_user(event, data)
        elif kind is EventKind.DISPATCH:
            self._sf_begin[data.get("subframe", -1)] = event.t

    def on_run_end(self, sim: Any, result: Any) -> None:
        horizon = getattr(sim, "_horizon", 0)
        if self._busy is not None and horizon > 0:
            self.per_core_utilization = (self._busy / horizon).tolist()
            hist = self.registry.histogram("core_utilization")
            for value in self.per_core_utilization:
                hist.observe(value)

    # ------------------------------------------------------------- closers
    def _record(self, span: Span) -> None:
        if self.keep_spans:
            self.spans.append(span)

    def _close_task(self, event: Any, data: dict) -> None:
        opened = self._open_tasks.pop(event.core, None)
        kernel = data.get("kernel")
        stolen = bool(data.get("stolen"))
        if "cycles" in data:
            duration = int(data["cycles"])
            begin = event.t - duration
        elif opened is not None:
            begin, opened_kernel, opened_stolen = opened
            duration = event.t - begin
            kernel = kernel or opened_kernel
            stolen = stolen or opened_stolen
        else:
            return  # finish with no start (ring-buffer tail): unattributable
        name = kernel or "task"
        stats = self.kernels.get(name)
        if stats is None:
            stats = self.kernels[name] = KernelStats(name)
        stats.add(duration, stolen)
        hist = self._kernel_hists.get(name)
        if hist is None:
            hist = self._kernel_hists[name] = self.registry.histogram(
                f"kernel_{name}"
            )
        hist.observe(duration)
        if self._busy is not None and event.core >= 0:
            self._busy[event.core] += duration
        if self.keep_spans:
            self._record(
                Span(name, "task", event.core, begin, event.t,
                     {"stolen": stolen})
            )

    def _close_span(self, event: Any, data: dict) -> None:
        name = data.get("name", "?")
        stack = self._span_stack.get(event.core)
        if not stack:
            return
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == name:
                _, begin, begin_data = stack.pop(i)
                break
        else:
            return  # unmatched end: dropped begin (ring buffer) — skip
        cat = data.get("cat") or begin_data.get("cat") or "kernel"
        if self.keep_spans:
            self._record(
                Span(name, cat, event.core, begin, event.t, begin_data)
            )
        if cat == "kernel":
            stats = self.span_kernels.get(name)
            if stats is None:
                stats = self.span_kernels[name] = KernelStats(name)
            stats.add(event.t - begin)
            hist = self._span_hists.get(name)
            if hist is None:
                hist = self._span_hists[name] = self.registry.histogram(
                    f"span_{name}"
                )
            hist.observe(event.t - begin)
        elif cat == "subframe":
            self._close_subframe(data.get("subframe", -1), event.t)

    def _close_user(self, event: Any, data: dict) -> None:
        subframe = data.get("subframe", -1)
        key = (subframe, data.get("user", -1))
        opened = self._open_users.pop(key, None)
        if opened is not None:
            begin, core = opened
            self.registry.histogram("user_span").observe(event.t - begin)
            if self.keep_spans:
                self._record(
                    Span(f"user {key[1]}", "user", core, begin, event.t, data)
                )
        # The simulator marks subframe completion on the last user out
        # (the threaded runtime emits an explicit subframe span-end).
        if data.get("pending") == 0:
            self._close_subframe(subframe, event.t)

    def _close_subframe(self, subframe: int, end: int) -> None:
        begin = self._sf_begin.pop(subframe, None)
        if begin is None:
            return
        duration = end - begin
        self.registry.counter("subframes_completed").inc()
        self.registry.histogram("subframe_span").observe(duration)
        if self.keep_spans:
            self._record(
                Span(f"subframe {subframe}", "subframe", -1, begin, end)
            )
        if self.deadline is not None:
            slack = self.deadline - duration
            self.registry.histogram("deadline_slack").observe(slack)
            if slack < 0:
                self.registry.counter("deadline_misses").inc()

    # -------------------------------------------------------------- report
    def kernel_breakdown(self, source: str = "tasks") -> dict[str, dict]:
        """Per-kernel totals in Fig. 5 stage order.

        ``source="tasks"`` (default) is the task-level attribution that
        exists on both backends; ``source="spans"`` is the join-level
        view from the threaded runtime's stage spans. Each entry carries
        ``count``/``total``/``mean``/``stolen`` plus ``share`` of the
        summed total.
        """
        stats = self.kernels if source == "tasks" else self.span_kernels
        ordered = _ordered_kernels(stats)
        grand = sum(s.total for s in ordered)
        return {
            s.name: {**s.to_dict(), "share": s.total / grand if grand else 0.0}
            for s in ordered
        }

    def deadline_miss_rate(self) -> float:
        """Fraction of completed subframes that exceeded the deadline."""
        completed = self.registry.counter("subframes_completed").value
        if not completed:
            return 0.0
        return self.registry.counter("deadline_misses").value / completed

    def summary(self) -> dict:
        """Nested plain-data summary (JSON-serializable)."""
        return {
            "clock_hz": self.clock_hz,
            "deadline": self.deadline,
            "kernels": self.kernel_breakdown("tasks"),
            "span_kernels": self.kernel_breakdown("spans"),
            "subframes_completed": self.registry.counter(
                "subframes_completed"
            ).value,
            "deadline_miss_rate": self.deadline_miss_rate(),
            "per_core_utilization": list(self.per_core_utilization),
            "process_ids": dict(sorted(self.process_ids.items())),
        }
