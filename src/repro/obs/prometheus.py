"""Prometheus text-exposition rendering of a metrics registry.

:func:`render_prometheus` turns a
:class:`~repro.obs.metrics.MetricsRegistry` into the Prometheus text
exposition format (version 0.0.4): counters as ``counter``, gauges as
``gauge``, and sketch-backed histograms as ``summary`` metrics with
``quantile``-labelled samples plus ``_sum``/``_count`` series — so an
external scraper can consume a run without touching the JSON schema.

:func:`parse_prometheus` parses the same format back into plain dicts;
the round-trip test pins the output against a committed reference
fixture so the exposition stays scrape-stable.
"""

from __future__ import annotations

import math
import re

from .metrics import MetricsRegistry

__all__ = ["parse_prometheus", "render_prometheus"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_PREFIX = "repro_"

#: Quantiles exported per histogram (matches the summary() schema).
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def _metric_name(name: str) -> str:
    """Sanitize a registry name into a legal Prometheus metric name."""
    out = _PREFIX + _SANITIZE.sub("_", name)
    if not _NAME_OK.match(out):  # pragma: no cover - prefix guarantees it
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format."""
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        metric = _metric_name(name) + "_total"
        lines.append(f"# HELP {metric} Counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} Gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, histogram in sorted(registry.histograms.items()):
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} Summary {name}")
        lines.append(f"# TYPE {metric} summary")
        for q in SUMMARY_QUANTILES:
            value = histogram.percentile(q * 100.0)
            lines.append(
                f'{metric}{{quantile="{_format_value(q)}"}} '
                f"{_format_value(value)}"
            )
        total = histogram.mean() * histogram.count
        lines.append(f"{metric}_sum {_format_value(total)}")
        lines.append(f"{metric}_count {_format_value(histogram.count)}")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def parse_prometheus(text: str) -> dict:
    """Parse text exposition into ``{types: {...}, samples: [...]}``.

    Each sample is ``{"name", "labels", "value"}``. Only the subset of
    the format that :func:`render_prometheus` emits is supported — it
    exists so tests can round-trip the exposition against a fixture.
    """
    types: dict[str, str] = {}
    samples: list[dict] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels = {
            m.group("key"): m.group("value")
            for m in _LABEL.finditer(match.group("labels") or "")
        }
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.append(
            {"name": match.group("name"), "labels": labels, "value": value}
        )
    return {"types": types, "samples": samples}
