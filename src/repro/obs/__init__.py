"""Observability and correctness tooling for both execution backends.

Structured event tracing (``events``/``recorder``), scheduler metrics
(``metrics``), and gem5-style runtime invariant checking (``invariants``)
over :class:`repro.sim.machine.MachineSimulator` and
:class:`repro.sched.threaded.ThreadedRuntime`. Attach observers via the
``observers=`` constructor argument of either backend; set
``REPRO_INVARIANTS=1`` to auto-attach a strict
:class:`SchedulerInvariantChecker` to every simulator run. See
``docs/observability.md`` for the event schema and CLI usage
(``repro trace`` / ``repro metrics``).
"""

from .events import Event, EventKind
from .recorder import EventRecorder, read_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)
from .invariants import InvariantViolation, SchedulerInvariantChecker

__all__ = [
    "Counter",
    "Event",
    "EventKind",
    "EventRecorder",
    "Gauge",
    "Histogram",
    "InvariantViolation",
    "MetricsCollector",
    "MetricsRegistry",
    "SchedulerInvariantChecker",
    "read_jsonl",
]
