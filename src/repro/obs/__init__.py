"""Observability and correctness tooling for both execution backends.

Structured event tracing (``events``/``recorder``), scheduler metrics
(``metrics``), hierarchical profiling spans with per-kernel breakdowns
(``profiling``), Chrome ``trace_event``/Perfetto timeline export
(``timeline``), and gem5-style runtime invariant checking (``invariants``)
over :class:`repro.sim.machine.MachineSimulator` and
:class:`repro.sched.threaded.ThreadedRuntime`. Attach observers via the
``observers=`` constructor argument of either backend; set
``REPRO_INVARIANTS=1`` to auto-attach a strict
:class:`SchedulerInvariantChecker` to every simulator run, and
``REPRO_LOCKDEP=1`` to make every :func:`tracked_lock` in the runtimes
report acquisition orders to the lock-order witness (``lockdep``). See
``docs/observability.md`` for the event schema and CLI usage
(``repro trace`` / ``repro metrics`` / ``repro bench``).
"""

from .events import Event, EventKind
from .recorder import EventRecorder, read_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)
from .invariants import InvariantViolation, SchedulerInvariantChecker
from .lockdep import (
    LockdepError,
    LockOrderWitness,
    TrackedLock,
    tracked_lock,
)
from .profiling import KernelStats, Profiler, Span
from .timeline import (
    chrome_trace_events,
    gating_events_from_active_workers,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Event",
    "EventKind",
    "EventRecorder",
    "Gauge",
    "Histogram",
    "InvariantViolation",
    "KernelStats",
    "LockOrderWitness",
    "LockdepError",
    "MetricsCollector",
    "MetricsRegistry",
    "Profiler",
    "SchedulerInvariantChecker",
    "Span",
    "TrackedLock",
    "tracked_lock",
    "chrome_trace_events",
    "gating_events_from_active_workers",
    "read_jsonl",
    "write_chrome_trace",
]
