"""Observability and correctness tooling for both execution backends.

Structured event tracing (``events``/``recorder``), scheduler metrics
(``metrics``), hierarchical profiling spans with per-kernel breakdowns
(``profiling``), Chrome ``trace_event``/Perfetto timeline export
(``timeline``), and gem5-style runtime invariant checking (``invariants``)
over :class:`repro.sim.machine.MachineSimulator` and
:class:`repro.sched.threaded.ThreadedRuntime`. Attach observers via the
``observers=`` constructor argument of either backend; set
``REPRO_INVARIANTS=1`` to auto-attach a strict
:class:`SchedulerInvariantChecker` to every simulator run, and
``REPRO_LOCKDEP=1`` to make every :func:`tracked_lock` in the runtimes
report acquisition orders to the lock-order witness (``lockdep``). See
``docs/observability.md`` for the event schema and CLI usage
(``repro trace`` / ``repro metrics`` / ``repro bench``).
"""

from .events import Event, EventKind
from .recorder import EventRecorder, read_jsonl
from .telemetry import (
    EwmaRate,
    QuantileSketch,
    TelemetryCollector,
    WindowRing,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)
from .invariants import InvariantViolation, SchedulerInvariantChecker
from .lockdep import (
    LockdepError,
    LockOrderWitness,
    TrackedLock,
    tracked_lock,
)
from .profiling import KernelStats, Profiler, Span
from .slo import SLOEngine, SLOTarget, default_targets
from .dashboard import TraceTailer, render_dashboard, sparkline
from .prometheus import parse_prometheus, render_prometheus
from .timeline import (
    chrome_trace_events,
    gating_events_from_active_workers,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Event",
    "EventKind",
    "EventRecorder",
    "EwmaRate",
    "Gauge",
    "Histogram",
    "InvariantViolation",
    "KernelStats",
    "LockOrderWitness",
    "LockdepError",
    "MetricsCollector",
    "MetricsRegistry",
    "Profiler",
    "QuantileSketch",
    "SLOEngine",
    "SLOTarget",
    "SchedulerInvariantChecker",
    "Span",
    "TelemetryCollector",
    "TraceTailer",
    "TrackedLock",
    "WindowRing",
    "chrome_trace_events",
    "default_targets",
    "gating_events_from_active_workers",
    "parse_prometheus",
    "read_jsonl",
    "render_dashboard",
    "render_prometheus",
    "sparkline",
    "tracked_lock",
    "write_chrome_trace",
]
