"""Declarative SLO targets with multi-window burn-rate alerting.

An :class:`SLOTarget` names a telemetry metric, an objective, and an
alerting burn rate. The :class:`SLOEngine` wraps a
:class:`~repro.obs.telemetry.TelemetryCollector`, re-evaluates every
target whenever the measurement window advances, and emits ``SLO_*``
events into the trace:

* ``SLO_BREACH`` — the fast-window observation exceeded the objective
  (one event per evaluation while breaching);
* ``SLO_ALERT`` — the *burn rate* (observed / objective) exceeded the
  target's ``alert_burn_rate`` over the fast window **and** is at least
  1.0 over the slow window (the classic multi-window burn-rate rule:
  the fast window catches the spike, the slow window confirms it is not
  a blip);
* ``SLO_RESOLVED`` — a previously firing alert stopped firing.

``slo_report()`` returns the machine-readable section that
``repro run/bench/chaos --json`` embed: per-target observations, burn
rates, breach/alert counts, and the windowed latency/miss/power series
the paper's Figs. 13-16 are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .events import Event, EventKind
from .telemetry import TelemetryCollector

__all__ = [
    "SLOEngine",
    "SLOTarget",
    "default_targets",
]


@dataclass(frozen=True)
class SLOTarget:
    """One declarative objective over a telemetry metric.

    ``metric`` is one of ``subframe_latency_p99`` (native clock units),
    ``deadline_miss_rate`` / ``shed_rate`` (fractions), or ``power_w``
    (watts). ``objective`` is the upper bound; the observed/objective
    ratio is the *burn rate*, and an alert fires when it reaches
    ``alert_burn_rate`` over the fast window while also burning (>= 1.0)
    over the slow window.
    """

    name: str
    metric: str
    objective: float
    alert_burn_rate: float = 2.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "objective": self.objective,
            "alert_burn_rate": self.alert_burn_rate,
        }


def default_targets(
    deadline: float | None = None,
    power_budget_w: float = 20.0,
) -> list[SLOTarget]:
    """The paper-grounded default targets.

    * p99 subframe latency within the DELTA deadline (the paper's hard
      real-time bound — ``objective=None``-style deferral is handled by
      the engine, which substitutes the collector's bound deadline when
      ``deadline`` is not given here);
    * deadline-miss rate <= 1%;
    * shed rate <= 5% (admission control is a safety valve, not a diet);
    * mean windowed power within a budget (Fig. 13-16 territory; 20 W
      default sits between the paper's NONAP and NAP+IDLE envelopes).
    """
    targets = [
        SLOTarget("latency-p99", "subframe_latency_p99",
                  deadline if deadline is not None else 0.0),
        SLOTarget("miss-rate", "deadline_miss_rate", 0.01, 4.0),
        SLOTarget("shed-rate", "shed_rate", 0.05, 2.0),
        SLOTarget("power-budget", "power_w", power_budget_w, 1.5),
    ]
    return targets


class SLOEngine:
    """Evaluate SLO targets over sliding windows of a telemetry stream.

    Acts as an observer: attach it *instead of* (or alongside) the
    wrapped :class:`TelemetryCollector` — it forwards every event to the
    collector first, then re-evaluates whenever the subframe window
    index advances. ``sink`` receives the emitted ``SLO_*`` events
    (e.g. an :class:`~repro.obs.trace.EventRecorder` so alerts land in
    the JSONL trace).

    ``fast_windows``/``slow_windows`` are the two burn-rate horizons in
    measurement windows (defaults 3 and 12 — with the paper's 100 ms
    window: 300 ms spike detection confirmed over 1.2 s).
    """

    def __init__(
        self,
        telemetry: TelemetryCollector | None = None,
        targets: list[SLOTarget] | None = None,
        sink: Callable[[Event], None] | None = None,
        fast_windows: int = 3,
        slow_windows: int = 12,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else (
            TelemetryCollector()
        )
        self.targets = list(targets) if targets is not None else (
            default_targets()
        )
        self.sink = sink
        self.fast_windows = fast_windows
        self.slow_windows = slow_windows
        self.firing: dict[str, bool] = {t.name: False for t in self.targets}
        self.breach_counts: dict[str, int] = {
            t.name: 0 for t in self.targets
        }
        self.alert_counts: dict[str, int] = {t.name: 0 for t in self.targets}
        self.events: list[Event] = []
        self._last_window: int | None = None

    # ----------------------------------------------------------- observer
    def on_run_start(self, sim: Any) -> None:
        self.telemetry.on_run_start(sim)

    def __call__(self, event: Any) -> None:
        self.telemetry(event)
        # The subframe window index only moves on SUBFRAME_TERMINAL (the
        # sole feeder of the "subframes" ring), so the advance check is
        # gated on it — the common task/span events pay one kind test.
        if event.kind is EventKind.SUBFRAME_TERMINAL:
            window = self.telemetry.ring("subframes").last_index
            if window is not None and window != self._last_window:
                self._last_window = window
                self.evaluate(event.t)

    def on_run_end(self, sim: Any, result: Any) -> None:
        self.evaluate(self.telemetry._last_t)

    @property
    def relative_accuracy(self) -> float:
        return self.telemetry.relative_accuracy

    def merge_shard(self, shard: dict) -> None:
        """Forward a multiprocess worker shard to the wrapped collector."""
        self.telemetry.merge_shard(shard)

    # --------------------------------------------------------- evaluation
    def _objective(self, target: SLOTarget) -> float:
        if target.metric == "subframe_latency_p99" and target.objective <= 0:
            # Deferred objective: the collector's bound deadline (DELTA).
            return self.telemetry._deadline()
        return target.objective

    def _observe(self, target: SLOTarget, last: int | None) -> float:
        tel = self.telemetry
        metric = target.metric
        if metric == "subframe_latency_p99":
            # The sketch is lifetime-scoped; windowed p99 would need
            # per-window sketches. The windowed max bounds it above and
            # the lifetime p99 below — use the window-max series so the
            # fast window reacts, falling back to the lifetime p99.
            series = tel.ring("latency").series()
            if last is not None:
                series = series[-last:]
            if series:
                return max(e["max"] for e in series)
            return tel.sketch("subframe_latency").quantile(0.99)
        if metric == "deadline_miss_rate":
            return tel.deadline_miss_rate(last)
        if metric == "shed_rate":
            return tel.shed_rate(last)
        if metric == "power_w":
            return tel.mean_power_w(last)
        raise ValueError(f"unknown SLO metric: {metric}")

    def evaluate(self, t: float) -> None:
        """Re-evaluate every target at time ``t``, emitting SLO events."""
        for target in self.targets:
            objective = self._objective(target)
            if objective <= 0:
                continue
            fast = self._observe(target, self.fast_windows)
            slow = self._observe(target, self.slow_windows)
            burn_fast = fast / objective
            burn_slow = slow / objective
            payload = {
                "slo": target.name,
                "metric": target.metric,
                "objective": objective,
                "observed": fast,
                "burn_fast": burn_fast,
                "burn_slow": burn_slow,
            }
            if burn_fast > 1.0:
                self.breach_counts[target.name] += 1
                self._emit(Event(EventKind.SLO_BREACH, t, -1, payload))
            now_firing = (
                burn_fast >= target.alert_burn_rate and burn_slow >= 1.0
            )
            was_firing = self.firing[target.name]
            if now_firing and not was_firing:
                self.alert_counts[target.name] += 1
                self._emit(Event(EventKind.SLO_ALERT, t, -1, payload))
            elif was_firing and not now_firing:
                self._emit(Event(EventKind.SLO_RESOLVED, t, -1, payload))
            self.firing[target.name] = now_firing

    def _emit(self, event: Event) -> None:
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)

    def burn_rates(self, windows: int | None = None) -> dict[str, float]:
        """Current burn rate (observed/objective) per target name.

        Observed over the last ``windows`` measurement windows (the fast
        horizon by default). Targets whose objective resolves to zero are
        omitted. This is the read-only signal surface the adaptive
        admission controller (``repro.serve.overload``) closes its loop
        on — unlike :meth:`evaluate` it mutates no alert state.
        """
        horizon = windows if windows is not None else self.fast_windows
        rates: dict[str, float] = {}
        for target in self.targets:
            objective = self._objective(target)
            if objective <= 0:
                continue
            rates[target.name] = self._observe(target, horizon) / objective
        return rates

    @property
    def window_index(self) -> int | None:
        """Index of the newest completed-subframe measurement window."""
        return self.telemetry.ring("subframes").last_index

    # ------------------------------------------------------------- report
    def slo_report(self) -> dict:
        """Machine-readable SLO section for run/bench/chaos JSON output."""
        tel = self.telemetry
        latency = tel.sketch("subframe_latency")
        targets = []
        for target in self.targets:
            objective = self._objective(target)
            observed_fast = self._observe(target, self.fast_windows)
            observed_slow = self._observe(target, self.slow_windows)
            targets.append(
                {
                    **target.to_dict(),
                    "objective": objective,
                    "observed_fast": observed_fast,
                    "observed_slow": observed_slow,
                    "burn_fast": (
                        observed_fast / objective if objective > 0 else 0.0
                    ),
                    "burn_slow": (
                        observed_slow / objective if objective > 0 else 0.0
                    ),
                    "breaches": self.breach_counts[target.name],
                    "alerts": self.alert_counts[target.name],
                    "firing": self.firing[target.name],
                }
            )
        return {
            "schema": "repro-slo/1",
            "clock": tel.clock,
            "window": tel._window(),
            "fast_windows": self.fast_windows,
            "slow_windows": self.slow_windows,
            "targets": targets,
            "subframes": tel.counters.get("subframes", 0),
            "deadline_misses": tel.counters.get("deadline_misses", 0),
            "deadline_miss_rate": tel.deadline_miss_rate(),
            "shed_rate": tel.shed_rate(),
            "latency": latency.summary(),
            "latency_windows": tel.ring("latency").series(),
            "miss_windows": tel.ring("deadline_misses").series(),
            "power_windows": tel.power_windows(),
            "mean_power_w": tel.mean_power_w(),
            "terminal_counts": dict(sorted(tel.terminal_counts.items())),
        }
