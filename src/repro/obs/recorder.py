"""Event sinks: in-memory recording, ring-buffer mode, JSONL export.

An :class:`EventRecorder` is a callable observer — attach it to a
:class:`~repro.sim.machine.MachineSimulator` or
:class:`~repro.sched.threaded.ThreadedRuntime` and every emitted
:class:`~repro.obs.events.Event` is appended. With ``capacity`` set it
becomes a ring buffer that keeps only the newest events (for long runs
where only the tail around a failure matters, the gem5 ``--trace`` idiom).
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Iterable, Iterator

from .events import Event, EventKind

__all__ = ["EventRecorder", "read_jsonl"]


class EventRecorder:
    """Records emitted events; optionally bounded, optionally filtered.

    Parameters
    ----------
    capacity:
        ``None`` keeps every event; an integer turns the recorder into a
        ring buffer of that many newest events (``dropped`` counts what
        fell off the front).
    kinds:
        Optional iterable of :class:`EventKind` to keep; others are
        discarded before they are stored.
    """

    def __init__(
        self,
        capacity: int | None = None,
        kinds: Iterable[EventKind] | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.kinds = frozenset(kinds) if kinds is not None else None
        self._events: deque[Event] = deque(maxlen=capacity)
        self.dropped = 0

    # ------------------------------------------------------------- observer
    def __call__(self, event: Event) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def counts(self) -> dict[str, int]:
        """Events per kind (kind value -> count)."""
        return dict(Counter(e.kind.value for e in self._events))

    def filter(self, kind: EventKind) -> list[Event]:
        return [e for e in self._events if e.kind is kind]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # --------------------------------------------------------------- export
    def write_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the record count."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event.to_dict(), separators=(",", ":")))
                fh.write("\n")
        return len(self._events)


def read_jsonl(path) -> list[dict]:
    """Load a trace written by :meth:`EventRecorder.write_jsonl`."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
