"""Typed scheduler event records.

The simulator and the threaded runtime emit these through a hook that is
``None`` when no observer is attached, so disabled tracing costs one
attribute load and an identity check per emission site — no event objects
are ever allocated (gem5-style "zero overhead when off" tracing).

Timestamps are clock cycles for :class:`repro.sim.machine.MachineSimulator`
events and ``time.monotonic_ns()`` for
:class:`repro.sched.threaded.ThreadedRuntime` events; the ``clock`` field
of the run-level metadata (see ``docs/observability.md``) disambiguates.
"""

from __future__ import annotations

import enum

__all__ = ["Event", "EventKind"]


class EventKind(str, enum.Enum):
    """What happened. Values double as the JSONL ``kind`` field."""

    #: One subframe's users were pushed onto the global user queue.
    DISPATCH = "dispatch"
    #: The policy decided the active-worker target for a subframe (Eq. 5).
    GOVERNOR = "governor"
    #: A core started executing a task (parallel or serial stage).
    TASK_START = "task-start"
    #: A core finished a task.
    TASK_FINISH = "task-finish"
    #: A core took a task from another job's ready queue (thief FIFO).
    STEAL = "steal"
    #: A core moved between COMPUTE/SPIN/NAP/DISABLED states.
    STATE_TRANSITION = "state-transition"
    #: A napping core woke at a periodic boundary and looked for work.
    WAKE_CHECK = "wake-check"
    #: A core adopted a user from the global queue (became its user thread).
    USER_START = "user-start"
    #: A user's last stage completed.
    USER_FINISH = "user-finish"
    #: A hierarchical profiling span opened (payload: ``name``, ``cat``).
    SPAN_BEGIN = "span-begin"
    #: A hierarchical profiling span closed (matches the innermost open
    #: span of the same ``name`` on the same core).
    SPAN_END = "span-end"
    #: The analytic power-gating model changed the powered-core count
    #: (gating groups toggled on/off between consecutive subframes).
    GATING = "gating"
    #: An injected fault fired (payload: ``fault`` kind, target ids).
    FAULT = "fault"
    #: Admission control shed work under overload (payload: ``subframe``,
    #: ``users`` shed, ``estimated_activity`` vs ``budget_activity``).
    SHED = "shed"
    #: A user's processing was retried after a failure (payload:
    #: ``subframe``, ``user``, ``attempt``, ``reason``).
    USER_RETRY = "user-retry"
    #: A user was given up on: retry budget exhausted or its subframe
    #: aborted (payload: ``subframe``, ``user``, ``reason``).
    USER_ABORTED = "user-aborted"
    #: A dispatched subframe reached its single terminal state
    #: (payload: ``subframe``, ``state`` in ok/crc_failed/shed/aborted).
    SUBFRAME_TERMINAL = "subframe-terminal"
    #: An SLO target's fast-window observation exceeded its objective
    #: (payload: ``slo``, ``metric``, ``objective``, ``observed``,
    #: ``burn_fast``, ``burn_slow``).
    SLO_BREACH = "slo-breach"
    #: An SLO alert started firing: fast-window burn rate reached the
    #: target's threshold while the slow window confirms sustained burn
    #: (payload as ``SLO_BREACH``).
    SLO_ALERT = "slo-alert"
    #: A previously firing SLO alert stopped firing (payload as
    #: ``SLO_BREACH``).
    SLO_RESOLVED = "slo-resolved"
    #: One serve-mode subframe arrival landed at a cell (payload:
    #: ``cell``, ``subframe`` global id, ``users`` offered, ``lag_ns``
    #: behind the DELTA cadence, ``queue_depth`` at arrival).
    ARRIVAL = "arrival"
    #: A cell's bounded queue was full at arrival time and the serve
    #: loop applied backpressure — shed the subframe or blocked the
    #: producer (payload: ``cell``, ``subframe``, ``users``,
    #: ``queue_depth``, ``policy``).
    BACKPRESSURE = "backpressure"
    #: The adaptive overload controller entered degraded admission:
    #: sustained SLO burn cut the serve-wide load factor (payload:
    #: ``load_factor`` after the cut, ``burn`` that triggered it,
    #: ``slo`` target name).
    DEGRADE = "degrade"
    #: The adaptive overload controller recovered to full admission
    #: after sustained clean windows (payload: ``load_factor``,
    #: ``burn``, ``slo``).
    RECOVER = "recover"
    #: The supervisor respawned a dead pool worker into its slot
    #: (payload: ``worker``, ``process_id`` of the replacement,
    #: ``respawns`` so far, ``backoff_s`` waited before the respawn).
    WORKER_RESPAWN = "worker-respawn"


class Event:
    """One structured trace record.

    Attributes
    ----------
    kind:
        The :class:`EventKind`.
    t:
        Timestamp (simulator: clock cycles; threaded runtime: ns).
    core:
        Worker index the event concerns, or -1 for machine-level events.
    data:
        Kind-specific payload (see ``docs/observability.md`` for the
        schema), or ``None``.
    """

    __slots__ = ("kind", "t", "core", "data")

    def __init__(
        self,
        kind: EventKind,
        t: int,
        core: int = -1,
        data: dict | None = None,
    ) -> None:
        self.kind = kind
        self.t = t
        self.core = core
        self.data = data

    def to_dict(self) -> dict:
        """Flat dict for JSONL export (payload keys inlined)."""
        record = {"kind": self.kind.value, "t": int(self.t), "core": self.core}
        if self.data:
            record.update(self.data)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.kind.value}, t={self.t}, core={self.core}, {self.data})"
