"""Chrome ``trace_event`` export of the per-core task timeline.

Converts a structured event stream (live :class:`~repro.obs.events.Event`
objects or JSONL records loaded with :func:`~repro.obs.recorder.read_jsonl`)
into the Trace Event Format consumed by Perfetto and ``chrome://tracing``:

* **scheduler process (pid 1)** — one thread row per core: executed tasks
  as complete (``X``) slices named after their Fig. 5 kernel, user spans
  and join-level kernel spans nested around them, steal/wake-check
  instants;
* **power-states process (pid 2)** — one row per core showing
  compute/spin/nap/disabled segments from ``state-transition`` events
  (the nap/wake timeline of Section V-B);
* **gating process (pid 3)** — the analytic power-gating model's
  ``powered_cores`` counter and group on/off toggles, synthesized from a
  run's per-subframe active-core trace (Eqs. 6-7);
* **machine process (pid 0)** — subframe spans as async slices, the
  dispatch ``queue_depth`` and governor ``target_workers`` counters;
* **worker processes (pid 10+)** — when records carry a ``process_id``
  payload (the multiprocess runtime's worker OS pids), their task/user/
  kernel slices move onto one Chrome process lane per pool process, so
  Perfetto shows the true multi-core occupancy.

Records with *unknown* event kinds (e.g. a JSONL trace written by a newer
schema) are never an error: they are rendered as generic instant events so
old traces and future traces both stay loadable.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

import numpy as np

from ..power.gating import PowerGatingModel, PowerGatingParams
from .events import Event, EventKind

__all__ = [
    "chrome_trace_events",
    "gating_events_from_active_workers",
    "write_chrome_trace",
]

#: Process ids of the exported rows (stable so diffs stay comparable).
_PID_MACHINE = 0
_PID_SCHED = 1
_PID_POWER = 2
_PID_GATING = 3

#: Records that carry a ``process_id`` payload (the multiprocess
#: runtime's worker OS pids) get one Chrome process per pid, allocated
#: upward from here in first-seen order.
_PID_WORKER_BASE = 10

_DEFAULT_CLOCK_HZ = 700e6


def _normalize(record: Any) -> tuple[str, int, int, dict]:
    """(kind, t, core, payload) from an Event or a JSONL dict."""
    if isinstance(record, Event):
        return record.kind.value, record.t, record.core, record.data or {}
    kind = str(record.get("kind", "?"))
    t = int(record.get("t", 0))
    core = int(record.get("core", -1))
    data = {k: v for k, v in record.items() if k not in ("kind", "t", "core")}
    return kind, t, core, data


class _TraceBuilder:
    """Folds normalized records into Chrome trace events."""

    def __init__(self, to_us) -> None:
        self.to_us = to_us
        self.out: list[dict] = []
        self.cores: set[int] = set()
        self.max_t = 0
        self._open_tasks: dict[int, tuple[int, dict]] = {}
        self._open_spans: dict[int, list[tuple[str, int, dict]]] = {}
        self._open_users: dict[tuple[int, int], tuple[int, int, int]] = {}
        self._core_state: dict[int, tuple[int, str]] = {}
        self._worker_pids: dict[int, int] = {}  # OS pid -> Chrome pid
        self._worker_cores: dict[int, set[int]] = {}  # Chrome pid -> cores

    def _sched_pid(self, data: dict, core: int) -> int:
        """Chrome pid for a scheduler-lane record.

        A record with a ``process_id`` payload (worker OS pid from the
        multiprocess runtime) gets its own Chrome process so Perfetto
        renders one timeline lane per pool process; records without it
        (sim, threaded) stay on the shared scheduler process.
        """
        os_pid = data.get("process_id")
        if os_pid is None:
            return _PID_SCHED
        chrome_pid = self._worker_pids.get(os_pid)
        if chrome_pid is None:
            chrome_pid = _PID_WORKER_BASE + len(self._worker_pids)
            self._worker_pids[os_pid] = chrome_pid
        if core >= 0:
            self._worker_cores.setdefault(chrome_pid, set()).add(core)
        return chrome_pid

    # -------------------------------------------------------------- pieces
    def _slice(
        self, pid: int, tid: int, name: str, begin: int, end: int, args: dict
    ) -> None:
        self.out.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": name,
                "cat": "repro",
                "ts": self.to_us(begin),
                "dur": max(0.0, self.to_us(end) - self.to_us(begin)),
                "args": args,
            }
        )

    def _instant(self, pid: int, tid: int, name: str, t: int, args: dict) -> None:
        self.out.append(
            {
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "name": name,
                "cat": "repro",
                "ts": self.to_us(t),
                "args": args,
            }
        )

    def _counter(self, pid: int, name: str, t: int, values: dict) -> None:
        self.out.append(
            {
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "name": name,
                "ts": self.to_us(t),
                "args": values,
            }
        )

    # -------------------------------------------------------------- events
    def add(self, kind: str, t: int, core: int, data: dict) -> None:
        self.max_t = max(self.max_t, t)
        if core >= 0:
            self.cores.add(core)
        if kind == "task-start":
            self._open_tasks[core] = (t, data)
        elif kind == "task-finish":
            self._task_finish(t, core, data)
        elif kind == "span-begin":
            self._open_spans.setdefault(core, []).append(
                (data.get("name", "span"), t, data)
            )
        elif kind == "span-end":
            self._span_end(t, core, data)
        elif kind == "user-start":
            key = (data.get("subframe", -1), data.get("user", -1))
            self._open_users[key] = (t, core, self._sched_pid(data, core))
        elif kind == "user-finish":
            key = (data.get("subframe", -1), data.get("user", -1))
            opened = self._open_users.pop(key, None)
            if opened is not None:
                begin, begin_core, begin_pid = opened
                self._slice(
                    begin_pid, begin_core, f"user {key[1]}", begin, t, data
                )
        elif kind == "state-transition":
            self._state_transition(t, core, data)
        elif kind == "dispatch":
            self._dispatch(t, data)
        elif kind == "governor":
            self._counter(
                _PID_MACHINE, "target_workers", t,
                {"target": data.get("target", 0)},
            )
        elif kind == "steal":
            self._instant(self._sched_pid(data, core), core, "steal", t, data)
        elif kind == "wake-check":
            self._instant(_PID_POWER, core, "wake-check", t, data)
        elif kind == "gating":
            self._counter(
                _PID_GATING, "powered_cores", t,
                {"powered": data.get("powered", 0)},
            )
            self._instant(_PID_GATING, 0, "gating-toggle", t, data)
        else:
            # Unknown/new kind (newer schema than this exporter): keep the
            # trace loadable instead of failing.
            self._instant(_PID_MACHINE, 0, kind, t, data)

    def _task_finish(self, t: int, core: int, data: dict) -> None:
        opened = self._open_tasks.pop(core, None)
        if opened is not None:
            begin, begin_data = opened
        elif "cycles" in data:
            begin = t - int(data["cycles"])
            begin_data = data
        else:
            return  # unpaired finish (ring-buffer tail): drop
        name = begin_data.get("kernel") or data.get("kernel") or "task"
        args = {
            k: begin_data[k]
            for k in ("subframe", "stolen", "serial", "cycles")
            if k in begin_data
        }
        self._slice(self._sched_pid(begin_data, core), core, name, begin, t, args)

    def _span_end(self, t: int, core: int, data: dict) -> None:
        stack = self._open_spans.get(core)
        if not stack:
            return
        name = data.get("name", "span")
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == name:
                _, begin, begin_data = stack.pop(i)
                break
        else:
            return
        cat = data.get("cat") or begin_data.get("cat") or "kernel"
        if cat == "subframe":
            index = data.get("subframe", -1)
            self._async(index, name, begin, t)
        else:
            self._slice(
                self._sched_pid(begin_data, core), core,
                f"{name} stage", begin, t, begin_data,
            )

    def _async(self, index: int, name: str, begin: int, end: int) -> None:
        for ph, ts in (("b", begin), ("e", end)):
            self.out.append(
                {
                    "ph": ph,
                    "pid": _PID_MACHINE,
                    "tid": 0,
                    "id": index,
                    "name": name,
                    "cat": "subframe",
                    "ts": self.to_us(ts),
                }
            )

    def _state_transition(self, t: int, core: int, data: dict) -> None:
        previous = self._core_state.get(core)
        begin, state = previous if previous is not None else (0, data.get("from", "?"))
        self._slice(_PID_POWER, core, state, begin, t, {})
        self._core_state[core] = (t, data.get("to", "?"))

    def _dispatch(self, t: int, data: dict) -> None:
        self._instant(
            _PID_MACHINE, 0, f"dispatch sf{data.get('subframe', '?')}", t, data
        )
        if "queue_depth" in data:
            self._counter(
                _PID_MACHINE, "queue_depth", t, {"depth": data["queue_depth"]}
            )

    # ------------------------------------------------------------ finalize
    def finish(self) -> list[dict]:
        for core, (begin, state) in sorted(self._core_state.items()):
            if self.max_t > begin:
                self._slice(_PID_POWER, core, state, begin, self.max_t, {})
        names = {
            _PID_MACHINE: "machine (dispatch + subframes)",
            _PID_SCHED: "scheduler (per-core tasks)",
            _PID_POWER: "power-states (per-core)",
            _PID_GATING: "power-gating (analytic)",
        }
        meta: list[dict] = [
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
            for pid, label in names.items()
        ]
        for core in sorted(self.cores):
            for pid in (_PID_SCHED, _PID_POWER):
                meta.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": core,
                        "name": "thread_name",
                        "args": {"name": f"core {core}"},
                    }
                )
        for os_pid, chrome_pid in sorted(self._worker_pids.items()):
            meta.append(
                {
                    "ph": "M",
                    "pid": chrome_pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": f"worker process {os_pid}"},
                }
            )
            for core in sorted(self._worker_cores.get(chrome_pid, ())):
                meta.append(
                    {
                        "ph": "M",
                        "pid": chrome_pid,
                        "tid": core,
                        "name": "thread_name",
                        "args": {"name": f"worker {core}"},
                    }
                )
        return meta + self.out


def chrome_trace_events(
    records: Iterable[Any],
    clock: str = "cycles",
    clock_hz: float = _DEFAULT_CLOCK_HZ,
) -> list[dict]:
    """Convert an event stream into a list of Chrome trace events.

    ``clock`` is ``"cycles"`` (simulator timestamps, converted at
    ``clock_hz``) or ``"ns"`` (threaded-runtime ``monotonic_ns``
    timestamps). Unknown event kinds become generic instants — never an
    error.
    """
    if clock == "cycles":
        def to_us(t: int) -> float:
            return t / clock_hz * 1e6
    elif clock == "ns":
        def to_us(t: int) -> float:
            return t / 1e3
    else:
        raise ValueError(f"unknown clock {clock!r} (use 'cycles' or 'ns')")
    builder = _TraceBuilder(to_us)
    for record in records:
        kind, t, core, data = _normalize(record)
        builder.add(kind, t, core, data)
    return builder.finish()


def gating_events_from_active_workers(
    active_workers: np.ndarray,
    subframe_period_cycles: int,
    params: PowerGatingParams | None = None,
) -> list[Event]:
    """Synthesize ``gating`` events from a run's active-core trace.

    Applies the analytic Eqs. 6-7 pipeline to ``SimResult.active_workers``
    and emits one :class:`Event` per subframe where the powered-core count
    changes (groups toggling on/off), timestamped at the subframe boundary.
    """
    model = PowerGatingModel(params)
    trace = model.evaluate(np.asarray(active_workers))
    group = model.params.group_size
    events: list[Event] = []
    previous = None
    for index, powered in enumerate(trace.powered):
        powered = int(powered)
        if powered == previous:
            continue
        events.append(
            Event(
                EventKind.GATING,
                index * subframe_period_cycles,
                -1,
                {
                    "subframe": index,
                    "powered": powered,
                    "groups_on": powered // group,
                    "delta": powered - (previous or 0),
                },
            )
        )
        previous = powered
    return events


def write_chrome_trace(
    path: Any,
    records: Iterable[Any],
    clock: str = "cycles",
    clock_hz: float = _DEFAULT_CLOCK_HZ,
    extra: Iterable[Any] = (),
    metadata: dict | None = None,
) -> int:
    """Write a ``{"traceEvents": [...]}`` JSON file; returns event count.

    ``extra`` takes additional records sharing the same clock (e.g. the
    synthesized gating events). The file loads directly in Perfetto /
    ``chrome://tracing``.
    """
    trace_events = chrome_trace_events(
        [*records, *extra], clock=clock, clock_hz=clock_hz
    )
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "clock_hz": clock_hz, **(metadata or {})},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
    return len(trace_events)
