"""Experiment drivers that regenerate every figure and table of the
paper's evaluation (see DESIGN.md §4 for the experiment index).
"""

from .asciiplot import render_series
from .estimation import EstimationResult, run_estimation_experiment
from .latency import IN_FLIGHT_BOUND, DeadlineReport, deadline_report
from .power_study import PolicyRun, PowerStudyResult, run_power_study
from .runner import PAPER_VALUES, run_full_reproduction, write_report
from .report import (
    format_calibration,
    format_estimation,
    format_metrics,
    format_series,
    format_table1,
    format_table2,
    format_workload_summary,
)
from .workload import PAPER_PLOT_STRIDE, WorkloadTrace, collect_workload_trace

__all__ = [
    "render_series",
    "IN_FLIGHT_BOUND",
    "DeadlineReport",
    "deadline_report",
    "EstimationResult",
    "run_estimation_experiment",
    "PAPER_VALUES",
    "run_full_reproduction",
    "write_report",
    "PolicyRun",
    "PowerStudyResult",
    "run_power_study",
    "format_calibration",
    "format_estimation",
    "format_metrics",
    "format_series",
    "format_table1",
    "format_table2",
    "format_workload_summary",
    "PAPER_PLOT_STRIDE",
    "WorkloadTrace",
    "collect_workload_trace",
]
