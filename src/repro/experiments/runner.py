"""One-shot reproduction runner: every experiment, one machine-readable
report.

``run_full_reproduction`` executes the whole evaluation (workload traces,
Fig. 12 estimation, the four-policy power study with gating) at a chosen
scale and returns a JSON-serializable dict pairing each measured quantity
with the paper's published value — the data behind EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..power.estimator import calibrate_from_cost_model
from ..sim.cost import CostModel
from ..uplink.parameter_model import RandomizedParameterModel
from .estimation import run_estimation_experiment
from .power_study import run_power_study
from .workload import collect_workload_trace

__all__ = ["PAPER_VALUES", "run_full_reproduction", "write_report"]

#: The paper's published numbers, keyed like the report.
PAPER_VALUES = {
    "table2_total_power_w": {
        "NONAP": 25.0,
        "IDLE": 20.7,
        "NAP": 20.5,
        "NAP+IDLE": 19.9,
        "PowerGating": 18.5,
    },
    "table1_power_above_base_w": {
        "NONAP": 11.0,
        "IDLE": 6.7,
        "NAP": 6.5,
        "NAP+IDLE": 5.9,
    },
    "fig12_max_underestimation": 0.054,
    "fig12_mean_abs_error": 0.012,
    "fig12_mean_activity": 0.5,
    "fig14_low_load_gap_w": 6.5,  # "6-7 W"
    "fig14_peak_gap_w": 1.0,  # "almost 1 W"
}


def run_full_reproduction(
    num_subframes: int = 4_000, seed: int = 0
) -> dict:
    """Run everything; returns the paper-vs-measured report dict."""
    cost = CostModel()
    estimator = calibrate_from_cost_model(cost)
    model = RandomizedParameterModel(total_subframes=num_subframes, seed=seed)

    workload = collect_workload_trace(model)
    estimation = run_estimation_experiment(
        num_subframes=num_subframes, seed=seed, cost=cost, estimator=estimator
    )
    study = run_power_study(
        num_subframes=num_subframes, seed=seed, cost=cost, estimator=estimator
    )

    nonap = study.runs["NONAP"].power.total_w
    nap = study.runs["NAP"].power.total_w
    gap = nonap - nap
    n = gap.size
    low_gap = float(gap[: max(1, n // 6)].mean())
    peak_gap = float(gap[2 * n // 5 : 3 * n // 5].mean())

    report = {
        "scale": {
            "num_subframes": num_subframes,
            "seed": seed,
            "paper_num_subframes": 68_000,
        },
        "workload": workload.summary(),
        "fig12": {
            "mean_activity": estimation.mean_measured(),
            "max_underestimation": estimation.max_underestimation(),
            "mean_abs_error": estimation.mean_absolute_error(),
            "paper_max_underestimation": PAPER_VALUES["fig12_max_underestimation"],
            "paper_mean_abs_error": PAPER_VALUES["fig12_mean_abs_error"],
        },
        "fig13": {
            "active_cores_min": int(study.runs["NAP"].estimated_active_cores.min()),
            "active_cores_max": int(study.runs["NAP"].estimated_active_cores.max()),
        },
        "fig14": {
            "low_load_gap_w": low_gap,
            "peak_gap_w": peak_gap,
            "paper_low_load_gap_w": PAPER_VALUES["fig14_low_load_gap_w"],
            "paper_peak_gap_w": PAPER_VALUES["fig14_peak_gap_w"],
        },
        "table1": {
            name: {
                "power_above_base_w": above,
                "reduction": reduction,
                "paper_w": PAPER_VALUES["table1_power_above_base_w"][name],
            }
            for name, above, reduction in study.table1()
        },
        "table2": {
            name: {
                "total_power_w": power,
                "vs_nonap": vs_nonap,
                "vs_idle": vs_idle,
                "paper_w": PAPER_VALUES["table2_total_power_w"][name],
            }
            for name, power, vs_nonap, vs_idle in study.table2()
        },
    }
    report["shape_checks"] = _shape_checks(report)
    return report


def _shape_checks(report: dict) -> dict:
    """The pass/fail shape criteria of DESIGN.md §4."""
    table2 = {name: row["total_power_w"] for name, row in report["table2"].items()}
    ordering = sorted(table2, key=table2.get, reverse=True)
    return {
        "policy_ordering": ordering
        == ["NONAP", "IDLE", "NAP", "NAP+IDLE", "PowerGating"],
        "estimation_underestimates": report["fig12"]["max_underestimation"]
        >= 0.0,
        "estimation_error_small": report["fig12"]["mean_abs_error"] < 0.03,
        "nap_wins_most_at_low_load": report["fig14"]["low_load_gap_w"]
        > report["fig14"]["peak_gap_w"],
        "all_within_1p5w_of_paper": all(
            abs(row["total_power_w"] - row["paper_w"]) < 1.5
            for row in report["table2"].values()
        ),
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Serialize the report to JSON (numpy scalars converted)."""
    path = Path(path)

    def default(value):
        if isinstance(value, (np.integer,)):
            return int(value)
        if isinstance(value, (np.floating,)):
            return float(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
        raise TypeError(f"not JSON-serializable: {type(value)}")

    path.write_text(json.dumps(report, indent=2, default=default))
    return path
