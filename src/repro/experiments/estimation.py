"""Fig. 12: estimated vs measured workload over the full evaluation run.

Runs the randomized parameter model on the simulator with no core
deactivation (the measurement must not perturb the schedule), measures
activity per one-second window (200 subframes at DELTA = 5 ms), estimates
activity per subframe via Eqs. 3-4, and reports the error statistics the
paper quotes: "The maximum error is an underestimation of 5.4 %, and the
average error is only 1.2 %."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..power.estimator import WorkloadEstimator, calibrate_from_cost_model
from ..power.governor import NonapPolicy
from ..sim.cost import CostModel
from ..sim.machine import MachineSimulator, SimConfig
from ..uplink.parameter_model import RandomizedParameterModel

__all__ = ["EstimationResult", "run_estimation_experiment"]


@dataclass
class EstimationResult:
    """Fig. 12's two series plus error statistics."""

    window_s: float
    measured: np.ndarray
    estimated: np.ndarray

    @property
    def times_s(self) -> np.ndarray:
        return (np.arange(self.measured.size) + 0.5) * self.window_s

    @property
    def error(self) -> np.ndarray:
        """Estimated minus measured (negative = underestimation)."""
        return self.estimated - self.measured

    def max_underestimation(self) -> float:
        return float(max(0.0, -self.error.min()))

    def max_overestimation(self) -> float:
        return float(max(0.0, self.error.max()))

    def mean_absolute_error(self) -> float:
        return float(np.abs(self.error).mean())

    def mean_measured(self) -> float:
        return float(self.measured.mean())


def run_estimation_experiment(
    num_subframes: int = 6_800,
    seed: int = 0,
    cost: CostModel | None = None,
    estimator: WorkloadEstimator | None = None,
    averaging_subframes: int = 200,
) -> EstimationResult:
    """Run the Fig. 12 experiment at the given scale.

    ``averaging_subframes`` is the estimation/measurement window; the paper
    averages over 200 subframes (one second, also the period at which the
    parameter model's probability changes).
    """
    if num_subframes < averaging_subframes:
        raise ValueError("num_subframes must cover at least one averaging window")
    cost = cost or CostModel()
    estimator = estimator or calibrate_from_cost_model(cost)
    model = RandomizedParameterModel(total_subframes=num_subframes, seed=seed)
    window_s = averaging_subframes * cost.machine.subframe_period_s
    simulator = MachineSimulator(
        cost,
        policy=NonapPolicy(cost.machine.num_workers),
        config=SimConfig(window_s=window_s, drain_margin_s=0.0),
    )
    result = simulator.run(model, num_subframes=num_subframes)
    measured = result.trace.activity()

    estimates = np.array(
        [
            estimator.estimate_subframe(model.uplink_parameters(i))
            for i in range(num_subframes)
        ]
    )
    n_windows = measured.size
    usable = n_windows * averaging_subframes
    estimated = estimates[:usable].reshape(n_windows, averaging_subframes).mean(axis=1)
    return EstimationResult(
        window_s=window_s, measured=measured, estimated=estimated
    )
