"""Plain-text rendering of the reproduced figures and tables.

The benchmark harness prints the same rows/series the paper reports, so a
run's output can be compared against the published numbers side by side.
"""

from __future__ import annotations

import numpy as np

from .estimation import EstimationResult
from .power_study import PowerStudyResult
from .workload import WorkloadTrace

__all__ = [
    "format_table1",
    "format_table2",
    "format_workload_summary",
    "format_estimation",
    "format_metrics",
    "format_series",
    "format_calibration",
]


def format_series(name: str, xs, ys, max_points: int = 12) -> str:
    """One downsampled "series" line for a figure."""
    xs = np.asarray(xs)
    ys = np.asarray(ys)
    if xs.size == 0:
        return f"{name}: (empty)"
    idx = np.linspace(0, xs.size - 1, min(max_points, xs.size)).astype(int)
    pairs = " ".join(f"({xs[i]:g},{ys[i]:.3g})" for i in idx)
    return f"{name}: {pairs}"


def format_workload_summary(trace: WorkloadTrace) -> str:
    """Figs. 7-9 envelope (users, PRBs, layers) as a text block."""
    s = trace.summary()
    lines = [
        "Fig. 7-9 workload trace summary",
        f"  users per subframe:      {s['users_min']:.0f} .. {s['users_max']:.0f}",
        f"  total PRBs (max):        {s['total_prb_max']:.0f}",
        f"  per-user PRBs:           {s['per_user_prb_min']:.0f} .. {s['per_user_prb_max']:.0f}",
        f"  layers:                  {s['layers_min']:.0f} .. {s['layers_max']:.0f}",
    ]
    return "\n".join(lines)


def format_estimation(result: EstimationResult) -> str:
    """Fig. 12 series and error statistics, with the paper's numbers."""
    lines = [
        "Fig. 12 estimated vs measured activity",
        format_series("  measured ", result.times_s, result.measured),
        format_series("  estimated", result.times_s, result.estimated),
        f"  mean measured activity:  {result.mean_measured():.3f}",
        f"  max underestimation:     {result.max_underestimation() * 100:.1f}%  (paper: 5.4%)",
        f"  mean absolute error:     {result.mean_absolute_error() * 100:.1f}%  (paper: 1.2%)",
    ]
    return "\n".join(lines)


def format_table1(study: PowerStudyResult) -> str:
    """Table I (power above base) side by side with the paper's rows."""
    paper ={"NONAP": (11.0, 0.0), "IDLE": (6.7, 0.39), "NAP": (6.5, 0.41), "NAP+IDLE": (5.9, 0.46)}
    lines = [
        "Table I: average power dissipation when not including base power",
        f"  {'Technique':<10} {'Power (W)':>10} {'Reduction':>10}   {'paper W':>8} {'paper red.':>10}",
    ]
    for name, above, reduction in study.table1():
        pw, pr = paper.get(name, (float('nan'), float('nan')))
        lines.append(
            f"  {name:<10} {above:>10.1f} {reduction * 100:>9.0f}%   {pw:>8.1f} {pr * 100:>9.0f}%"
        )
    return "\n".join(lines)


def format_table2(study: PowerStudyResult) -> str:
    """Table II (total power + relative columns) next to the paper's."""
    paper = {
        "NONAP": (25.0, 0.0, 0.21),
        "IDLE": (20.7, -0.17, 0.0),
        "NAP": (20.5, -0.18, -0.01),
        "NAP+IDLE": (19.9, -0.22, -0.04),
        "PowerGating": (18.5, -0.26, -0.11),
    }
    lines = [
        "Table II: average total power dissipation",
        f"  {'Technique':<12} {'Power (W)':>10} {'vs NONAP':>9} {'vs IDLE':>8}   {'paper W':>8} {'paper vs NONAP':>14}",
    ]
    for name, power, vs_nonap, vs_idle in study.table2():
        pw, pn, _ = paper[name]
        lines.append(
            f"  {name:<12} {power:>10.1f} {vs_nonap * 100:>8.0f}% {vs_idle * 100:>7.0f}%   "
            f"{pw:>8.1f} {pn * 100:>13.0f}%"
        )
    return "\n".join(lines)


def format_metrics(registry) -> str:
    """Scheduler metrics (:class:`repro.obs.MetricsRegistry`) as text.

    Counters first, then gauge extremes, then histogram percentiles —
    the same numbers ``repro metrics`` prints after a simulated run.
    """
    summary = registry.summary()
    lines = ["Scheduler metrics"]
    if summary["counters"]:
        lines.append("  counters:")
        for name, value in summary["counters"].items():
            lines.append(f"    {name:<28} {value:>12}")
    if summary["gauges"]:
        lines.append("  gauges (last/min/max):")
        for name, g in summary["gauges"].items():
            lines.append(
                f"    {name:<28} {g['value']:>12g} {g['min']:>10g} {g['max']:>10g}"
            )
    if summary["histograms"]:
        lines.append("  histograms (count/mean/p50/p90/p99/max):")
        for name, h in summary["histograms"].items():
            if h["count"] == 0:
                lines.append(f"    {name:<28} (empty)")
                continue
            lines.append(
                f"    {name:<28} {h['count']:>8} {h['mean']:>10.3g} "
                f"{h['p50']:>10.3g} {h['p90']:>10.3g} {h['p99']:>10.3g} "
                f"{h['max']:>10.3g}"
            )
    return "\n".join(lines)


def format_calibration(sweeps: dict, slopes: dict) -> str:
    """Fig. 11: activity-vs-PRB sweep per (layers, modulation) config."""
    lines = ["Fig. 11 activity vs PRBs (slope k_LM per configuration)"]
    for (layers, modulation), (prbs, acts) in sorted(sweeps.items()):
        k = slopes[(layers, modulation)]
        lines.append(
            f"  {modulation:>5} {layers}L: k={k:.6f}  "
            + format_series("sweep", prbs, acts, max_points=6)
        )
    return "\n".join(lines)
