"""Deadline / QoS analysis of the policy runs.

Section VI: "Responsiveness requirements limit the time permitted to
process a subframe. A base station therefore processes no more than two to
three subframes concurrently." On the paper's platform a subframe arrives
every DELTA = 5 ms, so the three-in-flight bound corresponds to a
~3·DELTA processing deadline. This module scores policy runs against that
deadline — the check that a power-management policy must not buy its watts
with missed subframes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.machine import SimResult

__all__ = ["DeadlineReport", "deadline_report", "IN_FLIGHT_BOUND"]

#: "no more than two to three subframes concurrently" → 3 dispatch periods.
IN_FLIGHT_BOUND = 3


@dataclass
class DeadlineReport:
    """Deadline statistics of one simulated run."""

    deadline_s: float
    subframes: int
    misses: int
    p50_latency_s: float
    p99_latency_s: float
    max_latency_s: float

    @property
    def miss_rate(self) -> float:
        return self.misses / self.subframes if self.subframes else 0.0

    def __str__(self) -> str:
        return (
            f"{self.misses}/{self.subframes} deadline misses "
            f"({self.miss_rate * 100:.1f}%) at {self.deadline_s * 1e3:.0f} ms; "
            f"p50 {self.p50_latency_s * 1e3:.1f} ms, "
            f"p99 {self.p99_latency_s * 1e3:.1f} ms"
        )


def deadline_report(
    result: SimResult, deadline_s: float | None = None
) -> DeadlineReport:
    """Score a run's per-subframe latencies against the deadline.

    The default deadline is ``IN_FLIGHT_BOUND`` dispatch periods, i.e. the
    paper's two-to-three-subframes-in-flight responsiveness bound.
    """
    if deadline_s is None:
        deadline_s = IN_FLIGHT_BOUND * result.machine.subframe_period_s
    if deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    latency = np.asarray(result.subframe_latency_s, dtype=np.float64)
    # Empty subframes report zero latency; they trivially meet deadlines.
    misses = int(np.count_nonzero(latency > deadline_s))
    return DeadlineReport(
        deadline_s=deadline_s,
        subframes=latency.size,
        misses=misses,
        p50_latency_s=float(np.percentile(latency, 50)),
        p99_latency_s=float(np.percentile(latency, 99)),
        max_latency_s=float(latency.max()),
    )
