"""Workload-trace experiments: Figs. 7, 8 and 9.

These only exercise the input parameter model: users per subframe
(Fig. 7), total/max/min PRBs per subframe (Fig. 8), and max/min layers per
subframe (Fig. 9), sampled every ``stride`` subframes exactly like the
paper plots every 25th subframe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uplink.parameter_model import RandomizedParameterModel

__all__ = ["WorkloadTrace", "collect_workload_trace"]

#: The paper plots every 25th subframe "to make the graph clearer".
PAPER_PLOT_STRIDE = 25


@dataclass
class WorkloadTrace:
    """Per-sampled-subframe workload statistics."""

    subframe_indices: np.ndarray
    num_users: np.ndarray  # Fig. 7
    total_prb: np.ndarray  # Fig. 8 "Total"
    max_prb: np.ndarray  # Fig. 8 "Max"
    min_prb: np.ndarray  # Fig. 8 "Min"
    max_layers: np.ndarray  # Fig. 9 "Max"
    min_layers: np.ndarray  # Fig. 9 "Min"

    def summary(self) -> dict[str, float]:
        return {
            "users_min": float(self.num_users.min()),
            "users_max": float(self.num_users.max()),
            "total_prb_max": float(self.total_prb.max()),
            "per_user_prb_max": float(self.max_prb.max()),
            "per_user_prb_min": float(self.min_prb.min()),
            "layers_max": float(self.max_layers.max()),
            "layers_min": float(self.min_layers.min()),
        }


def collect_workload_trace(
    model: RandomizedParameterModel,
    num_subframes: int | None = None,
    stride: int = PAPER_PLOT_STRIDE,
) -> WorkloadTrace:
    """Sample the model every ``stride`` subframes (Figs. 7-9 data)."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    total = model.total_subframes if num_subframes is None else num_subframes
    indices = np.arange(0, total, stride)
    num_users = np.empty(indices.size, dtype=np.int64)
    total_prb = np.empty(indices.size, dtype=np.int64)
    max_prb = np.empty(indices.size, dtype=np.int64)
    min_prb = np.empty(indices.size, dtype=np.int64)
    max_layers = np.empty(indices.size, dtype=np.int64)
    min_layers = np.empty(indices.size, dtype=np.int64)
    for row, index in enumerate(indices):
        users = model.uplink_parameters(int(index))
        prbs = [u.num_prb for u in users]
        layers = [u.layers for u in users]
        num_users[row] = len(users)
        total_prb[row] = sum(prbs)
        max_prb[row] = max(prbs)
        min_prb[row] = min(prbs)
        max_layers[row] = max(layers)
        min_layers[row] = min(layers)
    return WorkloadTrace(
        subframe_indices=indices,
        num_users=num_users,
        total_prb=total_prb,
        max_prb=max_prb,
        min_prb=min_prb,
        max_layers=max_layers,
        min_layers=min_layers,
    )
